# Empty compiler generated dependencies file for bench_ablation_decap_allocation.
# This may be replaced when dependencies are built.
