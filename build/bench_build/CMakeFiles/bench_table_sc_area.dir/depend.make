# Empty dependencies file for bench_table_sc_area.
# This may be replaced when dependencies are built.
