file(REMOVE_RECURSE
  "../bench/bench_table_sc_area"
  "../bench/bench_table_sc_area.pdb"
  "CMakeFiles/bench_table_sc_area.dir/table_sc_area.cpp.o"
  "CMakeFiles/bench_table_sc_area.dir/table_sc_area.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_sc_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
