file(REMOVE_RECURSE
  "../bench/bench_table1_parameters"
  "../bench/bench_table1_parameters.pdb"
  "CMakeFiles/bench_table1_parameters.dir/table1_parameters.cpp.o"
  "CMakeFiles/bench_table1_parameters.dir/table1_parameters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
