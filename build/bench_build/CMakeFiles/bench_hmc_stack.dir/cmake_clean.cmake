file(REMOVE_RECURSE
  "../bench/bench_hmc_stack"
  "../bench/bench_hmc_stack.pdb"
  "CMakeFiles/bench_hmc_stack.dir/hmc_stack.cpp.o"
  "CMakeFiles/bench_hmc_stack.dir/hmc_stack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hmc_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
