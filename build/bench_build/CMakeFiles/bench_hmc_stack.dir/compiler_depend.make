# Empty compiler generated dependencies file for bench_hmc_stack.
# This may be replaced when dependencies are built.
