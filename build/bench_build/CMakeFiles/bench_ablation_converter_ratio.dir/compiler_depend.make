# Empty compiler generated dependencies file for bench_ablation_converter_ratio.
# This may be replaced when dependencies are built.
