file(REMOVE_RECURSE
  "CMakeFiles/vstack_circuit.dir/mna.cpp.o"
  "CMakeFiles/vstack_circuit.dir/mna.cpp.o.d"
  "CMakeFiles/vstack_circuit.dir/netlist.cpp.o"
  "CMakeFiles/vstack_circuit.dir/netlist.cpp.o.d"
  "CMakeFiles/vstack_circuit.dir/sc_testbench.cpp.o"
  "CMakeFiles/vstack_circuit.dir/sc_testbench.cpp.o.d"
  "CMakeFiles/vstack_circuit.dir/spice_parser.cpp.o"
  "CMakeFiles/vstack_circuit.dir/spice_parser.cpp.o.d"
  "CMakeFiles/vstack_circuit.dir/transient.cpp.o"
  "CMakeFiles/vstack_circuit.dir/transient.cpp.o.d"
  "libvstack_circuit.a"
  "libvstack_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
