# Empty compiler generated dependencies file for vstack_circuit.
# This may be replaced when dependencies are built.
