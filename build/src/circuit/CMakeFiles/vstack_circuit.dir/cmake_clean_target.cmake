file(REMOVE_RECURSE
  "libvstack_circuit.a"
)
