file(REMOVE_RECURSE
  "CMakeFiles/vstack_em.dir/array_mttf.cpp.o"
  "CMakeFiles/vstack_em.dir/array_mttf.cpp.o.d"
  "CMakeFiles/vstack_em.dir/black.cpp.o"
  "CMakeFiles/vstack_em.dir/black.cpp.o.d"
  "CMakeFiles/vstack_em.dir/thermal_cycling.cpp.o"
  "CMakeFiles/vstack_em.dir/thermal_cycling.cpp.o.d"
  "libvstack_em.a"
  "libvstack_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
