file(REMOVE_RECURSE
  "libvstack_em.a"
)
