
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/em/array_mttf.cpp" "src/em/CMakeFiles/vstack_em.dir/array_mttf.cpp.o" "gcc" "src/em/CMakeFiles/vstack_em.dir/array_mttf.cpp.o.d"
  "/root/repo/src/em/black.cpp" "src/em/CMakeFiles/vstack_em.dir/black.cpp.o" "gcc" "src/em/CMakeFiles/vstack_em.dir/black.cpp.o.d"
  "/root/repo/src/em/thermal_cycling.cpp" "src/em/CMakeFiles/vstack_em.dir/thermal_cycling.cpp.o" "gcc" "src/em/CMakeFiles/vstack_em.dir/thermal_cycling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
