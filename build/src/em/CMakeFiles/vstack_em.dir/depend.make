# Empty dependencies file for vstack_em.
# This may be replaced when dependencies are built.
