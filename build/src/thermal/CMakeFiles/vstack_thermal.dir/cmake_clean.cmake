file(REMOVE_RECURSE
  "CMakeFiles/vstack_thermal.dir/thermal_grid.cpp.o"
  "CMakeFiles/vstack_thermal.dir/thermal_grid.cpp.o.d"
  "libvstack_thermal.a"
  "libvstack_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
