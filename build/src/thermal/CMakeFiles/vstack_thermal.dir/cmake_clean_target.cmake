file(REMOVE_RECURSE
  "libvstack_thermal.a"
)
