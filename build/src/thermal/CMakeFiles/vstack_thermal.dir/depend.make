# Empty dependencies file for vstack_thermal.
# This may be replaced when dependencies are built.
