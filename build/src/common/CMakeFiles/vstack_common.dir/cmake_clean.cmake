file(REMOVE_RECURSE
  "CMakeFiles/vstack_common.dir/cli.cpp.o"
  "CMakeFiles/vstack_common.dir/cli.cpp.o.d"
  "CMakeFiles/vstack_common.dir/error.cpp.o"
  "CMakeFiles/vstack_common.dir/error.cpp.o.d"
  "CMakeFiles/vstack_common.dir/log.cpp.o"
  "CMakeFiles/vstack_common.dir/log.cpp.o.d"
  "CMakeFiles/vstack_common.dir/rng.cpp.o"
  "CMakeFiles/vstack_common.dir/rng.cpp.o.d"
  "CMakeFiles/vstack_common.dir/stats.cpp.o"
  "CMakeFiles/vstack_common.dir/stats.cpp.o.d"
  "CMakeFiles/vstack_common.dir/table.cpp.o"
  "CMakeFiles/vstack_common.dir/table.cpp.o.d"
  "libvstack_common.a"
  "libvstack_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
