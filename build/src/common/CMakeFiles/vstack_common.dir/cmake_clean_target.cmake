file(REMOVE_RECURSE
  "libvstack_common.a"
)
