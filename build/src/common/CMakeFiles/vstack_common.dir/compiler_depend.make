# Empty compiler generated dependencies file for vstack_common.
# This may be replaced when dependencies are built.
