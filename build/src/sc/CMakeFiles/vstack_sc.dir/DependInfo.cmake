
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sc/area.cpp" "src/sc/CMakeFiles/vstack_sc.dir/area.cpp.o" "gcc" "src/sc/CMakeFiles/vstack_sc.dir/area.cpp.o.d"
  "/root/repo/src/sc/buck_converter.cpp" "src/sc/CMakeFiles/vstack_sc.dir/buck_converter.cpp.o" "gcc" "src/sc/CMakeFiles/vstack_sc.dir/buck_converter.cpp.o.d"
  "/root/repo/src/sc/compact_model.cpp" "src/sc/CMakeFiles/vstack_sc.dir/compact_model.cpp.o" "gcc" "src/sc/CMakeFiles/vstack_sc.dir/compact_model.cpp.o.d"
  "/root/repo/src/sc/ladder.cpp" "src/sc/CMakeFiles/vstack_sc.dir/ladder.cpp.o" "gcc" "src/sc/CMakeFiles/vstack_sc.dir/ladder.cpp.o.d"
  "/root/repo/src/sc/linear_regulator.cpp" "src/sc/CMakeFiles/vstack_sc.dir/linear_regulator.cpp.o" "gcc" "src/sc/CMakeFiles/vstack_sc.dir/linear_regulator.cpp.o.d"
  "/root/repo/src/sc/topology.cpp" "src/sc/CMakeFiles/vstack_sc.dir/topology.cpp.o" "gcc" "src/sc/CMakeFiles/vstack_sc.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
