# Empty compiler generated dependencies file for vstack_sc.
# This may be replaced when dependencies are built.
