file(REMOVE_RECURSE
  "CMakeFiles/vstack_sc.dir/area.cpp.o"
  "CMakeFiles/vstack_sc.dir/area.cpp.o.d"
  "CMakeFiles/vstack_sc.dir/buck_converter.cpp.o"
  "CMakeFiles/vstack_sc.dir/buck_converter.cpp.o.d"
  "CMakeFiles/vstack_sc.dir/compact_model.cpp.o"
  "CMakeFiles/vstack_sc.dir/compact_model.cpp.o.d"
  "CMakeFiles/vstack_sc.dir/ladder.cpp.o"
  "CMakeFiles/vstack_sc.dir/ladder.cpp.o.d"
  "CMakeFiles/vstack_sc.dir/linear_regulator.cpp.o"
  "CMakeFiles/vstack_sc.dir/linear_regulator.cpp.o.d"
  "CMakeFiles/vstack_sc.dir/topology.cpp.o"
  "CMakeFiles/vstack_sc.dir/topology.cpp.o.d"
  "libvstack_sc.a"
  "libvstack_sc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
