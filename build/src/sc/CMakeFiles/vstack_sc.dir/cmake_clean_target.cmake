file(REMOVE_RECURSE
  "libvstack_sc.a"
)
