
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/core_power_model.cpp" "src/power/CMakeFiles/vstack_power.dir/core_power_model.cpp.o" "gcc" "src/power/CMakeFiles/vstack_power.dir/core_power_model.cpp.o.d"
  "/root/repo/src/power/trace.cpp" "src/power/CMakeFiles/vstack_power.dir/trace.cpp.o" "gcc" "src/power/CMakeFiles/vstack_power.dir/trace.cpp.o.d"
  "/root/repo/src/power/workload.cpp" "src/power/CMakeFiles/vstack_power.dir/workload.cpp.o" "gcc" "src/power/CMakeFiles/vstack_power.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
