file(REMOVE_RECURSE
  "libvstack_power.a"
)
