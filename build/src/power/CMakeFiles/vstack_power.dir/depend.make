# Empty dependencies file for vstack_power.
# This may be replaced when dependencies are built.
