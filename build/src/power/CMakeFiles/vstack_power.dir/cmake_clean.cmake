file(REMOVE_RECURSE
  "CMakeFiles/vstack_power.dir/core_power_model.cpp.o"
  "CMakeFiles/vstack_power.dir/core_power_model.cpp.o.d"
  "CMakeFiles/vstack_power.dir/trace.cpp.o"
  "CMakeFiles/vstack_power.dir/trace.cpp.o.d"
  "CMakeFiles/vstack_power.dir/workload.cpp.o"
  "CMakeFiles/vstack_power.dir/workload.cpp.o.d"
  "libvstack_power.a"
  "libvstack_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
