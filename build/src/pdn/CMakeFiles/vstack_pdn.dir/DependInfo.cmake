
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pdn/config_io.cpp" "src/pdn/CMakeFiles/vstack_pdn.dir/config_io.cpp.o" "gcc" "src/pdn/CMakeFiles/vstack_pdn.dir/config_io.cpp.o.d"
  "/root/repo/src/pdn/decap_optimizer.cpp" "src/pdn/CMakeFiles/vstack_pdn.dir/decap_optimizer.cpp.o" "gcc" "src/pdn/CMakeFiles/vstack_pdn.dir/decap_optimizer.cpp.o.d"
  "/root/repo/src/pdn/network.cpp" "src/pdn/CMakeFiles/vstack_pdn.dir/network.cpp.o" "gcc" "src/pdn/CMakeFiles/vstack_pdn.dir/network.cpp.o.d"
  "/root/repo/src/pdn/params.cpp" "src/pdn/CMakeFiles/vstack_pdn.dir/params.cpp.o" "gcc" "src/pdn/CMakeFiles/vstack_pdn.dir/params.cpp.o.d"
  "/root/repo/src/pdn/solver.cpp" "src/pdn/CMakeFiles/vstack_pdn.dir/solver.cpp.o" "gcc" "src/pdn/CMakeFiles/vstack_pdn.dir/solver.cpp.o.d"
  "/root/repo/src/pdn/stackup.cpp" "src/pdn/CMakeFiles/vstack_pdn.dir/stackup.cpp.o" "gcc" "src/pdn/CMakeFiles/vstack_pdn.dir/stackup.cpp.o.d"
  "/root/repo/src/pdn/transient.cpp" "src/pdn/CMakeFiles/vstack_pdn.dir/transient.cpp.o" "gcc" "src/pdn/CMakeFiles/vstack_pdn.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sc/CMakeFiles/vstack_sc.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/vstack_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vstack_power.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/vstack_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
