# Empty dependencies file for vstack_pdn.
# This may be replaced when dependencies are built.
