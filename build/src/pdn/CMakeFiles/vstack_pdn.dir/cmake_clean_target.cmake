file(REMOVE_RECURSE
  "libvstack_pdn.a"
)
