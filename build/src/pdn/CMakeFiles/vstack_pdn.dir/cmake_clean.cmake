file(REMOVE_RECURSE
  "CMakeFiles/vstack_pdn.dir/config_io.cpp.o"
  "CMakeFiles/vstack_pdn.dir/config_io.cpp.o.d"
  "CMakeFiles/vstack_pdn.dir/decap_optimizer.cpp.o"
  "CMakeFiles/vstack_pdn.dir/decap_optimizer.cpp.o.d"
  "CMakeFiles/vstack_pdn.dir/network.cpp.o"
  "CMakeFiles/vstack_pdn.dir/network.cpp.o.d"
  "CMakeFiles/vstack_pdn.dir/params.cpp.o"
  "CMakeFiles/vstack_pdn.dir/params.cpp.o.d"
  "CMakeFiles/vstack_pdn.dir/solver.cpp.o"
  "CMakeFiles/vstack_pdn.dir/solver.cpp.o.d"
  "CMakeFiles/vstack_pdn.dir/stackup.cpp.o"
  "CMakeFiles/vstack_pdn.dir/stackup.cpp.o.d"
  "CMakeFiles/vstack_pdn.dir/transient.cpp.o"
  "CMakeFiles/vstack_pdn.dir/transient.cpp.o.d"
  "libvstack_pdn.a"
  "libvstack_pdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
