
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/design_space.cpp" "src/core/CMakeFiles/vstack_core.dir/design_space.cpp.o" "gcc" "src/core/CMakeFiles/vstack_core.dir/design_space.cpp.o.d"
  "/root/repo/src/core/pad_optimizer.cpp" "src/core/CMakeFiles/vstack_core.dir/pad_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/vstack_core.dir/pad_optimizer.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/vstack_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/vstack_core.dir/study.cpp.o.d"
  "/root/repo/src/core/sweeps.cpp" "src/core/CMakeFiles/vstack_core.dir/sweeps.cpp.o" "gcc" "src/core/CMakeFiles/vstack_core.dir/sweeps.cpp.o.d"
  "/root/repo/src/core/workload_noise.cpp" "src/core/CMakeFiles/vstack_core.dir/workload_noise.cpp.o" "gcc" "src/core/CMakeFiles/vstack_core.dir/workload_noise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdn/CMakeFiles/vstack_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/vstack_em.dir/DependInfo.cmake"
  "/root/repo/build/src/sc/CMakeFiles/vstack_sc.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vstack_power.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/vstack_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/vstack_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/vstack_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
