file(REMOVE_RECURSE
  "CMakeFiles/vstack_core.dir/design_space.cpp.o"
  "CMakeFiles/vstack_core.dir/design_space.cpp.o.d"
  "CMakeFiles/vstack_core.dir/pad_optimizer.cpp.o"
  "CMakeFiles/vstack_core.dir/pad_optimizer.cpp.o.d"
  "CMakeFiles/vstack_core.dir/study.cpp.o"
  "CMakeFiles/vstack_core.dir/study.cpp.o.d"
  "CMakeFiles/vstack_core.dir/sweeps.cpp.o"
  "CMakeFiles/vstack_core.dir/sweeps.cpp.o.d"
  "CMakeFiles/vstack_core.dir/workload_noise.cpp.o"
  "CMakeFiles/vstack_core.dir/workload_noise.cpp.o.d"
  "libvstack_core.a"
  "libvstack_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
