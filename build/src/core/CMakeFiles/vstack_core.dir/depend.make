# Empty dependencies file for vstack_core.
# This may be replaced when dependencies are built.
