file(REMOVE_RECURSE
  "libvstack_la.a"
)
