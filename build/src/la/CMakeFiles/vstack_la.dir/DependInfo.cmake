
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/bicgstab.cpp" "src/la/CMakeFiles/vstack_la.dir/bicgstab.cpp.o" "gcc" "src/la/CMakeFiles/vstack_la.dir/bicgstab.cpp.o.d"
  "/root/repo/src/la/cg.cpp" "src/la/CMakeFiles/vstack_la.dir/cg.cpp.o" "gcc" "src/la/CMakeFiles/vstack_la.dir/cg.cpp.o.d"
  "/root/repo/src/la/dense_lu.cpp" "src/la/CMakeFiles/vstack_la.dir/dense_lu.cpp.o" "gcc" "src/la/CMakeFiles/vstack_la.dir/dense_lu.cpp.o.d"
  "/root/repo/src/la/preconditioner.cpp" "src/la/CMakeFiles/vstack_la.dir/preconditioner.cpp.o" "gcc" "src/la/CMakeFiles/vstack_la.dir/preconditioner.cpp.o.d"
  "/root/repo/src/la/reorder.cpp" "src/la/CMakeFiles/vstack_la.dir/reorder.cpp.o" "gcc" "src/la/CMakeFiles/vstack_la.dir/reorder.cpp.o.d"
  "/root/repo/src/la/skyline_cholesky.cpp" "src/la/CMakeFiles/vstack_la.dir/skyline_cholesky.cpp.o" "gcc" "src/la/CMakeFiles/vstack_la.dir/skyline_cholesky.cpp.o.d"
  "/root/repo/src/la/solve.cpp" "src/la/CMakeFiles/vstack_la.dir/solve.cpp.o" "gcc" "src/la/CMakeFiles/vstack_la.dir/solve.cpp.o.d"
  "/root/repo/src/la/sparse.cpp" "src/la/CMakeFiles/vstack_la.dir/sparse.cpp.o" "gcc" "src/la/CMakeFiles/vstack_la.dir/sparse.cpp.o.d"
  "/root/repo/src/la/vector_ops.cpp" "src/la/CMakeFiles/vstack_la.dir/vector_ops.cpp.o" "gcc" "src/la/CMakeFiles/vstack_la.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
