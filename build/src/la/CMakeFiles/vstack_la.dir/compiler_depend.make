# Empty compiler generated dependencies file for vstack_la.
# This may be replaced when dependencies are built.
