file(REMOVE_RECURSE
  "CMakeFiles/vstack_la.dir/bicgstab.cpp.o"
  "CMakeFiles/vstack_la.dir/bicgstab.cpp.o.d"
  "CMakeFiles/vstack_la.dir/cg.cpp.o"
  "CMakeFiles/vstack_la.dir/cg.cpp.o.d"
  "CMakeFiles/vstack_la.dir/dense_lu.cpp.o"
  "CMakeFiles/vstack_la.dir/dense_lu.cpp.o.d"
  "CMakeFiles/vstack_la.dir/preconditioner.cpp.o"
  "CMakeFiles/vstack_la.dir/preconditioner.cpp.o.d"
  "CMakeFiles/vstack_la.dir/reorder.cpp.o"
  "CMakeFiles/vstack_la.dir/reorder.cpp.o.d"
  "CMakeFiles/vstack_la.dir/skyline_cholesky.cpp.o"
  "CMakeFiles/vstack_la.dir/skyline_cholesky.cpp.o.d"
  "CMakeFiles/vstack_la.dir/solve.cpp.o"
  "CMakeFiles/vstack_la.dir/solve.cpp.o.d"
  "CMakeFiles/vstack_la.dir/sparse.cpp.o"
  "CMakeFiles/vstack_la.dir/sparse.cpp.o.d"
  "CMakeFiles/vstack_la.dir/vector_ops.cpp.o"
  "CMakeFiles/vstack_la.dir/vector_ops.cpp.o.d"
  "libvstack_la.a"
  "libvstack_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
