# Empty compiler generated dependencies file for vstack_floorplan.
# This may be replaced when dependencies are built.
