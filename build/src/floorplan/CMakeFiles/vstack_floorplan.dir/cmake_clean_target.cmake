file(REMOVE_RECURSE
  "libvstack_floorplan.a"
)
