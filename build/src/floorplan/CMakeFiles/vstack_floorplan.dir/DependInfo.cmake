
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/floorplan/floorplan.cpp" "src/floorplan/CMakeFiles/vstack_floorplan.dir/floorplan.cpp.o" "gcc" "src/floorplan/CMakeFiles/vstack_floorplan.dir/floorplan.cpp.o.d"
  "/root/repo/src/floorplan/geometry.cpp" "src/floorplan/CMakeFiles/vstack_floorplan.dir/geometry.cpp.o" "gcc" "src/floorplan/CMakeFiles/vstack_floorplan.dir/geometry.cpp.o.d"
  "/root/repo/src/floorplan/heatmap.cpp" "src/floorplan/CMakeFiles/vstack_floorplan.dir/heatmap.cpp.o" "gcc" "src/floorplan/CMakeFiles/vstack_floorplan.dir/heatmap.cpp.o.d"
  "/root/repo/src/floorplan/power_map.cpp" "src/floorplan/CMakeFiles/vstack_floorplan.dir/power_map.cpp.o" "gcc" "src/floorplan/CMakeFiles/vstack_floorplan.dir/power_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/vstack_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
