file(REMOVE_RECURSE
  "CMakeFiles/vstack_floorplan.dir/floorplan.cpp.o"
  "CMakeFiles/vstack_floorplan.dir/floorplan.cpp.o.d"
  "CMakeFiles/vstack_floorplan.dir/geometry.cpp.o"
  "CMakeFiles/vstack_floorplan.dir/geometry.cpp.o.d"
  "CMakeFiles/vstack_floorplan.dir/heatmap.cpp.o"
  "CMakeFiles/vstack_floorplan.dir/heatmap.cpp.o.d"
  "CMakeFiles/vstack_floorplan.dir/power_map.cpp.o"
  "CMakeFiles/vstack_floorplan.dir/power_map.cpp.o.d"
  "libvstack_floorplan.a"
  "libvstack_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
