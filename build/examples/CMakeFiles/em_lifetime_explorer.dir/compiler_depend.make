# Empty compiler generated dependencies file for em_lifetime_explorer.
# This may be replaced when dependencies are built.
