file(REMOVE_RECURSE
  "CMakeFiles/em_lifetime_explorer.dir/em_lifetime_explorer.cpp.o"
  "CMakeFiles/em_lifetime_explorer.dir/em_lifetime_explorer.cpp.o.d"
  "em_lifetime_explorer"
  "em_lifetime_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/em_lifetime_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
