file(REMOVE_RECURSE
  "CMakeFiles/noise_map.dir/noise_map.cpp.o"
  "CMakeFiles/noise_map.dir/noise_map.cpp.o.d"
  "noise_map"
  "noise_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
