# Empty dependencies file for thermal_feasibility.
# This may be replaced when dependencies are built.
