file(REMOVE_RECURSE
  "CMakeFiles/thermal_feasibility.dir/thermal_feasibility.cpp.o"
  "CMakeFiles/thermal_feasibility.dir/thermal_feasibility.cpp.o.d"
  "thermal_feasibility"
  "thermal_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
