# Empty dependencies file for stack_scheduler.
# This may be replaced when dependencies are built.
