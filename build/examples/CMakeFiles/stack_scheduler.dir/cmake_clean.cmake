file(REMOVE_RECURSE
  "CMakeFiles/stack_scheduler.dir/stack_scheduler.cpp.o"
  "CMakeFiles/stack_scheduler.dir/stack_scheduler.cpp.o.d"
  "stack_scheduler"
  "stack_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
