# Empty dependencies file for sc_designer.
# This may be replaced when dependencies are built.
