file(REMOVE_RECURSE
  "CMakeFiles/sc_designer.dir/sc_designer.cpp.o"
  "CMakeFiles/sc_designer.dir/sc_designer.cpp.o.d"
  "sc_designer"
  "sc_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
