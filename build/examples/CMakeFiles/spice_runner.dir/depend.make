# Empty dependencies file for spice_runner.
# This may be replaced when dependencies are built.
