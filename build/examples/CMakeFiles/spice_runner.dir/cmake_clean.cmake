file(REMOVE_RECURSE
  "CMakeFiles/spice_runner.dir/spice_runner.cpp.o"
  "CMakeFiles/spice_runner.dir/spice_runner.cpp.o.d"
  "spice_runner"
  "spice_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
