# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_la[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_sc[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_floorplan[1]_include.cmake")
include("/root/repo/build/tests/test_thermal[1]_include.cmake")
include("/root/repo/build/tests/test_em[1]_include.cmake")
include("/root/repo/build/tests/test_pdn[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
