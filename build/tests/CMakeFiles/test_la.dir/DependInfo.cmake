
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/la/dense_lu_test.cpp" "tests/CMakeFiles/test_la.dir/la/dense_lu_test.cpp.o" "gcc" "tests/CMakeFiles/test_la.dir/la/dense_lu_test.cpp.o.d"
  "/root/repo/tests/la/preconditioner_test.cpp" "tests/CMakeFiles/test_la.dir/la/preconditioner_test.cpp.o" "gcc" "tests/CMakeFiles/test_la.dir/la/preconditioner_test.cpp.o.d"
  "/root/repo/tests/la/skyline_cholesky_test.cpp" "tests/CMakeFiles/test_la.dir/la/skyline_cholesky_test.cpp.o" "gcc" "tests/CMakeFiles/test_la.dir/la/skyline_cholesky_test.cpp.o.d"
  "/root/repo/tests/la/solver_test.cpp" "tests/CMakeFiles/test_la.dir/la/solver_test.cpp.o" "gcc" "tests/CMakeFiles/test_la.dir/la/solver_test.cpp.o.d"
  "/root/repo/tests/la/sparse_test.cpp" "tests/CMakeFiles/test_la.dir/la/sparse_test.cpp.o" "gcc" "tests/CMakeFiles/test_la.dir/la/sparse_test.cpp.o.d"
  "/root/repo/tests/la/vector_ops_test.cpp" "tests/CMakeFiles/test_la.dir/la/vector_ops_test.cpp.o" "gcc" "tests/CMakeFiles/test_la.dir/la/vector_ops_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/vstack_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
