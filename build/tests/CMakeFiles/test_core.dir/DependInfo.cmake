
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/design_space_test.cpp" "tests/CMakeFiles/test_core.dir/core/design_space_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/design_space_test.cpp.o.d"
  "/root/repo/tests/core/pad_optimizer_test.cpp" "tests/CMakeFiles/test_core.dir/core/pad_optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/pad_optimizer_test.cpp.o.d"
  "/root/repo/tests/core/study_test.cpp" "tests/CMakeFiles/test_core.dir/core/study_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/study_test.cpp.o.d"
  "/root/repo/tests/core/sweeps_test.cpp" "tests/CMakeFiles/test_core.dir/core/sweeps_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/sweeps_test.cpp.o.d"
  "/root/repo/tests/core/thermal_em_test.cpp" "tests/CMakeFiles/test_core.dir/core/thermal_em_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/thermal_em_test.cpp.o.d"
  "/root/repo/tests/core/workload_noise_test.cpp" "tests/CMakeFiles/test_core.dir/core/workload_noise_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/workload_noise_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vstack_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pdn/CMakeFiles/vstack_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/vstack_em.dir/DependInfo.cmake"
  "/root/repo/build/src/sc/CMakeFiles/vstack_sc.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/vstack_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/vstack_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vstack_power.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/vstack_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
