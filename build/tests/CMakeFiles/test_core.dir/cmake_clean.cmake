file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/design_space_test.cpp.o"
  "CMakeFiles/test_core.dir/core/design_space_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/pad_optimizer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/pad_optimizer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/study_test.cpp.o"
  "CMakeFiles/test_core.dir/core/study_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sweeps_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sweeps_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/thermal_em_test.cpp.o"
  "CMakeFiles/test_core.dir/core/thermal_em_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/workload_noise_test.cpp.o"
  "CMakeFiles/test_core.dir/core/workload_noise_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
