
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/em/array_mttf_test.cpp" "tests/CMakeFiles/test_em.dir/em/array_mttf_test.cpp.o" "gcc" "tests/CMakeFiles/test_em.dir/em/array_mttf_test.cpp.o.d"
  "/root/repo/tests/em/black_test.cpp" "tests/CMakeFiles/test_em.dir/em/black_test.cpp.o" "gcc" "tests/CMakeFiles/test_em.dir/em/black_test.cpp.o.d"
  "/root/repo/tests/em/thermal_cycling_test.cpp" "tests/CMakeFiles/test_em.dir/em/thermal_cycling_test.cpp.o" "gcc" "tests/CMakeFiles/test_em.dir/em/thermal_cycling_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/em/CMakeFiles/vstack_em.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
