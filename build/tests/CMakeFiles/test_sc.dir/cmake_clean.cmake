file(REMOVE_RECURSE
  "CMakeFiles/test_sc.dir/sc/alternatives_test.cpp.o"
  "CMakeFiles/test_sc.dir/sc/alternatives_test.cpp.o.d"
  "CMakeFiles/test_sc.dir/sc/area_test.cpp.o"
  "CMakeFiles/test_sc.dir/sc/area_test.cpp.o.d"
  "CMakeFiles/test_sc.dir/sc/compact_model_test.cpp.o"
  "CMakeFiles/test_sc.dir/sc/compact_model_test.cpp.o.d"
  "CMakeFiles/test_sc.dir/sc/ladder_test.cpp.o"
  "CMakeFiles/test_sc.dir/sc/ladder_test.cpp.o.d"
  "CMakeFiles/test_sc.dir/sc/topology_test.cpp.o"
  "CMakeFiles/test_sc.dir/sc/topology_test.cpp.o.d"
  "test_sc"
  "test_sc.pdb"
  "test_sc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
