
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sc/alternatives_test.cpp" "tests/CMakeFiles/test_sc.dir/sc/alternatives_test.cpp.o" "gcc" "tests/CMakeFiles/test_sc.dir/sc/alternatives_test.cpp.o.d"
  "/root/repo/tests/sc/area_test.cpp" "tests/CMakeFiles/test_sc.dir/sc/area_test.cpp.o" "gcc" "tests/CMakeFiles/test_sc.dir/sc/area_test.cpp.o.d"
  "/root/repo/tests/sc/compact_model_test.cpp" "tests/CMakeFiles/test_sc.dir/sc/compact_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_sc.dir/sc/compact_model_test.cpp.o.d"
  "/root/repo/tests/sc/ladder_test.cpp" "tests/CMakeFiles/test_sc.dir/sc/ladder_test.cpp.o" "gcc" "tests/CMakeFiles/test_sc.dir/sc/ladder_test.cpp.o.d"
  "/root/repo/tests/sc/topology_test.cpp" "tests/CMakeFiles/test_sc.dir/sc/topology_test.cpp.o" "gcc" "tests/CMakeFiles/test_sc.dir/sc/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sc/CMakeFiles/vstack_sc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
