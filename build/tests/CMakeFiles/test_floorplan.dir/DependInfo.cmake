
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/floorplan/floorplan_test.cpp" "tests/CMakeFiles/test_floorplan.dir/floorplan/floorplan_test.cpp.o" "gcc" "tests/CMakeFiles/test_floorplan.dir/floorplan/floorplan_test.cpp.o.d"
  "/root/repo/tests/floorplan/heatmap_test.cpp" "tests/CMakeFiles/test_floorplan.dir/floorplan/heatmap_test.cpp.o" "gcc" "tests/CMakeFiles/test_floorplan.dir/floorplan/heatmap_test.cpp.o.d"
  "/root/repo/tests/floorplan/power_map_test.cpp" "tests/CMakeFiles/test_floorplan.dir/floorplan/power_map_test.cpp.o" "gcc" "tests/CMakeFiles/test_floorplan.dir/floorplan/power_map_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/floorplan/CMakeFiles/vstack_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vstack_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
