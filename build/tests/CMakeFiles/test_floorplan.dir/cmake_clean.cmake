file(REMOVE_RECURSE
  "CMakeFiles/test_floorplan.dir/floorplan/floorplan_test.cpp.o"
  "CMakeFiles/test_floorplan.dir/floorplan/floorplan_test.cpp.o.d"
  "CMakeFiles/test_floorplan.dir/floorplan/heatmap_test.cpp.o"
  "CMakeFiles/test_floorplan.dir/floorplan/heatmap_test.cpp.o.d"
  "CMakeFiles/test_floorplan.dir/floorplan/power_map_test.cpp.o"
  "CMakeFiles/test_floorplan.dir/floorplan/power_map_test.cpp.o.d"
  "test_floorplan"
  "test_floorplan.pdb"
  "test_floorplan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
