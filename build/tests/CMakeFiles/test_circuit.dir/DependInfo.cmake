
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/circuit/mna_test.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/mna_test.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/mna_test.cpp.o.d"
  "/root/repo/tests/circuit/netlist_test.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/netlist_test.cpp.o.d"
  "/root/repo/tests/circuit/sc_testbench_test.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/sc_testbench_test.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/sc_testbench_test.cpp.o.d"
  "/root/repo/tests/circuit/spice_parser_test.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/spice_parser_test.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/spice_parser_test.cpp.o.d"
  "/root/repo/tests/circuit/transient_test.cpp" "tests/CMakeFiles/test_circuit.dir/circuit/transient_test.cpp.o" "gcc" "tests/CMakeFiles/test_circuit.dir/circuit/transient_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/vstack_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/vstack_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
