
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pdn/config_io_test.cpp" "tests/CMakeFiles/test_pdn.dir/pdn/config_io_test.cpp.o" "gcc" "tests/CMakeFiles/test_pdn.dir/pdn/config_io_test.cpp.o.d"
  "/root/repo/tests/pdn/decap_optimizer_test.cpp" "tests/CMakeFiles/test_pdn.dir/pdn/decap_optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/test_pdn.dir/pdn/decap_optimizer_test.cpp.o.d"
  "/root/repo/tests/pdn/network_test.cpp" "tests/CMakeFiles/test_pdn.dir/pdn/network_test.cpp.o" "gcc" "tests/CMakeFiles/test_pdn.dir/pdn/network_test.cpp.o.d"
  "/root/repo/tests/pdn/params_test.cpp" "tests/CMakeFiles/test_pdn.dir/pdn/params_test.cpp.o" "gcc" "tests/CMakeFiles/test_pdn.dir/pdn/params_test.cpp.o.d"
  "/root/repo/tests/pdn/properties_test.cpp" "tests/CMakeFiles/test_pdn.dir/pdn/properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_pdn.dir/pdn/properties_test.cpp.o.d"
  "/root/repo/tests/pdn/solver_test.cpp" "tests/CMakeFiles/test_pdn.dir/pdn/solver_test.cpp.o" "gcc" "tests/CMakeFiles/test_pdn.dir/pdn/solver_test.cpp.o.d"
  "/root/repo/tests/pdn/transient_test.cpp" "tests/CMakeFiles/test_pdn.dir/pdn/transient_test.cpp.o" "gcc" "tests/CMakeFiles/test_pdn.dir/pdn/transient_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdn/CMakeFiles/vstack_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/sc/CMakeFiles/vstack_sc.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/vstack_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vstack_power.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/vstack_la.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
