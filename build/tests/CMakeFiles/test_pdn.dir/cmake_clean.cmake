file(REMOVE_RECURSE
  "CMakeFiles/test_pdn.dir/pdn/config_io_test.cpp.o"
  "CMakeFiles/test_pdn.dir/pdn/config_io_test.cpp.o.d"
  "CMakeFiles/test_pdn.dir/pdn/decap_optimizer_test.cpp.o"
  "CMakeFiles/test_pdn.dir/pdn/decap_optimizer_test.cpp.o.d"
  "CMakeFiles/test_pdn.dir/pdn/network_test.cpp.o"
  "CMakeFiles/test_pdn.dir/pdn/network_test.cpp.o.d"
  "CMakeFiles/test_pdn.dir/pdn/params_test.cpp.o"
  "CMakeFiles/test_pdn.dir/pdn/params_test.cpp.o.d"
  "CMakeFiles/test_pdn.dir/pdn/properties_test.cpp.o"
  "CMakeFiles/test_pdn.dir/pdn/properties_test.cpp.o.d"
  "CMakeFiles/test_pdn.dir/pdn/solver_test.cpp.o"
  "CMakeFiles/test_pdn.dir/pdn/solver_test.cpp.o.d"
  "CMakeFiles/test_pdn.dir/pdn/transient_test.cpp.o"
  "CMakeFiles/test_pdn.dir/pdn/transient_test.cpp.o.d"
  "test_pdn"
  "test_pdn.pdb"
  "test_pdn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
