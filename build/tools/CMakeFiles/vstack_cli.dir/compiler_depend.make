# Empty compiler generated dependencies file for vstack_cli.
# This may be replaced when dependencies are built.
