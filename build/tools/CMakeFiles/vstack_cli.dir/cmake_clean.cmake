file(REMOVE_RECURSE
  "CMakeFiles/vstack_cli.dir/vstack_cli.cpp.o"
  "CMakeFiles/vstack_cli.dir/vstack_cli.cpp.o.d"
  "vstack_cli"
  "vstack_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstack_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
