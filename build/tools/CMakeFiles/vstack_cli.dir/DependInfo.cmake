
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/vstack_cli.cpp" "tools/CMakeFiles/vstack_cli.dir/vstack_cli.cpp.o" "gcc" "tools/CMakeFiles/vstack_cli.dir/vstack_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/circuit/CMakeFiles/vstack_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vstack_core.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/vstack_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/pdn/CMakeFiles/vstack_pdn.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/vstack_la.dir/DependInfo.cmake"
  "/root/repo/build/src/sc/CMakeFiles/vstack_sc.dir/DependInfo.cmake"
  "/root/repo/build/src/floorplan/CMakeFiles/vstack_floorplan.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vstack_power.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/vstack_em.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vstack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
