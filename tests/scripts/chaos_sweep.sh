#!/usr/bin/env bash
# Exhaustive crash-schedule sweep over the failpoint catalog
# (docs/chaos_testing.md).  Unlike the random drills
# (shard_chaos.sh / serve_chaos.sh), every durability window is crashed
# deterministically, exactly once.
#
# Drives `vstack_cli chaos-explore` twice:
#
#   1. Crash sweep: census-run both workloads (sharded campaign + spool
#      server), then re-run once per (failpoint, hit-index), _exit(137)
#      exactly there, restart, and assert recovery is bit-identical
#      (masked) to the uninjected reference.  --min-schedules=25 makes
#      silent de-instrumentation (e.g. a build that lost the hooks) a
#      hard failure, per the acceptance floor.
#   2. Err sweep: same schedule space with injected EIO/ENOSPC instead
#      of crashes; every injection must either surface as a clean
#      nonzero exit (never a signal, never a corrupt artifact, restart
#      recovers) or be absorbed with a reference-identical artifact.
#
# Usage: chaos_sweep.sh <path-to-vstack_cli> [extra chaos-explore args]
set -euo pipefail

CLI=${1:?usage: chaos_sweep.sh <path-to-vstack_cli> [extra args]}
CLI=$(readlink -f "$CLI")
shift
WORK=$(mktemp -d "${TMPDIR:-/tmp}/vstack_chaos_sweep.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

MIN_CRASH_SCHEDULES=${MIN_CRASH_SCHEDULES:-25}

if ! "$CLI" version | grep -q 'failpoints:[[:space:]]*on'; then
    echo "chaos_sweep: $CLI built with -DVSTACK_FAILPOINTS=OFF; nothing to sweep" >&2
    exit 1
fi

echo "== crash sweep: every (failpoint, hit) across shard + serve =="
"$CLI" chaos-explore --work-dir="$WORK/crash" --workload=both \
    --mode=crash --min-schedules="$MIN_CRASH_SCHEDULES" "$@"

echo "== err sweep: EIO/ENOSPC at every failpoint =="
"$CLI" chaos-explore --work-dir="$WORK/err" --workload=both \
    --mode=err --errnos=EIO,ENOSPC "$@"

echo "chaos_sweep: PASS"
