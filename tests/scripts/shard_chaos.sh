#!/usr/bin/env bash
# Chaos harness for the shard fleet (docs/distributed_campaigns.md).
#
# Three passes over the same campaign:
#
#   1. Reference: the serial `vstack_cli campaign` manifest.
#   2. Chaos: a 4-worker sharded run with one POISON trial (the worker
#      _exit()s on reaching it, via the VSTACK_SHARD_CRASH_TRIAL hook)
#      while this script SIGKILLs random workers mid-flight.  The run must
#      exit 2 (quarantine), quarantine EXACTLY the poison trial after
#      max-attempts worker deaths, commit every other trial exactly once
#      into the merged manifest, and those lines must be bit-identical to
#      the reference (wall_seconds masked -- it is real time).
#   3. Clean: a fresh sharded run without poison must exit 0 and reproduce
#      the reference manifest in full.
#
# Usage: shard_chaos.sh <path-to-vstack_cli>
set -euo pipefail

CLI=${1:?usage: shard_chaos.sh <path-to-vstack_cli>}
CLI=$(readlink -f "$CLI")
WORK=$(mktemp -d "${TMPDIR:-/tmp}/vstack_shard_chaos.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

CAMPAIGN_ARGS=(--layers=4 --grid=8 --trials=8 --faults=2 --seed=7 --timeout=0)
POISON_TRIAL=5
MAX_ATTEMPTS=4

echo "== reference run (serial) =="
"$CLI" campaign "${CAMPAIGN_ARGS[@]}" --jobs=2 --manifest="$WORK/ref.jsonl"

echo "== chaos run: poison trial $POISON_TRIAL + random worker SIGKILLs =="
JOB=$WORK/job_chaos
set +e
VSTACK_SHARD_CRASH_TRIAL=$POISON_TRIAL \
    "$CLI" campaign "${CAMPAIGN_ARGS[@]}" --shards=4 --chunk=1 \
    --max-attempts=$MAX_ATTEMPTS --lease-expiry=2 --heartbeat=0.5 \
    --job-dir="$JOB" &
SUPERVISOR=$!
set -e

# While the fleet fights the poison trial, murder random workers.  The
# supervisor must restart them and the assertions below must hold no
# matter which workers die where.
KILLS=0
for _ in $(seq 1 40); do
  kill -0 "$SUPERVISOR" 2>/dev/null || break
  sleep 0.4
  if [ "$KILLS" -lt 3 ]; then
    # Workers are children of the supervisor running `vstack_cli worker`.
    VICTIMS=$(pgrep -f "vstack_cli worker --job-dir=$JOB" || true)
    if [ -n "$VICTIMS" ]; then
      VICTIM=$(echo "$VICTIMS" | shuf -n 1)
      if kill -9 "$VICTIM" 2>/dev/null; then
        KILLS=$((KILLS + 1))
        echo "killed worker pid $VICTIM ($KILLS so far)"
      fi
    fi
  fi
done
set +e
wait "$SUPERVISOR"
CHAOS_EXIT=$?
set -e
echo "chaos supervisor exit code: $CHAOS_EXIT (killed $KILLS workers)"
test "$CHAOS_EXIT" -eq 2 || {
  echo "FAIL: expected exit 2 (quarantined trial), got $CHAOS_EXIT"; exit 1; }

echo "== verify chaos run =="
python3 - "$WORK/ref.jsonl" "$JOB" "$POISON_TRIAL" "$MAX_ATTEMPTS" <<'EOF'
import glob, json, os, re, sys

ref_path, job, poison, max_attempts = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]))
mask = lambda line: re.sub(r',"wall_seconds":[^,}]*', '', line)

def load_manifest(path):
    with open(path) as f:
        lines = [l.rstrip("\n") for l in f]
    header, body = lines[0], [l for l in lines[1:] if l]
    by_index = {}
    for line in body:
        m = re.search(r'"index":(\d+)', line)
        assert m, f"{path}: unparseable line {line[:60]}"
        idx = int(m.group(1))
        assert idx not in by_index, f"{path}: trial {idx} committed twice"
        by_index[idx] = line
    return header, by_index

ref_header, ref = load_manifest(ref_path)
merged_header, merged = load_manifest(os.path.join(job, "merged.jsonl"))
assert merged_header == ref_header, "merged header differs from serial"

# Exactly-once commit of every non-poison trial, bit-identical physics.
expected = set(ref) - {poison}
assert set(merged) == expected, (sorted(merged), sorted(expected))
for idx in expected:
    assert mask(merged[idx]) == mask(ref[idx]), \
        f"trial {idx}: merged line differs from serial\n  ref:    " \
        f"{ref[idx]}\n  merged: {merged[idx]}"

# The poison trial never committed to ANY shard: the worker dies before
# the scenario produces a result.
for shard in glob.glob(os.path.join(job, "shards", "*.jsonl")):
    with open(shard) as f:
        for line in f:
            assert f'"index":{poison},' not in line, \
                f"{shard}: poison trial {poison} has a commit"

# Exactly the poison chunk is quarantined, after max_attempts deaths,
# with the full attempt trail inlined in the diagnostic.
qfiles = glob.glob(os.path.join(job, "quarantine", "*.json"))
assert qfiles == [os.path.join(job, "quarantine", f"chunk-{poison}.json")], \
    f"quarantine dir: {qfiles}"
diag = json.load(open(qfiles[0]))
assert diag["trial_begin"] <= poison < diag["trial_end"], diag
assert diag["attempts"] == max_attempts, diag
assert len(diag["trail"]) == max_attempts, diag
assert all("worker" in a and "pid" in a for a in diag["trail"]), diag

print(f"chaos OK: {len(merged)}/{len(ref)} trials committed exactly once "
      f"and bit-identical to serial; trial {poison} quarantined after "
      f"{diag['attempts']} attempts")
EOF

echo "== clean run: no poison, no kills =="
JOB2=$WORK/job_clean
"$CLI" campaign "${CAMPAIGN_ARGS[@]}" --shards=3 --chunk=2 \
    --lease-expiry=5 --heartbeat=0.5 --job-dir="$JOB2"
python3 - "$WORK/ref.jsonl" "$JOB2/merged.jsonl" <<'EOF'
import re, sys
mask = lambda p: re.sub(r',"wall_seconds":[^,}]*', '', open(p).read())
assert mask(sys.argv[1]) == mask(sys.argv[2]), \
    "clean sharded merge differs from the serial manifest"
print("clean OK: sharded merge bit-identical to serial (wall_seconds masked)")
EOF

echo "shard_chaos: all checks passed"
