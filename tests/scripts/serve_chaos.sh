#!/usr/bin/env bash
# Chaos/soak harness for `vstack_cli serve` (docs/service_mode.md).
#
# Three passes against real spool directories:
#
#   1. Reference: drain a mixed request batch uninterrupted.
#   2. Chaos: same batch, SIGKILL the server mid-flight, restart, drain.
#      Every request must reach a terminal state exactly once, and the
#      physics aggregates must match the reference per id bit-for-bit
#      (wall_seconds and resume bookkeeping masked -- they legitimately
#      depend on where the kill landed).
#   3. Overload: submit past the queue bound and assert the excess is shed
#      as rejected-overload while the admitted prefix still completes.
#
# Usage: serve_chaos.sh <path-to-vstack_cli>
set -euo pipefail

CLI=${1:?usage: serve_chaos.sh <path-to-vstack_cli>}
CLI=$(readlink -f "$CLI")
WORK=$(mktemp -d "${TMPDIR:-/tmp}/vstack_chaos.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Mixed batch: a resumable campaign (slow enough for the kill to land
# mid-run), a contingency sweep, a ride-through, and an invalid request.
# Filenames sort campaign first, so the kill interrupts the long job.
submit_batch() {
  local root=$1
  mkdir -p "$root/incoming"
  cat > "$root/incoming/a_camp.req" <<'EOF'
id = a_camp
kind = campaign
topology = stacked
layers = 4
grid = 8
trials = 6
faults = 2
seed = 42
EOF
  cat > "$root/incoming/b_cont.req" <<'EOF'
id = b_cont
kind = contingency
topology = stacked
layers = 2
grid = 4
trials = 3
faults = 1
seed = 11
EOF
  cat > "$root/incoming/c_ride.req" <<'EOF'
id = c_ride
kind = ride-through
topology = stacked
layers = 4
grid = 8
seed = 7
EOF
  printf 'kind = warp\n' > "$root/incoming/d_bad.req"
}

drain() {  # run the server until the spool is idle
  local root=$1
  "$CLI" serve --spool="$root" --jobs=2 --degrade-divisor=1 \
      --poll=0.05 --idle-exit=0.5
}

echo "== reference run =="
REF=$WORK/ref
submit_batch "$REF"
drain "$REF"

echo "== chaos run: SIGKILL mid-campaign, restart, drain =="
CHAOS=$WORK/chaos
submit_batch "$CHAOS"
"$CLI" serve --spool="$CHAOS" --jobs=2 --degrade-divisor=1 --poll=0.05 &
SERVER=$!
# Wait until the server has claimed work, then give the campaign a moment
# to be genuinely mid-run before the kill.  The assertions below must hold
# no matter where the kill actually lands.
for _ in $(seq 1 200); do
  if ls "$CHAOS/active"/*.req >/dev/null 2>&1; then break; fi
  sleep 0.05
done
sleep 1
kill -9 "$SERVER" 2>/dev/null || true
wait "$SERVER" 2>/dev/null || true
echo "killed server pid $SERVER; restarting to drain"
drain "$CHAOS"

echo "== compare chaos vs reference =="
python3 - "$REF" "$CHAOS" <<'EOF'
import json, os, re, sys

ref_root, chaos_root = sys.argv[1], sys.argv[2]
IDS = ["a_camp", "b_cont", "c_ride", "d_bad"]
# Masked fields depend on scheduling/resume, not on the physics:
#   wall_seconds  -- real time
#   attempts      -- retry bookkeeping resets across a restart
#   resumed/evaluated -- how many trials each process ran vs reloaded
#   detail        -- human summary text embeds the counters above
MASK = re.compile(
    r'"(wall_seconds|attempts|resumed|evaluated)":[^,}]*|"detail":"[^"]*"')

def load(root):
    by_id = {}
    with open(os.path.join(root, "results", "responses.jsonl")) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rid = json.loads(line)["id"]
            assert rid not in by_id, f"{root}: duplicate response for {rid}"
            by_id[rid] = MASK.sub("", line)
    return by_id

def terminal_state(root, rid):
    hits = [d for d in ("done", "failed")
            if os.path.exists(os.path.join(root, d, rid + ".req"))]
    assert len(hits) == 1, f"{root}: {rid} terminal states = {hits}"
    for d in ("incoming", "active"):
        assert not os.path.exists(os.path.join(root, d, rid + ".req")), \
            f"{root}: {rid} still queued in {d}/"
    return hits[0]

ref, chaos = load(ref_root), load(chaos_root)
assert set(ref) == set(chaos) == set(IDS), (sorted(ref), sorted(chaos))
for rid in IDS:
    ref_dir = terminal_state(ref_root, rid)
    chaos_dir = terminal_state(chaos_root, rid)
    assert ref_dir == chaos_dir, f"{rid}: {ref_dir} vs {chaos_dir}"
    assert ref[rid] == chaos[rid], (
        f"{rid}: masked responses differ\n  ref:   {ref[rid]}"
        f"\n  chaos: {chaos[rid]}")
print(f"chaos OK: {len(IDS)} requests, one terminal state each, "
      "masked responses bit-identical to the uninterrupted run")
EOF

echo "== overload run: queue bound 2, 6 submissions =="
OVER=$WORK/overload
mkdir -p "$OVER/incoming"
for i in 0 1 2 3 4 5; do
  cat > "$OVER/incoming/o$i.req" <<EOF
id = o$i
kind = contingency
topology = stacked
layers = 2
grid = 4
trials = 2
faults = 1
seed = 11
EOF
done
"$CLI" serve --spool="$OVER" --jobs=1 --queue=2 --degrade-divisor=1 \
    --poll=0.05 --idle-exit=0.5
python3 - "$OVER" <<'EOF'
import json, sys

root = sys.argv[1]
status = {}
with open(root + "/results/responses.jsonl") as f:
    for line in f:
        r = json.loads(line)
        status[r["id"]] = r["status"]
assert len(status) == 6, status
shed = sorted(i for i, s in status.items() if s == "rejected-overload")
ok = sorted(i for i, s in status.items() if s == "ok")
assert len(shed) == 4 and len(ok) == 2, status
print(f"overload OK: admitted {ok} completed, shed {shed} past the bound")
EOF

echo "serve_chaos: all checks passed"
