#!/usr/bin/env bash
# Ingestion drill for the pgio benchmark reader (docs/benchmark_ingestion.md).
#
# For every shipped fixture, under BOTH linear-algebra backends
# (VSTACK_LA_BACKEND=reference / optimized):
#
#   1. Golden validation: `vstack_cli validate` against the exact
#      .solution file at the acceptance tolerance (1e-6 V).
#   2. Export round-trip: `import --dump` twice; the two dumps must be
#      bit-identical (normalization is a fixed point), and the dumped
#      netlist must still validate against the ORIGINAL golden.
#   3. Failure path: a doctored golden must exit 3 (verdict), not 0,
#      and not 2 (2 means the solver itself failed).
#
# CI runs this against the ASan+UBSan build, so every parse/solve/export
# also doubles as a leak/UB sweep over the ingestion pipeline.
#
# Usage: pgio_validate.sh <path-to-vstack_cli>
set -euo pipefail

CLI=${1:?usage: pgio_validate.sh <path-to-vstack_cli>}
CLI=$(readlink -f "$CLI")
DATA=$(readlink -f "$(dirname "$0")/../data/pgio")
WORK=$(mktemp -d "${TMPDIR:-/tmp}/vstack_pgio.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

FIXTURES=(ladder4 mesh3x3 twonet_vias)

for backend in reference optimized; do
  export VSTACK_LA_BACKEND=$backend
  echo "== backend: $backend =="

  for f in "${FIXTURES[@]}"; do
    echo "-- validate $f"
    "$CLI" validate "$DATA/$f.spice" --tol=1e-6

    echo "-- round-trip $f"
    "$CLI" import "$DATA/$f.spice" --dump="$WORK/$f.a.spice" > /dev/null
    "$CLI" import "$WORK/$f.a.spice" --dump="$WORK/$f.b.spice" > /dev/null
    cmp "$WORK/$f.a.spice" "$WORK/$f.b.spice" \
      || { echo "FAIL: $f re-export is not bit-identical"; exit 1; }
    "$CLI" validate "$WORK/$f.a.spice" --solution="$DATA/$f.solution" \
        --tol=1e-6
  done

  echo "-- doctored golden must fail with exit 3"
  sed 's/^n1_3_0 .*/n1_3_0 0.25/' "$DATA/ladder4.solution" \
      > "$WORK/doctored.solution"
  rc=0
  "$CLI" validate "$DATA/ladder4.spice" \
      --solution="$WORK/doctored.solution" --tol=1e-6 > /dev/null || rc=$?
  [[ $rc -eq 3 ]] \
      || { echo "FAIL: doctored golden exited $rc, want 3"; exit 1; }
done

echo "pgio ingestion drill passed (both backends)"
