#include "power/trace.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::power {
namespace {

const ApplicationProfile& app() {
  static const auto profiles = parsec_profiles();
  return profiles[1];  // bodytrack: wide support
}

TEST(TraceTest, StaysWithinSupport) {
  Rng rng(3);
  const auto trace = generate_trace(app(), 500, 0.8, rng);
  EXPECT_GE(trace.min(), app().activity_lo);
  EXPECT_LE(trace.max(), app().activity_hi);
  EXPECT_EQ(trace.activities.size(), 500u);
  EXPECT_EQ(trace.application, app().name);
}

TEST(TraceTest, ZeroCorrelationMatchesIndependentSampling) {
  Rng rng(5);
  const auto trace = generate_trace(app(), 4000, 0.0, rng);
  // Lag-1 autocorrelation near zero for independent draws.
  EXPECT_NEAR(lag1_autocorrelation(trace), 0.0, 0.05);
}

TEST(TraceTest, HighCorrelationProducesSmoothTrace) {
  Rng rng(7);
  const auto smooth = generate_trace(app(), 4000, 0.9, rng);
  const auto rough = generate_trace(app(), 4000, 0.1, rng);
  EXPECT_GT(lag1_autocorrelation(smooth), 0.7);
  EXPECT_LT(lag1_autocorrelation(rough), 0.4);
}

TEST(TraceTest, MeanTracksProfileCenter) {
  Rng rng(11);
  const auto trace = generate_trace(app(), 8000, 0.5, rng);
  const double center = 0.5 * (app().activity_lo + app().activity_hi);
  EXPECT_NEAR(trace.mean(), center, 0.05);
}

TEST(TraceTest, CorrelationNarrowsShortWindowSpread) {
  // Over a SHORT window, a correlated trace wanders less than an
  // independent one -- the reason phase behaviour matters for scheduling.
  Rng rng_a(13), rng_b(13);
  const auto corr = generate_trace(app(), 20, 0.95, rng_a);
  const auto indep = generate_trace(app(), 20, 0.0, rng_b);
  EXPECT_LT(corr.max() - corr.min(), indep.max() - indep.min());
}

TEST(TraceTest, Validation) {
  Rng rng(1);
  EXPECT_THROW(generate_trace(app(), 0, 0.5, rng), Error);
  EXPECT_THROW(generate_trace(app(), 10, 1.0, rng), Error);
  EXPECT_THROW(generate_trace(app(), 10, -0.1, rng), Error);
}

TEST(TraceTest, AutocorrelationRequiresSamples) {
  ActivityTrace t;
  t.activities = {0.5, 0.6};
  EXPECT_THROW(lag1_autocorrelation(t), Error);
}

}  // namespace
}  // namespace vstack::power
