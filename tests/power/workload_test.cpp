#include "power/workload.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"

namespace vstack::power {
namespace {

TEST(WorkloadTest, ThirteenParsecApplications) {
  const auto profiles = parsec_profiles();
  EXPECT_EQ(profiles.size(), 13u);
  for (const auto& p : profiles) EXPECT_NO_THROW(p.validate());
}

TEST(WorkloadTest, BlackscholesIsTightest) {
  // Paper: best-case application shows ~10% maximum imbalance.
  const auto profiles = parsec_profiles();
  const auto black = std::find_if(
      profiles.begin(), profiles.end(),
      [](const auto& p) { return p.name == "blackscholes"; });
  ASSERT_NE(black, profiles.end());
  EXPECT_NEAR(black->support_imbalance(), 0.10, 0.02);
  for (const auto& p : profiles) {
    EXPECT_GE(p.support_imbalance(), black->support_imbalance() - 1e-12);
  }
}

TEST(WorkloadTest, WorstApplicationExceedsNinetyPercent) {
  double worst = 0.0;
  for (const auto& p : parsec_profiles()) {
    worst = std::max(worst, p.support_imbalance());
  }
  EXPECT_GT(worst, 0.90);
}

TEST(WorkloadTest, MeanMaxImbalanceNearPaperValue) {
  // Paper: "the applications have a maximum-imbalance ratio of 65%" on
  // average.
  const auto model = CorePowerModel::cortex_a9_like();
  Rng rng(2015);
  const auto campaign = run_sampling_campaign(model, kPaperSampleCount, rng);
  EXPECT_EQ(campaign.size(), 13u);
  const double mean_imb = mean_max_imbalance(campaign);
  EXPECT_GT(mean_imb, 0.55);
  EXPECT_LT(mean_imb, 0.72);
}

TEST(WorkloadTest, SamplesStayWithinSupport) {
  Rng rng(7);
  const auto profiles = parsec_profiles();
  for (const auto& p : profiles) {
    for (int i = 0; i < 200; ++i) {
      const double a = sample_activity(p, rng);
      EXPECT_GE(a, p.activity_lo);
      EXPECT_LE(a, p.activity_hi);
    }
  }
}

TEST(WorkloadTest, PowerSamplesAboveLeakageFloor) {
  const auto model = CorePowerModel::cortex_a9_like();
  Rng rng(11);
  const auto powers =
      sample_core_powers(model, parsec_profiles()[0], 100, rng);
  for (double p : powers) {
    EXPECT_GT(p, model.leakage_power());
    EXPECT_LE(p, model.peak_total_power() + 1e-12);
  }
}

TEST(WorkloadTest, MaxImbalanceRatioComputation) {
  // Dynamic powers 0.4 and 0.1 on a 0.05 leakage floor:
  // imbalance = 1 - 0.1/0.4 = 75%.
  const double imb = max_imbalance_ratio({0.45, 0.15, 0.30}, 0.05);
  EXPECT_NEAR(imb, 0.75, 1e-12);
}

TEST(WorkloadTest, MaxImbalanceRejectsSingleton) {
  EXPECT_THROW(max_imbalance_ratio({1.0}, 0.0), Error);
}

TEST(WorkloadTest, CampaignIsDeterministicForSeed) {
  const auto model = CorePowerModel::cortex_a9_like();
  Rng rng_a(99), rng_b(99);
  const auto a = run_sampling_campaign(model, 100, rng_a);
  const auto b = run_sampling_campaign(model, 100, rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].power.median, b[i].power.median);
    EXPECT_DOUBLE_EQ(a[i].max_imbalance, b[i].max_imbalance);
  }
}

TEST(WorkloadTest, InterleavedPattern) {
  const auto acts = interleaved_layer_activities(4, 0.6);
  ASSERT_EQ(acts.size(), 4u);
  EXPECT_DOUBLE_EQ(acts[0], 1.0);
  EXPECT_DOUBLE_EQ(acts[1], 0.4);
  EXPECT_DOUBLE_EQ(acts[2], 1.0);
  EXPECT_DOUBLE_EQ(acts[3], 0.4);
}

TEST(WorkloadTest, InterleavedFullImbalanceIdlesEvenLayers) {
  const auto acts = interleaved_layer_activities(3, 1.0);
  EXPECT_DOUBLE_EQ(acts[1], 0.0);
}

TEST(WorkloadTest, InterleavedRejectsBadInputs) {
  EXPECT_THROW(interleaved_layer_activities(0, 0.5), Error);
  EXPECT_THROW(interleaved_layer_activities(2, 1.5), Error);
}

// Property sweep: per-application max imbalance measured from samples must
// approach (and never exceed) the support-bound imbalance.
class PerAppImbalance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PerAppImbalance, SampledImbalanceTracksSupport) {
  const auto model = CorePowerModel::cortex_a9_like();
  const auto profiles = parsec_profiles();
  const auto& p = profiles[GetParam()];
  Rng rng(1234 + GetParam());
  const auto powers = sample_core_powers(model, p, 1000, rng);
  const double measured = max_imbalance_ratio(powers, model.leakage_power());
  EXPECT_LE(measured, p.support_imbalance() + 1e-9) << p.name;
  EXPECT_GT(measured, 0.75 * p.support_imbalance()) << p.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, PerAppImbalance,
                         ::testing::Range<std::size_t>(0, 13));

}  // namespace
}  // namespace vstack::power
