#include "power/core_power_model.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace vstack::power {
namespace {

TEST(CorePowerModelTest, CalibratedToPaperTotals) {
  const auto model = CorePowerModel::cortex_a9_like();
  // 16 cores: 7.6 W peak, 44.12 mm^2 (paper Sec. 4.1).
  EXPECT_NEAR(16.0 * model.peak_total_power(), 7.6, 1e-9);
  EXPECT_NEAR(16.0 * model.area() / units::mm2, 44.12, 1e-6);
  EXPECT_DOUBLE_EQ(model.nominal_vdd(), 1.0);
  EXPECT_DOUBLE_EQ(model.nominal_frequency(), 1e9);
}

TEST(CorePowerModelTest, LeakageIsTenPercentOfPeak) {
  const auto model = CorePowerModel::cortex_a9_like();
  EXPECT_NEAR(model.leakage_power() / model.peak_total_power(), 0.10, 1e-9);
}

TEST(CorePowerModelTest, DynamicScalesLinearlyWithActivity) {
  const auto model = CorePowerModel::cortex_a9_like();
  EXPECT_NEAR(model.dynamic_power(0.5), 0.5 * model.peak_dynamic_power(),
              1e-12);
  EXPECT_DOUBLE_EQ(model.dynamic_power(0.0), 0.0);
}

TEST(CorePowerModelTest, DynamicScalesWithVSquaredF) {
  const auto model = CorePowerModel::cortex_a9_like();
  const double base = model.dynamic_power(1.0, 1.0, 1e9);
  EXPECT_NEAR(model.dynamic_power(1.0, 0.9, 1e9), base * 0.81, 1e-12);
  EXPECT_NEAR(model.dynamic_power(1.0, 1.0, 2e9), base * 2.0, 1e-12);
}

TEST(CorePowerModelTest, LeakageScalesWithV) {
  const auto model = CorePowerModel::cortex_a9_like();
  EXPECT_NEAR(model.leakage_power(0.9), 0.9 * model.leakage_power(), 1e-12);
}

TEST(CorePowerModelTest, TotalPowerAtIdleIsLeakage) {
  const auto model = CorePowerModel::cortex_a9_like();
  EXPECT_NEAR(model.total_power(0.0), model.leakage_power(), 1e-12);
}

TEST(CorePowerModelTest, BlockPowersSumToTotal) {
  const auto model = CorePowerModel::cortex_a9_like();
  const auto blocks = model.block_powers(0.7);
  double sum = 0.0;
  for (double p : blocks) sum += p;
  EXPECT_NEAR(sum, model.total_power(0.7), 1e-12);
}

TEST(CorePowerModelTest, RejectsOutOfRangeActivity) {
  const auto model = CorePowerModel::cortex_a9_like();
  EXPECT_THROW(model.dynamic_power(-0.1), Error);
  EXPECT_THROW(model.dynamic_power(1.1), Error);
}

TEST(CorePowerModelTest, RejectsEmptyBlockList) {
  EXPECT_THROW(CorePowerModel({}, 1.0, 1e9), Error);
}

TEST(CorePowerModelTest, RejectsNonPositiveArea) {
  EXPECT_THROW(
      CorePowerModel({BlockPower{"b", 0.1, 0.01, 0.0}}, 1.0, 1e9), Error);
}

}  // namespace
}  // namespace vstack::power
