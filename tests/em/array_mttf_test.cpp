#include "em/array_mttf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace vstack::em {
namespace {

TEST(ArrayMttfTest, SingleConductorAtMedian) {
  BlackModel black;
  const double t50 = black.median_ttf(10e-3);
  const double t = array_mttf({10e-3}, black);
  EXPECT_NEAR(t, t50, 1e-6 * t50);
}

TEST(ArrayMttfTest, MoreConductorsFailSooner) {
  // Identical stress, more elements: first failure arrives earlier.
  BlackModel black;
  const double one = array_mttf({10e-3}, black);
  const std::vector<double> many(100, 10e-3);
  const double hundred = array_mttf(many, black);
  EXPECT_LT(hundred, one);
  // But not absurdly so (lognormal tails): within a factor ~5 at sigma 0.5.
  EXPECT_GT(hundred, one / 10.0);
}

TEST(ArrayMttfTest, HalvingCurrentExtendsLifetimeFourfold) {
  BlackModel black;  // n = 2
  const std::vector<double> high(64, 20e-3);
  const std::vector<double> low(64, 10e-3);
  const double ratio = array_mttf(low, black) / array_mttf(high, black);
  EXPECT_NEAR(ratio, 4.0, 0.01);
}

TEST(ArrayMttfTest, DominatedByHottestConductor) {
  BlackModel black;
  // One heavily-stressed conductor among many idle ones.
  std::vector<double> currents(500, 1e-4);
  currents[250] = 50e-3;
  const double t = array_mttf(currents, black);
  const double t_hot = black.median_ttf(50e-3);
  EXPECT_LT(t, t_hot);
  EXPECT_GT(t, 0.1 * t_hot);
}

TEST(ArrayMttfTest, UnstressedArrayLivesForever) {
  BlackModel black;
  const double t = array_mttf({0.0, 0.0, 0.0}, black);
  EXPECT_TRUE(std::isinf(t));
}

TEST(ArrayMttfTest, ProbabilityIsMonotone) {
  BlackModel black;
  Rng rng(4);
  std::vector<double> currents(64);
  for (auto& c : currents) c = rng.uniform(1e-3, 30e-3);
  const double t50 = array_mttf(currents, black);
  const double p_lo =
      array_failure_probability(t50 * 0.5, currents, black, 0.5);
  const double p_mid = array_failure_probability(t50, currents, black, 0.5);
  const double p_hi =
      array_failure_probability(t50 * 2.0, currents, black, 0.5);
  EXPECT_LT(p_lo, p_mid);
  EXPECT_LT(p_mid, p_hi);
  EXPECT_NEAR(p_mid, 0.5, 1e-6);
}

TEST(ArrayMttfTest, CustomProbabilityTarget) {
  BlackModel black;
  const std::vector<double> currents(32, 15e-3);
  ArrayMttfOptions early;
  early.probability_target = 0.01;
  ArrayMttfOptions late;
  late.probability_target = 0.99;
  EXPECT_LT(array_mttf(currents, black, early),
            array_mttf(currents, black, late));
}

TEST(ArrayMttfTest, UniformScalingInvariance) {
  // MTTF ratio between two designs is invariant to the Black prefactor --
  // this justifies the paper's normalized reporting.
  BlackModel a;
  BlackModel b = a;
  b.prefactor = 123.0;
  const std::vector<double> x(16, 5e-3), y(16, 9e-3);
  const double ratio_a = array_mttf(x, a) / array_mttf(y, a);
  const double ratio_b = array_mttf(x, b) / array_mttf(y, b);
  EXPECT_NEAR(ratio_a, ratio_b, 1e-6 * ratio_a);
}

TEST(ArrayMttfTest, RejectsEmptyArray) {
  BlackModel black;
  EXPECT_THROW(array_mttf({}, black), Error);
}

TEST(ArrayMttfTest, RejectsBadTarget) {
  BlackModel black;
  ArrayMttfOptions opts;
  opts.probability_target = 1.0;
  EXPECT_THROW(array_mttf({1e-3}, black, opts), Error);
}

// Property: array MTTF always lies between the hottest conductor's early
// tail and its median.
class ArraySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArraySizes, BoundedByHottestConductor) {
  BlackModel black;
  Rng rng(GetParam());
  std::vector<double> currents(GetParam());
  double hottest = 0.0;
  for (auto& c : currents) {
    c = rng.uniform(1e-3, 40e-3);
    hottest = std::max(hottest, c);
  }
  const double t = array_mttf(currents, black);
  EXPECT_LE(t, black.median_ttf(hottest) * (1.0 + 1e-9));
  EXPECT_GT(t, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArraySizes,
                         ::testing::Values(1, 4, 32, 256, 2048));

}  // namespace
}  // namespace vstack::em
