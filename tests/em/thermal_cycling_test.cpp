#include "em/thermal_cycling.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace vstack::em {
namespace {

TEST(CoffinMansonTest, ExponentScaling) {
  ThermalCyclingModel m;  // q = 2.2
  const double ratio = m.cycles_to_failure(20.0) / m.cycles_to_failure(40.0);
  EXPECT_NEAR(ratio, std::pow(2.0, 2.2), 1e-9);
}

TEST(CoffinMansonTest, ZeroSwingNeverFails) {
  ThermalCyclingModel m;
  EXPECT_TRUE(std::isinf(m.cycles_to_failure(0.0)));
  EXPECT_TRUE(std::isinf(m.time_to_failure(0.0)));
}

TEST(CoffinMansonTest, TimeIsCyclesTimesPeriod) {
  ThermalCyclingModel m;
  EXPECT_NEAR(m.time_to_failure(30.0),
              m.cycles_to_failure(30.0) * m.cycle_period, 1e-6);
}

TEST(CoffinMansonTest, Validation) {
  ThermalCyclingModel m;
  m.exponent = 0.0;
  EXPECT_THROW(m.cycles_to_failure(10.0), Error);
  m = ThermalCyclingModel{};
  EXPECT_THROW(m.cycles_to_failure(-1.0), Error);
}

TEST(CyclingArrayTest, SingleBumpAtMedian) {
  ThermalCyclingModel m;
  const double t = cycling_array_lifetime({25.0}, m);
  EXPECT_NEAR(t, m.time_to_failure(25.0), 1e-6 * t);
}

TEST(CyclingArrayTest, BiggerSwingsFailFirst) {
  ThermalCyclingModel m;
  const std::vector<double> cool(100, 15.0);
  const std::vector<double> hot(100, 45.0);
  EXPECT_GT(cycling_array_lifetime(cool, m),
            3.0 * cycling_array_lifetime(hot, m));
}

TEST(CyclingArrayTest, MoreBumpsFailSooner) {
  ThermalCyclingModel m;
  const std::vector<double> few(16, 30.0);
  const std::vector<double> many(1024, 30.0);
  EXPECT_GT(cycling_array_lifetime(few, m),
            cycling_array_lifetime(many, m));
}

TEST(CompetingRiskTest, DominatedByEarlierMechanism) {
  // When one mechanism fails 100x sooner, it sets the combined lifetime.
  const double combined = competing_risk_lifetime(1.0, 0.5, 100.0, 0.5);
  EXPECT_NEAR(combined, competing_risk_lifetime(1.0, 0.5, 1e12, 0.5), 0.05);
  EXPECT_LT(combined, 1.0);  // still slightly earlier than either median
}

TEST(CompetingRiskTest, EqualRisksShortenLifetime) {
  const double single = competing_risk_lifetime(10.0, 0.5, 1e12, 0.5);
  const double both = competing_risk_lifetime(10.0, 0.5, 10.0, 0.5);
  EXPECT_LT(both, single);
  EXPECT_GT(both, 0.5 * single);
}

TEST(CompetingRiskTest, InfiniteRisksLiveForever) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isinf(competing_risk_lifetime(inf, 0.5, inf, 0.5)));
}

TEST(CompetingRiskTest, RejectsBadTarget) {
  EXPECT_THROW(competing_risk_lifetime(1.0, 0.5, 1.0, 0.5, 1.5), Error);
}

}  // namespace
}  // namespace vstack::em
