#include "em/black.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace vstack::em {
namespace {

TEST(BlackTest, CurrentExponentScaling) {
  BlackModel m;  // n = 2
  const double t1 = m.median_ttf(10e-3);
  const double t2 = m.median_ttf(20e-3);
  // Doubling current quarters lifetime when n = 2.
  EXPECT_NEAR(t1 / t2, 4.0, 1e-9);
}

TEST(BlackTest, CustomExponent) {
  BlackModel m;
  m.current_exponent = 1.1;
  const double ratio = m.median_ttf(1e-3) / m.median_ttf(2e-3);
  EXPECT_NEAR(ratio, std::pow(2.0, 1.1), 1e-9);
}

TEST(BlackTest, HotterIsShorter) {
  BlackModel cool;
  BlackModel hot = cool;
  hot.temperature = cool.temperature + 30.0;
  EXPECT_LT(hot.median_ttf(10e-3), cool.median_ttf(10e-3));
}

TEST(BlackTest, ZeroCurrentNeverFails) {
  BlackModel m;
  EXPECT_TRUE(std::isinf(m.median_ttf(0.0)));
}

TEST(BlackTest, SignInsensitive) {
  BlackModel m;
  EXPECT_DOUBLE_EQ(m.median_ttf(5e-3), m.median_ttf(-5e-3));
}

TEST(BlackTest, Validation) {
  BlackModel m;
  m.temperature = 0.0;
  EXPECT_THROW(m.median_ttf(1e-3), Error);
  m = BlackModel{};
  m.current_exponent = -1.0;
  EXPECT_THROW(m.median_ttf(1e-3), Error);
}

TEST(LognormalTest, MedianCrossesAtHalf) {
  EXPECT_NEAR(lognormal_failure_cdf(100.0, 100.0, 0.5), 0.5, 1e-12);
}

TEST(LognormalTest, MonotoneInTime) {
  double prev = 0.0;
  for (double t = 1.0; t < 1000.0; t *= 2.0) {
    const double f = lognormal_failure_cdf(t, 100.0, 0.5);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(LognormalTest, ZeroTimeZeroProbability) {
  EXPECT_DOUBLE_EQ(lognormal_failure_cdf(0.0, 100.0, 0.5), 0.0);
}

TEST(LognormalTest, UnstressedConductorNeverFails) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(lognormal_failure_cdf(1e12, inf, 0.5), 0.0);
}

TEST(LognormalTest, KnownQuantile) {
  // At t = t50 * exp(sigma), z = 1: F = Phi(1) ~ 0.8413.
  const double f = lognormal_failure_cdf(100.0 * std::exp(0.5), 100.0, 0.5);
  EXPECT_NEAR(f, 0.841345, 1e-5);
}

TEST(LognormalTest, RejectsBadSigma) {
  EXPECT_THROW(lognormal_failure_cdf(1.0, 1.0, 0.0), Error);
}

}  // namespace
}  // namespace vstack::em
