#include "sim/step_control.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"

namespace vstack::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

StepControlOptions default_opts() { return {}; }

TEST(StepControlOptionsTest, ValidateRejectsBadTolerances) {
  StepControlOptions o;
  o.rel_tol = 0.0;
  EXPECT_THROW(o.validate(), Error);
  o = {};
  o.abs_tol = -1.0;
  EXPECT_THROW(o.validate(), Error);
  o = {};
  o.dt_grow = 0.9;  // must be >= 1
  EXPECT_THROW(o.validate(), Error);
  o = {};
  o.dt_shrink = 1.5;  // must be < 1
  EXPECT_THROW(o.validate(), Error);
  EXPECT_NO_THROW(default_opts().validate());
}

TEST(StepControllerTest, AcceptedStepsAdvanceTimeToTheEnd) {
  StepController ctl(default_opts(), 0.0, 1.0, 0.25, 0.25);
  int guard = 0;
  while (!ctl.done() && !ctl.failed() && ++guard < 100) {
    ctl.begin_step(kInf);
    ASSERT_FALSE(ctl.failed());
    ASSERT_TRUE(ctl.finish_step(0.0, 2));
  }
  EXPECT_TRUE(ctl.done());
  EXPECT_DOUBLE_EQ(ctl.time(), 1.0);
  EXPECT_EQ(ctl.report().accepted_steps, 4u);
  EXPECT_TRUE(ctl.report().ok());
}

TEST(StepControllerTest, LastStepClampsExactlyOntoTEnd) {
  // dt = 0.3 does not divide 1.0; the final step must land on 1.0 exactly.
  StepControlOptions opts;
  StepController ctl(opts, 0.0, 1.0, 0.3, 0.3);
  while (!ctl.done() && !ctl.failed()) {
    ctl.begin_step(kInf);
    ASSERT_TRUE(ctl.finish_step(0.0, 2));
  }
  EXPECT_DOUBLE_EQ(ctl.time(), 1.0);
}

TEST(StepControllerTest, StepClampsOntoEventAndFlagsIt) {
  StepController ctl(default_opts(), 0.0, 1.0, 0.4, 0.4);
  const double dt = ctl.begin_step(0.25);
  EXPECT_DOUBLE_EQ(dt, 0.25);
  EXPECT_TRUE(ctl.ends_on_event());
  ASSERT_TRUE(ctl.finish_step(0.0, 2));
  EXPECT_DOUBLE_EQ(ctl.time(), 0.25);
}

TEST(StepControllerTest, NearbyEventStretchesTheStepSlightly) {
  // Event at 1.05 * dt: the step stretches to land on it rather than leaving
  // a sliver step behind.
  StepController ctl(default_opts(), 0.0, 1.0, 0.4, 0.5);
  const double dt = ctl.begin_step(0.42);
  EXPECT_DOUBLE_EQ(dt, 0.42);
  EXPECT_TRUE(ctl.ends_on_event());
}

TEST(StepControllerTest, DistantEventDoesNotClamp) {
  StepController ctl(default_opts(), 0.0, 10.0, 0.4, 0.4);
  const double dt = ctl.begin_step(5.0);
  EXPECT_DOUBLE_EQ(dt, 0.4);
  EXPECT_FALSE(ctl.ends_on_event());
}

TEST(StepControllerTest, LteRejectionShrinksWithoutAdvancingTime) {
  StepController ctl(default_opts(), 0.0, 1.0, 0.4, 0.4);
  const double dt0 = ctl.begin_step(kInf);
  EXPECT_FALSE(ctl.finish_step(8.0, 2));  // err > 1 -> rejected
  EXPECT_DOUBLE_EQ(ctl.time(), 0.0);
  const double dt1 = ctl.begin_step(kInf);
  EXPECT_LT(dt1, dt0);
  EXPECT_EQ(ctl.report().lte_rejections, 1u);
  EXPECT_EQ(ctl.report().rejected_steps, 1u);
}

TEST(StepControllerTest, GrowBackIsBoundedByDtGrowAndDtMax) {
  StepControlOptions opts;
  opts.dt_grow = 2.0;
  StepController ctl(opts, 0.0, 100.0, 1.0, 8.0);
  ctl.begin_step(kInf);
  ASSERT_TRUE(ctl.finish_step(1e-12, 2));  // tiny error: wants huge growth
  EXPECT_DOUBLE_EQ(ctl.begin_step(kInf), 2.0);  // capped at dt_grow
  ASSERT_TRUE(ctl.finish_step(1e-12, 2));
  ctl.begin_step(kInf);
  ASSERT_TRUE(ctl.finish_step(1e-12, 2));
  ctl.begin_step(kInf);
  ASSERT_TRUE(ctl.finish_step(1e-12, 2));
  EXPECT_DOUBLE_EQ(ctl.begin_step(kInf), 8.0);  // capped at dt_max
}

TEST(StepControllerTest, BorderlineAcceptNeverGrowsTheStep) {
  // err just under 1: accepted, but safety * err^(-1/3) < 1 shrinks dt.
  StepController ctl(default_opts(), 0.0, 100.0, 1.0, 8.0);
  ctl.begin_step(kInf);
  ASSERT_TRUE(ctl.finish_step(0.99, 2));
  EXPECT_LT(ctl.begin_step(kInf), 1.0);
}

TEST(StepControllerTest, RepeatedRejectionCollapsesWithDiagnostic) {
  StepControlOptions opts;
  opts.max_rejections_per_step = 4;
  StepController ctl(opts, 0.0, 1.0, 0.1, 0.1);
  int guard = 0;
  while (!ctl.failed() && ++guard < 100) {
    ctl.begin_step(kInf);
    if (ctl.failed()) break;
    ctl.reject_step("test solver failure");
  }
  EXPECT_TRUE(ctl.failed());
  ctl.finalize();
  EXPECT_EQ(ctl.report().status, TransientStatus::SolverFailure);
  EXPECT_FALSE(ctl.report().ok());
  EXPECT_FALSE(ctl.report().diagnostic.empty());
  EXPECT_GT(ctl.report().solver_rejections, 0u);
}

TEST(StepControllerTest, StepBudgetTruncatesRun) {
  StepControlOptions opts;
  opts.max_steps = 3;
  StepController ctl(opts, 0.0, 1000.0, 0.1, 0.1);
  int guard = 0;
  while (!ctl.done() && !ctl.failed() && ++guard < 100) {
    ctl.begin_step(kInf);
    if (ctl.failed()) break;
    ctl.finish_step(0.0, 2);
  }
  EXPECT_TRUE(ctl.failed());
  ctl.finalize();
  EXPECT_EQ(ctl.report().status, TransientStatus::BudgetExhausted);
  EXPECT_EQ(ctl.report().accepted_steps, 3u);
  // The truncated prefix is still labeled with how far it got.
  EXPECT_NEAR(ctl.report().end_time, 0.3, 1e-12);
}

TEST(StepControllerTest, ResetDtForcesSmallNextStep) {
  StepController ctl(default_opts(), 0.0, 1.0, 0.25, 0.25);
  ctl.begin_step(kInf);
  ASSERT_TRUE(ctl.finish_step(0.0, 2));
  ctl.reset_dt(0.01);
  EXPECT_DOUBLE_EQ(ctl.begin_step(kInf), 0.01);
}

TEST(StepControllerTest, ReportTracksDtRange) {
  StepController ctl(default_opts(), 0.0, 1.0, 0.25, 0.25);
  ctl.begin_step(kInf);
  ASSERT_TRUE(ctl.finish_step(0.0, 2));
  ctl.reset_dt(0.01);
  ctl.begin_step(kInf);
  ASSERT_TRUE(ctl.finish_step(0.0, 2));
  EXPECT_DOUBLE_EQ(ctl.report().min_dt, 0.01);
  EXPECT_DOUBLE_EQ(ctl.report().max_dt, 0.25);
}

TEST(TransientReportTest, EventTrailIsBounded) {
  TransientReport report;
  for (int i = 0; i < 100; ++i) {
    report.record_event(static_cast<double>(i), "event");
  }
  EXPECT_EQ(report.events.size(), TransientReport::kMaxEvents);
  EXPECT_EQ(report.events_dropped, 100 - TransientReport::kMaxEvents);
}

TEST(TransientReportTest, SummaryMentionsStatusAndCounts) {
  TransientReport report;
  report.status = TransientStatus::BudgetExhausted;
  report.accepted_steps = 42;
  const std::string s = report.summary();
  EXPECT_NE(s.find("42"), std::string::npos) << s;
  EXPECT_NE(s.find(to_string(TransientStatus::BudgetExhausted)),
            std::string::npos)
      << s;
}

TEST(ErrorNormTest, NormalizesPerEntry) {
  // |1.0 - 1.1| / (abs 0.01 + rel 0.1 * 1.0) ~ 0.909...
  const double err = error_norm({1.0}, {1.1}, 0.1, 0.01);
  EXPECT_NEAR(err, 0.1 / 0.11, 1e-12);
  // Max-norm across entries.
  const double err2 = error_norm({1.0, 0.0}, {1.1, 0.05}, 0.1, 0.01);
  EXPECT_NEAR(err2, 0.05 / 0.01, 1e-12);
}

TEST(GuardTest, FiniteAndBounded) {
  EXPECT_TRUE(finite_and_bounded({1.0, -2.0, 0.0}, 10.0));
  EXPECT_FALSE(finite_and_bounded({1.0, 100.0}, 10.0));
  EXPECT_FALSE(finite_and_bounded({std::nan("")}, 10.0));
  EXPECT_FALSE(finite_and_bounded({kInf}, 10.0));
  EXPECT_TRUE(finite_and_bounded({}, 10.0));
}

TEST(PeriodicEventsTest, NextAfterWalksTheSchedule) {
  PeriodicEvents ev(1.0, {0.25, 0.75});
  EXPECT_DOUBLE_EQ(ev.next_after(0.0), 0.25);
  EXPECT_DOUBLE_EQ(ev.next_after(0.25), 0.75);  // strictly after
  EXPECT_DOUBLE_EQ(ev.next_after(0.8), 1.25);   // wraps to the next period
  EXPECT_DOUBLE_EQ(ev.next_after(10.3), 10.75);
}

TEST(PeriodicEventsTest, SnapToleranceSkipsJustLandedEdge) {
  PeriodicEvents ev(1.0, {0.5});
  // A point within the snap tolerance of the edge counts as ON it.
  EXPECT_DOUBLE_EQ(ev.next_after(0.5 + 1e-12), 1.5);
}

TEST(PeriodicEventsTest, FractionZeroEdgeMapsToPeriodBoundaries) {
  PeriodicEvents ev(2.0, {0.0});
  EXPECT_DOUBLE_EQ(ev.next_after(0.0), 2.0);
  EXPECT_DOUBLE_EQ(ev.next_after(1.0), 2.0);
  EXPECT_DOUBLE_EQ(ev.next_after(2.0), 4.0);
}

TEST(PeriodicEventsTest, EmptyScheduleIsEmpty) {
  PeriodicEvents ev;
  EXPECT_TRUE(ev.empty());
  EXPECT_FALSE(PeriodicEvents(1.0, {0.25}).empty());
}

TEST(EventScheduleTest, MergesPeriodicAndOneShotTimes) {
  EventSchedule sched(10.0);
  sched.add_periodic(PeriodicEvents(1.0, {0.5}));
  sched.add_time(0.7);
  sched.add_time(2.25);
  EXPECT_DOUBLE_EQ(sched.next_after(0.0), 0.5);
  EXPECT_DOUBLE_EQ(sched.next_after(0.5), 0.7);   // one-shot between edges
  EXPECT_DOUBLE_EQ(sched.next_after(0.7), 1.5);
  EXPECT_DOUBLE_EQ(sched.next_after(2.0), 2.25);
  EXPECT_DOUBLE_EQ(sched.next_after(2.25), 2.5);
}

TEST(EventScheduleTest, OneShotTimesAreSortedOnInsert) {
  EventSchedule sched(1.0);
  sched.add_time(0.9);
  sched.add_time(0.1);
  sched.add_time(0.5);
  EXPECT_DOUBLE_EQ(sched.next_after(0.0), 0.1);
  EXPECT_DOUBLE_EQ(sched.next_after(0.1), 0.5);
  EXPECT_DOUBLE_EQ(sched.next_after(0.5), 0.9);
}

TEST(EventScheduleTest, SnapToleranceSkipsJustLandedOneShot) {
  EventSchedule sched(1.0);
  sched.add_time(0.5);
  // Landing within the horizon-scaled tolerance of the event counts as ON
  // it -- the controller must not be asked to hit the same instant twice.
  EXPECT_GT(sched.next_after(0.5 + 1e-13), 1e300);
}

TEST(EventScheduleTest, NonPositiveTimesNeverReturned) {
  EventSchedule sched(1.0);
  sched.add_time(0.0);
  sched.add_time(-1.0);
  sched.add_time(0.25);
  EXPECT_DOUBLE_EQ(sched.next_after(0.0), 0.25);
}

TEST(EventScheduleTest, EmptinessTracksBothKinds) {
  EventSchedule sched(1.0);
  EXPECT_TRUE(sched.empty());
  sched.add_time(0.5);
  EXPECT_FALSE(sched.empty());
  EventSchedule periodic_only(1.0);
  periodic_only.add_periodic(PeriodicEvents(1.0, {0.5}));
  EXPECT_FALSE(periodic_only.empty());
}

}  // namespace
}  // namespace vstack::sim
