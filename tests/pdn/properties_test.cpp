// Physics-property tests on the PDN solver: linearity, superposition and
// monotonicity hold for any resistive network, so violations indicate
// assembly or extraction bugs rather than modeling choices.
#include <gtest/gtest.h>

#include "floorplan/floorplan.h"
#include "pdn/solver.h"
#include "power/core_power_model.h"

namespace vstack::pdn {
namespace {

const floorplan::Floorplan& fp() {
  static const floorplan::Floorplan f = floorplan::paper_layer_floorplan();
  return f;
}

StackupConfig small(PdnTopology topology) {
  StackupConfig cfg;
  cfg.topology = topology;
  cfg.layer_count = 2;
  cfg.grid_nx = cfg.grid_ny = 8;
  return cfg;
}

std::vector<LoadInjection> scaled(std::vector<LoadInjection> loads,
                                  double factor) {
  for (auto& l : loads) l.current *= factor;
  return loads;
}

TEST(PdnPropertiesTest, DroopIsLinearInLoad) {
  // Deviations from nominal scale exactly with the load currents (the
  // network is linear; the supply offset cancels in the deviation).
  PdnModel model(small(PdnTopology::Regular3d), fp());
  const auto cpm = power::CorePowerModel::cortex_a9_like();
  const auto loads = model.network().build_loads(cpm, {0.5, 0.5});
  const auto s1 = model.solve(loads);
  const auto s2 = model.solve(scaled(loads, 2.0));
  EXPECT_NEAR(s2.max_node_deviation_fraction,
              2.0 * s1.max_node_deviation_fraction,
              0.02 * s2.max_node_deviation_fraction);
  EXPECT_NEAR(s2.supply_current, 2.0 * s1.supply_current,
              0.01 * s2.supply_current);
}

TEST(PdnPropertiesTest, SuperpositionOfLoadSets) {
  // Voltages for (A + B) equal voltages(A) + voltages(B) - voltages(0)
  // (the zero-load solve carries the supply offset once).
  PdnModel model(small(PdnTopology::Regular3d), fp());
  const auto cpm = power::CorePowerModel::cortex_a9_like();
  const auto all = model.network().build_loads(cpm, {0.8, 0.3});
  std::vector<LoadInjection> a(all.begin(), all.begin() + all.size() / 2);
  std::vector<LoadInjection> b(all.begin() + all.size() / 2, all.end());

  PdnSolveOptions tight;
  tight.iterative.relative_tolerance = 1e-12;
  const auto s_all = model.solve(all, tight);
  const auto s_a = model.solve(a, tight);
  const auto s_b = model.solve(b, tight);
  const auto s_zero = model.solve({}, tight);

  for (std::size_t i = 0; i < s_all.node_voltages.size(); i += 37) {
    EXPECT_NEAR(s_all.node_voltages[i],
                s_a.node_voltages[i] + s_b.node_voltages[i] -
                    s_zero.node_voltages[i],
                1e-6);
  }
}

TEST(PdnPropertiesTest, ZeroLoadHasNoDroop) {
  PdnModel model(small(PdnTopology::Regular3d), fp());
  const auto s = model.solve({});
  EXPECT_NEAR(s.max_node_deviation_fraction, 0.0, 1e-6);
  EXPECT_NEAR(s.supply_current, 0.0, 1e-6);
}

TEST(PdnPropertiesTest, StackedZeroLoadHoldsNominalRails) {
  PdnModel model(small(PdnTopology::VoltageStacked), fp());
  const auto s = model.solve({});
  EXPECT_NEAR(s.max_node_deviation_fraction, 0.0, 1e-6);
}

TEST(PdnPropertiesTest, AddingLoadNeverHelps) {
  // Monotonicity: extra load current can only increase the worst droop.
  PdnModel model(small(PdnTopology::Regular3d), fp());
  const auto cpm = power::CorePowerModel::cortex_a9_like();
  const auto half = model.network().build_loads(cpm, {0.5, 0.0});
  const auto full = model.network().build_loads(cpm, {0.5, 0.9});
  EXPECT_LE(model.solve(half).max_ir_drop_fraction,
            model.solve(full).max_ir_drop_fraction + 1e-12);
}

TEST(PdnPropertiesTest, CachedResolveMatchesColdSolve) {
  // The matrix/preconditioner cache and warm start must not change answers.
  const auto cpm = power::CorePowerModel::cortex_a9_like();
  PdnModel warm(small(PdnTopology::VoltageStacked), fp());
  const auto loads_a = warm.network().build_loads(cpm, {1.0, 0.4});
  const auto loads_b = warm.network().build_loads(cpm, {0.2, 0.9});
  (void)warm.solve(loads_a);           // populate cache + warm start
  const auto warm_b = warm.solve(loads_b);

  PdnModel cold(small(PdnTopology::VoltageStacked), fp());
  const auto cold_b = cold.solve(loads_b);
  EXPECT_NEAR(warm_b.max_node_deviation_fraction,
              cold_b.max_node_deviation_fraction, 5e-6);
  EXPECT_NEAR(warm_b.supply_current, cold_b.supply_current, 1e-5);
}

// Parameterized: conservation of current at every activity level -- the
// sum of pad currents equals twice the total load current (Vdd + return).
class ConservationSweep : public ::testing::TestWithParam<double> {};

TEST_P(ConservationSweep, PadCurrentsBalanceLoads) {
  PdnModel model(small(PdnTopology::Regular3d), fp());
  const auto cpm = power::CorePowerModel::cortex_a9_like();
  const double act = GetParam();
  const auto loads = model.network().build_loads(cpm, {act, act});
  double total_load = 0.0;
  for (const auto& l : loads) total_load += l.current;
  const auto s = model.solve(loads);
  double pad_total = 0.0;
  for (double i : s.c4_pad_currents) pad_total += i;
  EXPECT_NEAR(pad_total, 2.0 * total_load, 0.01 * (1.0 + pad_total));
}

INSTANTIATE_TEST_SUITE_P(Activities, ConservationSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace vstack::pdn
