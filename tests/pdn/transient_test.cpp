#include "pdn/transient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "floorplan/floorplan.h"
#include "power/workload.h"

namespace vstack::pdn {
namespace {

const floorplan::Floorplan& paper_fp() {
  static const floorplan::Floorplan fp = floorplan::paper_layer_floorplan();
  return fp;
}

const power::CorePowerModel& cpm() {
  static const power::CorePowerModel m =
      power::CorePowerModel::cortex_a9_like();
  return m;
}

StackupConfig small(PdnTopology topology, std::size_t layers) {
  StackupConfig cfg;
  cfg.topology = topology;
  cfg.layer_count = layers;
  cfg.grid_nx = cfg.grid_ny = 8;
  return cfg;
}

PdnTransientOptions fast_options() {
  PdnTransientOptions o;
  o.time_step = 1e-9;
  o.duration = 80e-9;
  o.step_time = 10e-9;
  return o;
}

TEST(PdnTransientTest, SteadyStateStaysSteady) {
  // No load change: the waveform must hold the DC level.
  PdnModel model(small(PdnTopology::Regular3d, 2), paper_fp());
  const std::vector<double> acts(2, 0.8);
  const auto r = simulate_load_step(model, cpm(), acts, acts, fast_options());
  EXPECT_NEAR(r.peak_noise, r.initial_noise, 0.002);
  EXPECT_NEAR(r.final_noise, r.initial_noise, 0.002);
}

TEST(PdnTransientTest, LoadStepCausesDroopOvershoot) {
  PdnModel model(small(PdnTopology::Regular3d, 4), paper_fp());
  const auto r = simulate_load_step(model, cpm(),
                                    std::vector<double>(4, 0.2),
                                    std::vector<double>(4, 1.0),
                                    fast_options());
  // Transient peak exceeds both the initial and settled DC noise.
  EXPECT_GT(r.peak_noise, r.initial_noise);
  EXPECT_GT(r.peak_noise, r.final_noise);
  // The peak happens shortly after the step fires.
  EXPECT_GT(r.peak_time, 10e-9);
  EXPECT_LT(r.peak_time, 60e-9);
}

TEST(PdnTransientTest, SettlesToPostStepDcLevel) {
  PdnModel model(small(PdnTopology::Regular3d, 2), paper_fp());
  PdnTransientOptions o = fast_options();
  // The package LC loop is lightly damped (only pad/grid resistance in the
  // path), so allow several ring-down time constants.
  o.time_step = 2e-9;
  o.duration = 1500e-9;
  const auto r = simulate_load_step(model, cpm(), {0.3, 0.3}, {1.0, 1.0}, o);
  const auto dc_after = model.solve_activities(cpm(), {1.0, 1.0});
  EXPECT_NEAR(r.final_noise, dc_after.max_node_deviation_fraction, 0.004);
}

TEST(PdnTransientTest, SupplyCurrentRampsToNewLevel) {
  PdnModel model(small(PdnTopology::Regular3d, 2), paper_fp());
  PdnTransientOptions o = fast_options();
  o.time_step = 2e-9;
  o.duration = 1500e-9;
  const auto r = simulate_load_step(model, cpm(), {0.3, 0.3}, {1.0, 1.0}, o);
  const auto dc_after = model.solve_activities(cpm(), {1.0, 1.0});
  EXPECT_NEAR(r.supply_current.back(), dc_after.supply_current,
              0.08 * dc_after.supply_current);
  EXPECT_GT(r.supply_current.back(), r.supply_current.front());
}

TEST(PdnTransientTest, StackedStepDroopSmallerThanRegular) {
  // The extension's headline: the stack draws ~N times less off-chip
  // current, so the same package inductance produces a smaller L*di/dt
  // excursion relative to the DC change.
  const std::size_t layers = 4;
  PdnModel reg(small(PdnTopology::Regular3d, layers), paper_fp());
  PdnModel vs(small(PdnTopology::VoltageStacked, layers), paper_fp());
  const std::vector<double> before(layers, 0.2), after(layers, 1.0);
  const auto r_reg = simulate_load_step(reg, cpm(), before, after,
                                        fast_options());
  const auto r_vs = simulate_load_step(vs, cpm(), before, after,
                                       fast_options());
  // Compare against the settled DC level from a separate static solve (the
  // waveform may still be ringing at the end of the short run).
  const double reg_dc =
      reg.solve_activities(cpm(), after).max_node_deviation_fraction;
  const double vs_dc =
      vs.solve_activities(cpm(), after).max_node_deviation_fraction;
  EXPECT_LT(r_vs.peak_noise - vs_dc, r_reg.peak_noise - reg_dc);
}

TEST(PdnTransientTest, MoreDecapLessDroop) {
  PdnModel model(small(PdnTopology::Regular3d, 2), paper_fp());
  PdnTransientOptions thin = fast_options();
  thin.decap_density = 0.005;
  PdnTransientOptions thick = fast_options();
  thick.decap_density = 0.05;
  const auto r_thin = simulate_load_step(model, cpm(), {0.2, 0.2},
                                         {1.0, 1.0}, thin);
  const auto r_thick = simulate_load_step(model, cpm(), {0.2, 0.2},
                                          {1.0, 1.0}, thick);
  EXPECT_LT(r_thick.peak_noise, r_thin.peak_noise);
}

TEST(PdnTransientTest, MoreInductanceMoreDroop) {
  PdnModel model(small(PdnTopology::Regular3d, 2), paper_fp());
  PdnTransientOptions small_l = fast_options();
  small_l.package_inductance = 10e-12;
  PdnTransientOptions big_l = fast_options();
  big_l.package_inductance = 200e-12;
  const auto r_small = simulate_load_step(model, cpm(), {0.2, 0.2},
                                          {1.0, 1.0}, small_l);
  const auto r_big = simulate_load_step(model, cpm(), {0.2, 0.2},
                                        {1.0, 1.0}, big_l);
  EXPECT_LT(r_small.peak_noise, r_big.peak_noise);
}

TEST(PdnTransientTest, OptionValidation) {
  PdnTransientOptions o;
  o.time_step = 0.0;
  EXPECT_THROW(o.validate(), Error);
  o = PdnTransientOptions{};
  o.step_time = o.duration + 1.0;
  EXPECT_THROW(o.validate(), Error);
  o = PdnTransientOptions{};
  o.decap_density = -1.0;
  EXPECT_THROW(o.validate(), Error);
}

TEST(PdnTransientTest, WaveformLengthsConsistent) {
  PdnModel model(small(PdnTopology::Regular3d, 2), paper_fp());
  const auto r = simulate_load_step(model, cpm(), {0.5, 0.5}, {1.0, 1.0},
                                    fast_options());
  EXPECT_EQ(r.time.size(), r.worst_noise.size());
  EXPECT_EQ(r.time.size(), r.supply_current.size());
  EXPECT_EQ(r.time.size(), 80u);
}

TEST(PdnTransientTest, FixedModeReportIsPopulated) {
  PdnModel model(small(PdnTopology::Regular3d, 2), paper_fp());
  const auto r = simulate_load_step(model, cpm(), {0.5, 0.5}, {1.0, 1.0},
                                    fast_options());
  ASSERT_TRUE(r.ok()) << r.report.summary();
  EXPECT_EQ(r.report.status, sim::TransientStatus::Completed);
  EXPECT_EQ(r.report.accepted_steps, 80u);
  EXPECT_DOUBLE_EQ(r.report.min_dt, 1e-9);
  EXPECT_DOUBLE_EQ(r.report.max_dt, 1e-9);
  EXPECT_NEAR(r.report.end_time, 80e-9, 1e-15);
}

TEST(PdnTransientTest, AdaptiveMatchesFixedPeakNoise) {
  // The adaptive run takes different (larger, nonuniform) steps but must
  // see the same physics: DC levels identical, transient peak close.
  PdnModel model(small(PdnTopology::Regular3d, 4), paper_fp());
  const std::vector<double> before(4, 0.2), after(4, 1.0);
  PdnTransientOptions fixed = fast_options();
  fixed.duration = 120e-9;
  PdnTransientOptions ad = fixed;
  ad.adaptive = true;
  const auto r_fixed = simulate_load_step(model, cpm(), before, after, fixed);
  const auto r_ad = simulate_load_step(model, cpm(), before, after, ad);
  ASSERT_TRUE(r_fixed.ok()) << r_fixed.report.summary();
  ASSERT_TRUE(r_ad.ok()) << r_ad.report.summary();
  // Warm-started CG: the two DC solves agree only to solver tolerance.
  EXPECT_NEAR(r_ad.initial_noise, r_fixed.initial_noise,
              1e-6 * r_fixed.initial_noise);
  EXPECT_NEAR(r_ad.peak_noise, r_fixed.peak_noise,
              0.05 * r_fixed.peak_noise);
  // Nonuniform: the step-time snap plus LTE control changes the sampling.
  for (const double v : r_ad.worst_noise) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(PdnTransientTest, AdaptiveSnapsOntoStepTime) {
  // step_time = 13 ns is not a multiple of any power-of-two fraction of the
  // 1 ns max step; the controller must land a step boundary on it exactly.
  PdnModel model(small(PdnTopology::Regular3d, 2), paper_fp());
  PdnTransientOptions o = fast_options();
  o.adaptive = true;
  o.step_time = 13e-9;
  const auto r = simulate_load_step(model, cpm(), {0.2, 0.2}, {1.0, 1.0}, o);
  ASSERT_TRUE(r.ok()) << r.report.summary();
  double closest = 1e9;
  for (const double t : r.time) {
    closest = std::min(closest, std::abs(t - o.step_time));
  }
  EXPECT_LT(closest, 1e-15) << "missed the load-step instant";
}

TEST(PdnTransientTest, StepBudgetTruncatesButLabels) {
  PdnModel model(small(PdnTopology::Regular3d, 2), paper_fp());
  PdnTransientOptions o = fast_options();
  o.control.max_steps = 20;
  const auto r = simulate_load_step(model, cpm(), {0.2, 0.2}, {1.0, 1.0}, o);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.report.status, sim::TransientStatus::BudgetExhausted);
  EXPECT_FALSE(r.report.diagnostic.empty());
  ASSERT_FALSE(r.time.empty());
  EXPECT_LT(r.report.end_time, o.duration);
  for (const double v : r.worst_noise) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace vstack::pdn
