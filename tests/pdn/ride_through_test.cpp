// Live fault ride-through (pdn::simulate_ride_through): the supervisor in
// the loop of a transient run with mid-run converter faults -- detection
// timing, the escalation ladder's effect on the rails, and outcome
// classification.
#include "pdn/ride_through.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "floorplan/floorplan.h"
#include "power/workload.h"

namespace vstack::pdn {
namespace {

const floorplan::Floorplan& paper_fp() {
  static const floorplan::Floorplan fp = floorplan::paper_layer_floorplan();
  return fp;
}

const power::CorePowerModel& cpm() {
  static const power::CorePowerModel m =
      power::CorePowerModel::cortex_a9_like();
  return m;
}

StackupConfig stacked(std::size_t layers) {
  StackupConfig cfg;
  cfg.topology = PdnTopology::VoltageStacked;
  cfg.layer_count = layers;
  cfg.grid_nx = cfg.grid_ny = 8;
  return cfg;
}

/// Imbalanced activities: the stress case where intermediate rails lean on
/// the converters, so losing converter phases actually droops a rail.
std::vector<double> imbalanced(std::size_t layers) {
  std::vector<double> a(layers, 1.0);
  for (std::size_t i = 1; i < layers; i += 2) a[i] = 0.2;
  return a;
}

FaultSet kill_level_converters(const PdnModel& model, std::size_t level,
                               std::size_t keep) {
  FaultSet fs;
  std::size_t kept = 0;
  const auto& convs = model.network().converters();
  for (std::size_t i = 0; i < convs.size(); ++i) {
    if (convs[i].level != level) continue;
    if (kept < keep) {
      ++kept;
    } else {
      fs.converter_stuck_off(i);
    }
  }
  return fs;
}

/// Fast policy tuned the same way as the CLI demo: recovery_fraction 0.08
/// because spreading resistance through the grid limits how far boosting
/// the surviving phases can pull the rail back (see docs/fault_model.md).
RideThroughOptions fast_options(double fault_time, double duration) {
  RideThroughOptions o;
  o.transient.time_step = 2e-9;
  o.transient.duration = duration;
  o.supervisor.trip_fraction = 0.10;
  o.supervisor.recovery_fraction = 0.08;
  o.supervisor.sense_interval = 5e-9;
  o.supervisor.detection_latency = 20e-9;
  o.supervisor.action_dwell = 60e-9;
  o.supervisor.watchdog_timeout = 300e-9;
  (void)fault_time;
  return o;
}

RideThroughOptions with_fault(const PdnModel& model, std::size_t level,
                              std::size_t keep, double fault_time,
                              double duration) {
  RideThroughOptions o = fast_options(fault_time, duration);
  TimedFaultEvent ev;
  ev.time = fault_time;
  ev.faults = kill_level_converters(model, level, keep);
  ev.label = "conv-kill";
  o.transient.fault_events.push_back(ev);
  return o;
}

TEST(RideThroughTest, HealthyRunNeverTrips) {
  PdnModel model(stacked(4), paper_fp());
  const auto o = fast_options(0.0, 300e-9);
  const auto r = simulate_ride_through(model, cpm(), imbalanced(4), o);
  ASSERT_TRUE(r.report.ok()) << r.report.transient.diagnostic;
  EXPECT_EQ(r.report.outcome, RideThroughOutcome::Recovered);
  EXPECT_LT(r.report.detected_at, 0.0);
  EXPECT_TRUE(r.report.actions.empty());
  EXPECT_TRUE(r.report.shutdown_layers.empty());
  EXPECT_LT(r.report.worst_droop, o.supervisor.trip_fraction);
}

TEST(RideThroughTest, SupervisorDetectsWithinTheLatencyWindow) {
  PdnModel model(stacked(4), paper_fp());
  const double fault_time = 100e-9;
  const auto o = with_fault(model, 1, 32, fault_time, 600e-9);
  const auto r = simulate_ride_through(model, cpm(), imbalanced(4), o);
  ASSERT_TRUE(r.report.ok()) << r.report.transient.diagnostic;

  // Detection cannot precede the strike + latency, and must land within a
  // few sensing ticks after the latency has elapsed.
  ASSERT_GT(r.report.detected_at, 0.0);
  EXPECT_GE(r.report.detected_at,
            fault_time + o.supervisor.detection_latency - 1e-12);
  EXPECT_LE(r.report.detected_at, fault_time +
                                      o.supervisor.detection_latency +
                                      4.0 * o.supervisor.sense_interval +
                                      1e-12);
  EXPECT_GT(r.report.worst_droop, o.supervisor.trip_fraction);
  ASSERT_FALSE(r.report.actions.empty());
  EXPECT_EQ(r.report.actions.front().kind,
            sc::SupervisorActionKind::PhaseRebalance);
}

TEST(RideThroughTest, MitigationLadderRecoversASurvivableFault) {
  PdnModel model(stacked(4), paper_fp());
  const auto o = with_fault(model, 1, 32, 100e-9, 600e-9);
  const auto r = simulate_ride_through(model, cpm(), imbalanced(4), o);
  ASSERT_TRUE(r.report.ok()) << r.report.transient.diagnostic;

  EXPECT_EQ(r.report.outcome, RideThroughOutcome::Recovered);
  EXPECT_GT(r.report.recovered_at, r.report.detected_at);
  EXPECT_TRUE(r.report.shutdown_layers.empty());
  // Mitigation visibly pulled the rail back from the worst excursion.
  EXPECT_LT(r.report.final_droop, r.report.worst_droop);
  EXPECT_LE(r.report.final_droop, o.supervisor.recovery_fraction);
}

TEST(RideThroughTest, UnsurvivableFaultEscalatesToLayerShutdown) {
  PdnModel model(stacked(4), paper_fp());
  // Keep only 2 of the level-1 phases: no amount of rebalancing or
  // frequency boosting can carry the imbalance current through 2 sites.
  const auto o = with_fault(model, 1, 2, 100e-9, 900e-9);
  const auto r = simulate_ride_through(model, cpm(), imbalanced(4), o);
  ASSERT_TRUE(r.report.ok()) << r.report.transient.diagnostic;

  EXPECT_EQ(r.report.outcome, RideThroughOutcome::Lost);
  EXPECT_FALSE(r.report.shutdown_layers.empty());
  // The ladder ran in order before giving up.
  ASSERT_GE(r.report.actions.size(), 2u);
  EXPECT_EQ(r.report.actions.front().kind,
            sc::SupervisorActionKind::PhaseRebalance);
  EXPECT_EQ(r.report.actions.back().kind,
            sc::SupervisorActionKind::LayerShutdown);
}

TEST(RideThroughTest, ValidationRejectsBrokenPolicies) {
  PdnModel model(stacked(2), paper_fp());
  RideThroughOptions o = fast_options(0.0, 300e-9);
  o.supervisor.recovery_fraction = o.supervisor.trip_fraction;
  EXPECT_THROW(simulate_ride_through(model, cpm(), imbalanced(2), o), Error);

  o = fast_options(0.0, 300e-9);
  o.bypass_resistance = 0.0;
  EXPECT_THROW(simulate_ride_through(model, cpm(), imbalanced(2), o), Error);

  o = fast_options(0.0, 300e-9);
  o.max_rebalance_boost = 0.5;  // would WEAKEN surviving phases
  EXPECT_THROW(simulate_ride_through(model, cpm(), imbalanced(2), o), Error);
}

}  // namespace
}  // namespace vstack::pdn
