// Fault injection into the PDN: FaultSet application semantics, topology-
// epoch cache invalidation, floating-island detection, and the acceptance
// property that a damaged network redistributes current instead of
// crashing the solver.
#include "pdn/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "pdn/solver.h"

namespace vstack::pdn {
namespace {

const floorplan::Floorplan& paper_fp() {
  static const floorplan::Floorplan fp = floorplan::paper_layer_floorplan();
  return fp;
}

const power::CorePowerModel& cpm() {
  static const power::CorePowerModel m =
      power::CorePowerModel::cortex_a9_like();
  return m;
}

StackupConfig small_regular(std::size_t layers) {
  StackupConfig cfg;
  cfg.layer_count = layers;
  cfg.grid_nx = cfg.grid_ny = 16;
  return cfg;
}

StackupConfig small_stacked(std::size_t layers) {
  StackupConfig cfg;
  cfg.topology = PdnTopology::VoltageStacked;
  cfg.layer_count = layers;
  cfg.grid_nx = cfg.grid_ny = 16;
  return cfg;
}

std::size_t first_group_of_kind(const PdnNetwork& net, ConductorKind kind) {
  for (std::size_t i = 0; i < net.conductors().size(); ++i) {
    if (net.conductors()[i].kind == kind && net.conductors()[i].count > 0) {
      return i;
    }
  }
  ADD_FAILURE() << "no conductor group of requested kind";
  return 0;
}

bool all_finite(const la::Vector& x) {
  for (const double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

TEST(FaultSetTest, MutatorsBumpTopologyEpochAndKeepIndicesStable) {
  PdnModel model(small_stacked(2), paper_fp());
  PdnNetwork& net = model.network_mutable();
  const std::size_t groups_before = net.conductors().size();
  const std::size_t epoch0 = net.topology_epoch();

  const std::size_t tsv = first_group_of_kind(net, ConductorKind::RecyclingTsv);
  const std::size_t count_before = net.conductors()[tsv].count;
  const double r_before = net.conductors()[tsv].unit_resistance;

  FaultSet faults;
  faults.open_conductor(tsv, 1)
      .degrade_conductor(tsv, 4.0)
      .converter_stuck_off(0)
      .leakage_to_ground(net.vdd_node(0, 0), 25.0);
  EXPECT_EQ(faults.size(), 4u);
  faults.apply_to(net);

  EXPECT_EQ(net.topology_epoch(), epoch0 + 4);
  EXPECT_EQ(net.conductors()[tsv].count, count_before - 1);
  EXPECT_DOUBLE_EQ(net.conductors()[tsv].unit_resistance, 4.0 * r_before);
  EXPECT_FALSE(net.converters()[0].enabled);
  // Leakage appends; nothing is erased, so indices stay valid.
  ASSERT_EQ(net.conductors().size(), groups_before + 1);
  EXPECT_EQ(net.conductors().back().kind, ConductorKind::Leakage);
  EXPECT_EQ(net.conductors().back().node_b, kFixedGround);
  EXPECT_DOUBLE_EQ(net.conductors().back().unit_resistance, 25.0);
}

TEST(FaultSetTest, OpenWholeGroupLeavesInertPlaceholder) {
  PdnModel model(small_regular(2), paper_fp());
  PdnNetwork& net = model.network_mutable();
  const std::size_t groups = net.conductors().size();
  const std::size_t tsv = first_group_of_kind(net, ConductorKind::TsvVdd);

  FaultSet().open_conductor(tsv).apply_to(net);  // default: whole group
  EXPECT_EQ(net.conductors().size(), groups);
  EXPECT_EQ(net.conductors()[tsv].count, 0u);
}

TEST(FaultSetTest, DescribeNamesEveryFault) {
  PdnModel model(small_stacked(2), paper_fp());
  FaultSet faults;
  faults.open_conductor(3).converter_stuck_off(1);
  const std::string text = faults.describe(model.network());
  EXPECT_NE(text.find("open"), std::string::npos);
  EXPECT_NE(text.find("conv-off"), std::string::npos);
}

TEST(FaultSetTest, CacheInvalidatedAcrossFaultApplication) {
  // Same model, solve -> degrade every through-via -> solve: the second
  // solve must see the mutated topology (worse noise), not a stale cache.
  PdnModel model(small_stacked(2), paper_fp());
  const std::vector<double> acts(2, 1.0);
  const auto before = model.solve_activities(cpm(), acts);
  ASSERT_TRUE(before.solve_ok);

  FaultSet faults;
  for (std::size_t i = 0; i < model.network().conductors().size(); ++i) {
    if (model.network().conductors()[i].kind == ConductorKind::ThroughVia) {
      faults.degrade_conductor(i, 10.0);
    }
  }
  ASSERT_FALSE(faults.empty());
  faults.apply_to(model.network_mutable());

  const auto after = model.solve_activities(cpm(), acts);
  ASSERT_TRUE(after.solve_ok);
  EXPECT_GT(after.max_node_deviation_fraction,
            before.max_node_deviation_fraction);
}

TEST(FloatingIslandTest, HealthyNetworksHaveNoIslands) {
  PdnModel regular(small_regular(2), paper_fp());
  PdnModel stacked(small_stacked(4), paper_fp());
  EXPECT_EQ(find_floating_islands(regular.network()).islands.size(), 0u);
  EXPECT_EQ(find_floating_islands(stacked.network()).islands.size(), 0u);
}

TEST(FloatingIslandTest, SeveredVddLayerBecomesAnIsland) {
  // Regular 2-layer: layer 1's Vdd net reaches the package only through
  // Vdd TSVs.  Opening every one strands the whole net.
  PdnModel model(small_regular(2), paper_fp());
  PdnNetwork& net = model.network_mutable();
  FaultSet faults;
  for (std::size_t i = 0; i < net.conductors().size(); ++i) {
    if (net.conductors()[i].kind == ConductorKind::TsvVdd) {
      faults.open_conductor(i);
    }
  }
  faults.apply_to(net);

  const auto report = find_floating_islands(net);
  ASSERT_EQ(report.islands.size(), 1u);
  const std::size_t cells = 16 * 16;
  EXPECT_EQ(report.floating_node_count(), cells);  // layer 1's Vdd grid
  for (const std::size_t node : report.islands[0]) {
    EXPECT_GE(node, net.vdd_node(1, 0));
    EXPECT_LE(node, net.vdd_node(1, cells - 1));
  }
}

TEST(FloatingIslandTest, SolveOnSeveredLayerIsCleanlyInfeasible) {
  // The island is grounded with a weak pin, so the matrix stays regular:
  // the solve must complete with finite voltages and flag the stranded
  // load current as structurally infeasible -- no throw, no NaN.
  PdnModel model(small_regular(2), paper_fp());
  PdnNetwork& net = model.network_mutable();
  FaultSet faults;
  for (std::size_t i = 0; i < net.conductors().size(); ++i) {
    if (net.conductors()[i].kind == ConductorKind::TsvVdd) {
      faults.open_conductor(i);
    }
  }
  faults.apply_to(net);

  const auto sol = model.solve_activities(cpm(), {1.0, 1.0});
  EXPECT_TRUE(sol.solve_ok);  // linear solve itself succeeds
  EXPECT_EQ(sol.floating_island_count, 1u);
  EXPECT_GT(sol.floating_node_count, 0u);
  EXPECT_GT(sol.floating_load_current, 1.0);  // a full layer's current
  EXPECT_NE(sol.diagnostic.find("structurally infeasible"),
            std::string::npos);
  EXPECT_TRUE(all_finite(sol.node_voltages));
}

TEST(FaultInjectionTest, StuckOffConverterSourcesNoCurrent) {
  PdnModel model(small_stacked(4), paper_fp());
  // Imbalanced load so converters carry real current.
  const std::vector<double> acts{1.0, 0.2, 1.0, 0.2};
  const auto before = model.solve_activities(cpm(), acts);
  ASSERT_TRUE(before.solve_ok);
  ASSERT_GT(std::abs(before.converter_currents[0]), 1e-6);

  FaultSet().converter_stuck_off(0).apply_to(model.network_mutable());
  const auto after = model.solve_activities(cpm(), acts);
  ASSERT_TRUE(after.solve_ok);
  EXPECT_DOUBLE_EQ(after.converter_currents[0], 0.0);
  ASSERT_EQ(after.converter_currents.size(), before.converter_currents.size());
  // The dropped phase's share shifts onto its neighbours.
  EXPECT_GT(after.max_converter_current, before.max_converter_current - 1e-6);
}

TEST(FaultInjectionTest, OpenedTsvRedistributesCurrentConservatively) {
  // Acceptance property (ISSUE): open the highest-current recycling-TSV
  // group of a 4-layer stack; survivors must pick up the current (same
  // total vertical current per interface) and noise must not improve.
  PdnModel model(small_stacked(4), paper_fp());
  const std::vector<double> acts{1.0, 0.2, 1.0, 0.2};
  const auto before = model.solve_activities(cpm(), acts);
  ASSERT_TRUE(before.solve_ok);

  // Highest-current recycling-TSV group, via per-group terminal voltages.
  const PdnNetwork& net = model.network();
  std::size_t worst = static_cast<std::size_t>(-1);
  double worst_current = -1.0;
  for (std::size_t i = 0; i < net.conductors().size(); ++i) {
    const auto& g = net.conductors()[i];
    if (g.kind != ConductorKind::RecyclingTsv) continue;
    const double current =
        std::abs(before.node_voltages[g.node_a] -
                 before.node_voltages[g.node_b]) *
        static_cast<double>(g.count) / g.unit_resistance;
    if (current > worst_current) {
      worst_current = current;
      worst = i;
    }
  }
  ASSERT_NE(worst, static_cast<std::size_t>(-1));
  ASSERT_GT(worst_current, 0.0);

  FaultSet().open_conductor(worst).apply_to(model.network_mutable());
  const auto after = model.solve_activities(cpm(), acts);
  ASSERT_TRUE(after.solve_ok);
  EXPECT_TRUE(all_finite(after.node_voltages));

  // Conservation: the same load current still flows, so the off-chip draw
  // is unchanged to solver tolerance and noise is monotone non-improving.
  EXPECT_NEAR(after.supply_current, before.supply_current,
              0.01 * before.supply_current);
  EXPECT_GE(after.max_node_deviation_fraction,
            before.max_node_deviation_fraction - 1e-6);
  EXPECT_GE(after.max_ir_drop_fraction, before.max_ir_drop_fraction - 1e-6);
}

TEST(FaultInjectionTest, LeakageShortDrawsExtraSupplyCurrent) {
  PdnModel model(small_stacked(2), paper_fp());
  const std::vector<double> acts(2, 1.0);
  const auto before = model.solve_activities(cpm(), acts);
  ASSERT_TRUE(before.solve_ok);

  // Short the top rail's corner to board ground through 10 ohms.
  FaultSet()
      .leakage_to_ground(model.network().vdd_node(1, 0), 10.0)
      .apply_to(model.network_mutable());
  const auto after = model.solve_activities(cpm(), acts);
  ASSERT_TRUE(after.solve_ok);
  // ~2 V across ~10 ohm: a fifth of an amp of waste, straight off the top.
  EXPECT_GT(after.supply_current, before.supply_current + 0.1);
  EXPECT_GT(after.max_node_deviation_fraction,
            before.max_node_deviation_fraction);
}

}  // namespace
}  // namespace vstack::pdn
