#include "pdn/config_io.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::pdn {
namespace {

TEST(ConfigIoTest, ParsesFullConfig) {
  const auto cfg = parse_stackup_config(R"(
# an 8-layer stack
topology = stacked
layers = 8
vdd = 1.0
tsv = few           ; aggressive allocation
power_c4_fraction = 0.25
vdd_pads_per_core = 32
converters_per_core = 8
converter_reference = ideal
control = closed
grid = 16
)");
  EXPECT_TRUE(cfg.is_voltage_stacked());
  EXPECT_EQ(cfg.layer_count, 8u);
  EXPECT_EQ(cfg.tsv.name, "Few TSV");
  EXPECT_EQ(cfg.converters_per_core, 8u);
  EXPECT_EQ(cfg.converter.control, sc::ControlPolicy::ClosedLoop);
  EXPECT_EQ(cfg.grid_nx, 16u);
}

TEST(ConfigIoTest, DefaultsPreservedForOmittedKeys) {
  StackupConfig base;
  base.vdd_pads_per_core = 24;
  const auto cfg = parse_stackup_config("layers = 4\n", base);
  EXPECT_EQ(cfg.layer_count, 4u);
  EXPECT_EQ(cfg.vdd_pads_per_core, 24u);
}

TEST(ConfigIoTest, RoundTrip) {
  StackupConfig original;
  original.topology = PdnTopology::VoltageStacked;
  original.layer_count = 6;
  original.tsv = TsvConfig::sparse();
  original.converters_per_core = 4;
  original.converter_reference = ConverterReference::AdjacentRails;
  const auto text = write_stackup_config(original);
  const auto reparsed = parse_stackup_config(text);
  EXPECT_EQ(reparsed.layer_count, 6u);
  EXPECT_EQ(reparsed.tsv.name, "Sparse TSV");
  EXPECT_EQ(reparsed.converters_per_core, 4u);
  EXPECT_EQ(reparsed.converter_reference, ConverterReference::AdjacentRails);
}

TEST(ConfigIoTest, RejectsUnknownKey) {
  EXPECT_THROW(parse_stackup_config("frobnicate = 3\n"), Error);
}

TEST(ConfigIoTest, RejectsBadValues) {
  EXPECT_THROW(parse_stackup_config("topology = sideways\n"), Error);
  EXPECT_THROW(parse_stackup_config("tsv = plenty\n"), Error);
  EXPECT_THROW(parse_stackup_config("layers = few\n"), Error);
  EXPECT_THROW(parse_stackup_config("layers\n"), Error);
}

TEST(ConfigIoTest, RejectsOutOfRangePhysicalParameters) {
  // Every entry must fail with a line-numbered, actionable message.
  const char* corpus[] = {
      "vdd = 0\n",                      // non-positive supply
      "vdd = -1\n",                     //
      "vdd = 1e300\n",                  // absurd supply
      "vdd = nan\n",                    // non-finite
      "power_c4_fraction = 0\n",        // fraction out of (0, 1]
      "power_c4_fraction = 1.5\n",      //
      "power_c4_fraction = -0.2\n",     //
      "layers = 2.5\n",                 // fractional integer
      "layers = -3\n",                  // negative integer
      "layers = 0\n",                   // below minimum
      "vdd_pads_per_core = 0\n",        //
      "vdd_pads_per_core = 3.7\n",      //
      "converters_per_core = -1\n",     //
      "grid = 1\n",                     // below minimum (needs 2x2 cells)
      "grid = 1e6\n",                   // absurd grid -> memory bomb
      "grid = 8.5\n",                   // fractional
  };
  for (const char* text : corpus) {
    EXPECT_THROW(parse_stackup_config(text), Error)
        << "accepted bad config: " << text;
  }
}

TEST(ConfigIoTest, RejectsDuplicateKeys) {
  EXPECT_THROW(parse_stackup_config("layers = 4\nlayers = 8\n"), Error);
  EXPECT_THROW(parse_stackup_config("vdd = 1.0\nVDD = 0.9\n"), Error);
}

TEST(ConfigIoTest, ErrorsCarryLineNumbers) {
  try {
    parse_stackup_config("layers = 4\nvdd = banana\n");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("banana"), std::string::npos) << what;
  }
}

TEST(ConfigIoTest, ValidatesResult) {
  // Voltage stacking with a single layer must be rejected by validate().
  EXPECT_THROW(parse_stackup_config("topology = stacked\nlayers = 1\n"),
               Error);
}

TEST(ConfigIoTest, CommentsAndWhitespaceTolerated) {
  const auto cfg = parse_stackup_config(
      "   layers   =   4   # trailing\n\n; whole-line comment\n");
  EXPECT_EQ(cfg.layer_count, 4u);
}

}  // namespace
}  // namespace vstack::pdn
