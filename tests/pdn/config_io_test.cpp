#include "pdn/config_io.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::pdn {
namespace {

TEST(ConfigIoTest, ParsesFullConfig) {
  const auto cfg = parse_stackup_config(R"(
# an 8-layer stack
topology = stacked
layers = 8
vdd = 1.0
tsv = few           ; aggressive allocation
power_c4_fraction = 0.25
vdd_pads_per_core = 32
converters_per_core = 8
converter_reference = ideal
control = closed
grid = 16
)");
  EXPECT_TRUE(cfg.is_voltage_stacked());
  EXPECT_EQ(cfg.layer_count, 8u);
  EXPECT_EQ(cfg.tsv.name, "Few TSV");
  EXPECT_EQ(cfg.converters_per_core, 8u);
  EXPECT_EQ(cfg.converter.control, sc::ControlPolicy::ClosedLoop);
  EXPECT_EQ(cfg.grid_nx, 16u);
}

TEST(ConfigIoTest, DefaultsPreservedForOmittedKeys) {
  StackupConfig base;
  base.vdd_pads_per_core = 24;
  const auto cfg = parse_stackup_config("layers = 4\n", base);
  EXPECT_EQ(cfg.layer_count, 4u);
  EXPECT_EQ(cfg.vdd_pads_per_core, 24u);
}

TEST(ConfigIoTest, RoundTrip) {
  StackupConfig original;
  original.topology = PdnTopology::VoltageStacked;
  original.layer_count = 6;
  original.tsv = TsvConfig::sparse();
  original.converters_per_core = 4;
  original.converter_reference = ConverterReference::AdjacentRails;
  const auto text = write_stackup_config(original);
  const auto reparsed = parse_stackup_config(text);
  EXPECT_EQ(reparsed.layer_count, 6u);
  EXPECT_EQ(reparsed.tsv.name, "Sparse TSV");
  EXPECT_EQ(reparsed.converters_per_core, 4u);
  EXPECT_EQ(reparsed.converter_reference, ConverterReference::AdjacentRails);
}

TEST(ConfigIoTest, RejectsUnknownKey) {
  EXPECT_THROW(parse_stackup_config("frobnicate = 3\n"), Error);
}

TEST(ConfigIoTest, RejectsBadValues) {
  EXPECT_THROW(parse_stackup_config("topology = sideways\n"), Error);
  EXPECT_THROW(parse_stackup_config("tsv = plenty\n"), Error);
  EXPECT_THROW(parse_stackup_config("layers = few\n"), Error);
  EXPECT_THROW(parse_stackup_config("layers\n"), Error);
}

TEST(ConfigIoTest, ValidatesResult) {
  // Voltage stacking with a single layer must be rejected by validate().
  EXPECT_THROW(parse_stackup_config("topology = stacked\nlayers = 1\n"),
               Error);
}

TEST(ConfigIoTest, CommentsAndWhitespaceTolerated) {
  const auto cfg = parse_stackup_config(
      "   layers   =   4   # trailing\n\n; whole-line comment\n");
  EXPECT_EQ(cfg.layer_count, 4u);
}

}  // namespace
}  // namespace vstack::pdn
