#include "pdn/decap_optimizer.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "floorplan/floorplan.h"
#include "power/core_power_model.h"

namespace vstack::pdn {
namespace {

const floorplan::Floorplan& fp() {
  static const floorplan::Floorplan f = floorplan::paper_layer_floorplan();
  return f;
}

const power::CorePowerModel& cpm() {
  static const power::CorePowerModel m =
      power::CorePowerModel::cortex_a9_like();
  return m;
}

PdnModel make_model(std::size_t layers) {
  StackupConfig cfg;
  cfg.layer_count = layers;
  cfg.grid_nx = cfg.grid_ny = 8;
  return PdnModel(cfg, fp());
}

DecapOptimizerOptions fast_options() {
  DecapOptimizerOptions o;
  o.transient.time_step = 2e-9;
  o.transient.duration = 60e-9;
  o.transient.step_time = 10e-9;
  o.rounds = 1;
  return o;
}

TEST(DecapOptimizerTest, ConservesTotalBudget) {
  const auto model = make_model(4);
  const auto opts = fast_options();
  const auto r = optimize_layer_decap(model, cpm(),
                                      std::vector<double>(4, 0.2),
                                      std::vector<double>(4, 1.0), opts);
  ASSERT_EQ(r.layer_density.size(), 4u);
  const double total =
      std::accumulate(r.layer_density.begin(), r.layer_density.end(), 0.0);
  EXPECT_NEAR(total, 4.0 * opts.transient.decap_density, 1e-12);
  for (double d : r.layer_density) EXPECT_GT(d, 0.0);
}

TEST(DecapOptimizerTest, NeverWorseThanUniform) {
  const auto model = make_model(4);
  const auto r = optimize_layer_decap(model, cpm(),
                                      std::vector<double>(4, 0.2),
                                      std::vector<double>(4, 1.0),
                                      fast_options());
  EXPECT_LE(r.peak_noise, r.uniform_noise + 1e-12);
}

TEST(DecapOptimizerTest, PerLayerOverrideMatchesScalar) {
  // A uniform per-layer vector must reproduce the scalar-density result.
  const auto model = make_model(2);
  const auto opts = fast_options();
  const std::vector<double> before{0.3, 0.3}, after{1.0, 1.0};
  const double scalar = peak_noise_for_allocation(
      model, cpm(), before, after,
      std::vector<double>(2, opts.transient.decap_density), opts.transient);
  PdnTransientOptions plain = opts.transient;
  const double direct =
      simulate_load_step(model, cpm(), before, after, plain).peak_noise;
  EXPECT_NEAR(scalar, direct, 1e-6);
}

TEST(DecapOptimizerTest, RejectsBadShiftFraction) {
  const auto model = make_model(2);
  DecapOptimizerOptions o = fast_options();
  o.shift_fraction = 1.0;
  EXPECT_THROW(optimize_layer_decap(model, cpm(), {0.3, 0.3}, {1.0, 1.0}, o),
               Error);
}

TEST(DecapOptimizerTest, TransientRejectsMismatchedVector) {
  const auto model = make_model(2);
  PdnTransientOptions o = fast_options().transient;
  o.layer_decap_density = {0.005};  // wrong size for 2 layers
  EXPECT_THROW(
      simulate_load_step(model, cpm(), {0.3, 0.3}, {1.0, 1.0}, o), Error);
}

}  // namespace
}  // namespace vstack::pdn
