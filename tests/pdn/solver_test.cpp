#include "pdn/solver.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "floorplan/floorplan.h"
#include "power/workload.h"

namespace vstack::pdn {
namespace {

const floorplan::Floorplan& paper_fp() {
  static const floorplan::Floorplan fp = floorplan::paper_layer_floorplan();
  return fp;
}

const power::CorePowerModel& cpm() {
  static const power::CorePowerModel m =
      power::CorePowerModel::cortex_a9_like();
  return m;
}

StackupConfig small_regular(std::size_t layers) {
  StackupConfig cfg;
  cfg.layer_count = layers;
  cfg.grid_nx = cfg.grid_ny = 16;
  return cfg;
}

StackupConfig small_stacked(std::size_t layers) {
  StackupConfig cfg;
  cfg.topology = PdnTopology::VoltageStacked;
  cfg.layer_count = layers;
  cfg.grid_nx = cfg.grid_ny = 16;
  return cfg;
}

TEST(PdnSolverTest, RegularCurrentConservation) {
  PdnModel model(small_regular(2), paper_fp());
  const auto sol = model.solve_activities(cpm(), {1.0, 1.0});
  // All load current comes from the single off-chip source.
  EXPECT_NEAR(sol.supply_current, 15.2, 1e-3);
  // Pad currents split between Vdd and Gnd sides, each carrying the total.
  const double pad_sum = std::accumulate(sol.c4_pad_currents.begin(),
                                         sol.c4_pad_currents.end(), 0.0);
  EXPECT_NEAR(pad_sum, 2.0 * 15.2, 0.01);
}

TEST(PdnSolverTest, RegularIrDropPositiveAndModest) {
  PdnModel model(small_regular(2), paper_fp());
  const auto sol = model.solve_activities(cpm(), {1.0, 1.0});
  EXPECT_GT(sol.max_ir_drop_fraction, 0.001);
  EXPECT_LT(sol.max_ir_drop_fraction, 0.05);
  EXPECT_DOUBLE_EQ(sol.max_overshoot_fraction, 0.0);  // no push anywhere
  EXPECT_TRUE(sol.report.converged);
}

TEST(PdnSolverTest, MoreLayersMoreNoiseRegular) {
  PdnModel two(small_regular(2), paper_fp());
  PdnModel eight(small_regular(8), paper_fp());
  const auto s2 = two.solve_activities(cpm(), std::vector<double>(2, 1.0));
  const auto s8 = eight.solve_activities(cpm(), std::vector<double>(8, 1.0));
  EXPECT_GT(s8.max_node_deviation_fraction,
            2.0 * s2.max_node_deviation_fraction);
}

TEST(PdnSolverTest, DenseTsvReducesRegularNoise) {
  auto cfg_few = small_regular(8);
  cfg_few.tsv = TsvConfig::few();
  auto cfg_dense = small_regular(8);
  cfg_dense.tsv = TsvConfig::dense();
  const auto s_few = PdnModel(cfg_few, paper_fp())
                         .solve_activities(cpm(), std::vector<double>(8, 1.0));
  const auto s_dense =
      PdnModel(cfg_dense, paper_fp())
          .solve_activities(cpm(), std::vector<double>(8, 1.0));
  EXPECT_LT(s_dense.max_node_deviation_fraction,
            s_few.max_node_deviation_fraction);
}

TEST(PdnSolverTest, StackedRecyclesCharge) {
  PdnModel model(small_stacked(4), paper_fp());
  const auto sol = model.solve_activities(cpm(), std::vector<double>(4, 1.0));
  // Balanced stack: off-chip current is ONE layer's worth, at 4x the
  // voltage -- the headline benefit of voltage stacking.
  EXPECT_NEAR(sol.supply_current, 7.6, 0.05);
  EXPECT_DOUBLE_EQ(sol.supply_voltage, 4.0);
  // Converters nearly idle when loads match.
  EXPECT_LT(sol.max_converter_current, 2e-3);
}

TEST(PdnSolverTest, StackedNoiseGrowsWithImbalance) {
  PdnModel model(small_stacked(4), paper_fp());
  const auto balanced = model.solve_activities(
      cpm(), power::interleaved_layer_activities(4, 0.0));
  const auto imbalanced = model.solve_activities(
      cpm(), power::interleaved_layer_activities(4, 0.6));
  EXPECT_GT(imbalanced.max_node_deviation_fraction,
            3.0 * balanced.max_node_deviation_fraction);
}

TEST(PdnSolverTest, MoreConvertersLowerNoise) {
  auto cfg2 = small_stacked(4);
  cfg2.converters_per_core = 2;
  auto cfg8 = small_stacked(4);
  cfg8.converters_per_core = 8;
  const auto acts = power::interleaved_layer_activities(4, 0.5);
  const auto s2 = PdnModel(cfg2, paper_fp()).solve_activities(cpm(), acts);
  const auto s8 = PdnModel(cfg8, paper_fp()).solve_activities(cpm(), acts);
  EXPECT_GT(s2.max_node_deviation_fraction,
            s8.max_node_deviation_fraction);
  // Per-converter load also drops with more converters.
  EXPECT_GT(s2.max_converter_current, 2.0 * s8.max_converter_current);
}

TEST(PdnSolverTest, ConverterLimitFlagged) {
  auto cfg = small_stacked(4);
  cfg.converters_per_core = 2;
  PdnModel model(cfg, paper_fp());
  const auto sol = model.solve_activities(
      cpm(), power::interleaved_layer_activities(4, 1.0));
  EXPECT_FALSE(sol.converter_limit_ok);
  EXPECT_GT(sol.max_converter_current, 0.1);
}

TEST(PdnSolverTest, StackedEmArraysPopulated) {
  auto cfg = small_stacked(4);
  PdnModel model(cfg, paper_fp());
  const auto sol = model.solve_activities(cpm(), std::vector<double>(4, 1.0));
  // Pads: 32 via pads + 32 gnd pads per core.
  EXPECT_EQ(sol.c4_pad_currents.size(), 16u * 64u);
  // TSVs: recycling (3 interfaces * 16 * 55) + via segments (512 * 3).
  EXPECT_EQ(sol.tsv_currents.size(), 3u * 16u * 55u + 512u * 3u);
  for (double i : sol.c4_pad_currents) EXPECT_GE(i, 0.0);
}

TEST(PdnSolverTest, RegularEmArraysPopulated) {
  auto cfg = small_regular(2);
  PdnModel model(cfg, paper_fp());
  const auto sol = model.solve_activities(cpm(), {1.0, 1.0});
  EXPECT_EQ(sol.tsv_currents.size(), 2u * 16u * 55u);  // 1 interface, 2 nets
  EXPECT_GT(sol.c4_pad_currents.size(), 200u);
}

TEST(PdnSolverTest, ViaSegmentsShareCurrent) {
  auto cfg = small_stacked(3);
  PdnModel model(cfg, paper_fp());
  const auto sol = model.solve_activities(cpm(), std::vector<double>(3, 1.0));
  // Through-via segments come in runs of (layers-1) identical currents and
  // precede the recycling TSVs (stacked topology emits vias first).
  const std::size_t recycling = 2u * 16u * 55u;
  ASSERT_EQ(sol.tsv_currents.size(), recycling + 512u * 2u);
  for (std::size_t v = 0; v + 1 < 512u * 2u; v += 2) {
    EXPECT_DOUBLE_EQ(sol.tsv_currents[v], sol.tsv_currents[v + 1]);
  }
}

TEST(PdnSolverTest, LoadPowerBelowSupplyPower) {
  PdnModel model(small_regular(4), paper_fp());
  const auto sol = model.solve_activities(cpm(), std::vector<double>(4, 1.0));
  EXPECT_GT(sol.supply_power, sol.load_power);
  EXPECT_GT(sol.resistive_efficiency, 0.90);
  EXPECT_LT(sol.resistive_efficiency, 1.0);
}

TEST(PdnSolverTest, AdjacentRailReferenceAccumulatesSag) {
  // The ablation mode: coupled midpoint references make the droop grow
  // superlinearly with layer count under the interleaved pattern.
  auto ideal = small_stacked(8);
  auto coupled = small_stacked(8);
  coupled.converter_reference = ConverterReference::AdjacentRails;
  const auto acts = power::interleaved_layer_activities(8, 0.5);
  const auto s_ideal = PdnModel(ideal, paper_fp()).solve_activities(cpm(), acts);
  const auto s_coupled =
      PdnModel(coupled, paper_fp()).solve_activities(cpm(), acts);
  EXPECT_GT(s_coupled.max_node_deviation_fraction,
            1.3 * s_ideal.max_node_deviation_fraction);
}

TEST(PdnSolverTest, ClosedLoopControlSolves) {
  auto cfg = small_stacked(4);
  cfg.converter.control = sc::ControlPolicy::ClosedLoop;
  PdnModel model(cfg, paper_fp());
  const auto sol = model.solve_activities(
      cpm(), power::interleaved_layer_activities(4, 0.4));
  EXPECT_TRUE(sol.report.converged);
  EXPECT_GT(sol.max_converter_current, 0.0);
}

TEST(PdnSolverTest, PerCoreSchedulingReducesNoise) {
  // Scheduling identical work on all layers of a core stack (balanced)
  // versus concentrating imbalance -- the paper's Sec. 5.2 suggestion.
  auto cfg = small_stacked(4);
  PdnModel model(cfg, paper_fp());
  std::vector<std::vector<double>> balanced(4, std::vector<double>(16, 0.7));
  std::vector<std::vector<double>> skewed(4, std::vector<double>(16, 0.7));
  for (std::size_t c = 0; c < 16; ++c) {
    skewed[1][c] = 0.2;
    skewed[3][c] = 0.2;
    skewed[0][c] = 1.0;
    skewed[2][c] = 1.0;
  }
  const auto s_bal = model.solve(model.network().build_loads_per_core(
      cpm(), balanced));
  const auto s_skew = model.solve(model.network().build_loads_per_core(
      cpm(), skewed));
  EXPECT_LT(s_bal.max_node_deviation_fraction,
            s_skew.max_node_deviation_fraction);
}

// Parameterized sweep over layer counts: stacked supply current stays one
// layer's worth regardless of N (the scalability claim).
class StackScaling : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StackScaling, SupplyCurrentIndependentOfLayerCount) {
  PdnModel model(small_stacked(GetParam()), paper_fp());
  const auto sol = model.solve_activities(
      cpm(), std::vector<double>(GetParam(), 1.0));
  EXPECT_NEAR(sol.supply_current, 7.6, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Layers, StackScaling,
                         ::testing::Values(2, 3, 4, 6, 8));

}  // namespace
}  // namespace vstack::pdn
