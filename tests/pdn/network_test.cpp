#include "pdn/network.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "floorplan/floorplan.h"

namespace vstack::pdn {
namespace {

const floorplan::Floorplan& paper_fp() {
  static const floorplan::Floorplan fp = floorplan::paper_layer_floorplan();
  return fp;
}

std::size_t count_kind(const PdnNetwork& net, ConductorKind kind) {
  std::size_t n = 0;
  for (const auto& g : net.conductors()) {
    if (g.kind == kind) n += g.count;
  }
  return n;
}

TEST(DistributeTest, ExactAndBalanced) {
  const auto d = PdnNetwork::distribute(10, 4);
  EXPECT_EQ(std::accumulate(d.begin(), d.end(), 0u), 10u);
  for (auto c : d) {
    EXPECT_GE(c, 2u);
    EXPECT_LE(c, 3u);
  }
}

TEST(DistributeTest, SparseSpreadsEvenly) {
  // 3 items over 9 slots: every third slot.
  const auto d = PdnNetwork::distribute(3, 9);
  EXPECT_EQ(std::accumulate(d.begin(), d.end(), 0u), 3u);
  EXPECT_EQ(d[2], 1u);
  EXPECT_EQ(d[5], 1u);
  EXPECT_EQ(d[8], 1u);
}

TEST(DistributeTest, ZeroItems) {
  const auto d = PdnNetwork::distribute(0, 5);
  EXPECT_EQ(std::accumulate(d.begin(), d.end(), 0u), 0u);
}

TEST(NetworkTest, NodeCount) {
  StackupConfig cfg;
  cfg.layer_count = 2;
  PdnNetwork net(cfg, paper_fp());
  EXPECT_EQ(net.node_count(), 2u + 2u * 2u * 32u * 32u);
}

TEST(NetworkTest, NodeIndicesDisjoint) {
  StackupConfig cfg;
  cfg.layer_count = 2;
  PdnNetwork net(cfg, paper_fp());
  EXPECT_NE(net.vdd_node(0, 0), net.gnd_node(0, 0));
  EXPECT_NE(net.vdd_node(0, 5), net.vdd_node(1, 5));
  EXPECT_THROW(net.vdd_node(2, 0), Error);
  EXPECT_THROW(net.gnd_node(0, 32 * 32), Error);
}

TEST(NetworkTest, RegularPadCountsMatchFraction) {
  StackupConfig cfg;
  cfg.layer_count = 2;
  cfg.power_c4_fraction = 0.25;
  PdnNetwork net(cfg, paper_fp());
  // 33 x 33 = 1089 sites; 25% ~ 272 power pads, alternating Vdd/Gnd.
  const std::size_t vdd = count_kind(net, ConductorKind::C4Vdd);
  const std::size_t gnd = count_kind(net, ConductorKind::C4Gnd);
  EXPECT_NEAR(static_cast<double>(vdd + gnd), 0.25 * 1089.0, 2.0);
  EXPECT_NEAR(static_cast<double>(vdd), static_cast<double>(gnd), 1.0);
}

TEST(NetworkTest, RegularTsvCounts) {
  StackupConfig cfg;
  cfg.layer_count = 4;
  cfg.tsv = TsvConfig::few();
  PdnNetwork net(cfg, paper_fp());
  // Per interface: 16 cores * 55 per net; 3 interfaces.
  EXPECT_EQ(count_kind(net, ConductorKind::TsvVdd), 3u * 16u * 55u);
  EXPECT_EQ(count_kind(net, ConductorKind::TsvGnd), 3u * 16u * 55u);
  EXPECT_EQ(count_kind(net, ConductorKind::RecyclingTsv), 0u);
  EXPECT_TRUE(net.converters().empty());
}

TEST(NetworkTest, StackedStructure) {
  StackupConfig cfg;
  cfg.topology = PdnTopology::VoltageStacked;
  cfg.layer_count = 4;
  cfg.vdd_pads_per_core = 32;
  cfg.converters_per_core = 8;
  PdnNetwork net(cfg, paper_fp());

  EXPECT_EQ(count_kind(net, ConductorKind::ThroughVia), 16u * 32u);
  EXPECT_EQ(count_kind(net, ConductorKind::C4Gnd), 16u * 32u);
  EXPECT_EQ(count_kind(net, ConductorKind::C4Vdd), 0u);
  EXPECT_EQ(count_kind(net, ConductorKind::RecyclingTsv), 3u * 16u * 55u);
  // Converters: per core, per intermediate rail.
  EXPECT_EQ(net.converters().size(), 16u * 8u * 3u);
}

TEST(NetworkTest, ThroughViaChainResistanceAndSegments) {
  StackupConfig cfg;
  cfg.topology = PdnTopology::VoltageStacked;
  cfg.layer_count = 4;
  PdnNetwork net(cfg, paper_fp());
  for (const auto& g : net.conductors()) {
    if (g.kind == ConductorKind::ThroughVia) {
      EXPECT_NEAR(g.unit_resistance,
                  cfg.params.c4_resistance + 3.0 * cfg.params.tsv_resistance,
                  1e-12);
      EXPECT_EQ(g.em_segments, 3u);
    }
  }
}

TEST(NetworkTest, ConverterLevelsAndNodes) {
  StackupConfig cfg;
  cfg.topology = PdnTopology::VoltageStacked;
  cfg.layer_count = 3;
  cfg.converters_per_core = 2;
  PdnNetwork net(cfg, paper_fp());
  for (const auto& conv : net.converters()) {
    EXPECT_GE(conv.level, 1u);
    EXPECT_LE(conv.level, 2u);
    EXPECT_GT(conv.r_series, 0.0);
    EXPECT_NE(conv.out, conv.top);
    EXPECT_NE(conv.out, conv.bottom);
  }
}

TEST(NetworkTest, LoadsScaleWithActivity) {
  StackupConfig cfg;
  cfg.layer_count = 2;
  PdnNetwork net(cfg, paper_fp());
  const auto model = power::CorePowerModel::cortex_a9_like();
  const auto full = net.build_loads(model, {1.0, 1.0});
  const auto idle = net.build_loads(model, {0.0, 0.0});
  double i_full = 0.0, i_idle = 0.0;
  for (const auto& l : full) i_full += l.current;
  for (const auto& l : idle) i_idle += l.current;
  // Full: 2 layers * 7.6 W / 1 V; idle: leakage only (0.76 W per layer).
  EXPECT_NEAR(i_full, 15.2, 1e-6);
  EXPECT_NEAR(i_idle, 1.52, 1e-6);
}

TEST(NetworkTest, PerCoreLoadsLocalize) {
  StackupConfig cfg;
  cfg.layer_count = 1;
  cfg.topology = PdnTopology::Regular3d;
  PdnNetwork net(cfg, paper_fp());
  const auto model = power::CorePowerModel::cortex_a9_like();
  std::vector<std::vector<double>> acts{std::vector<double>(16, 0.0)};
  acts[0][3] = 1.0;
  const auto loads = net.build_loads_per_core(model, acts);
  double total = 0.0;
  for (const auto& l : loads) total += l.current;
  EXPECT_NEAR(total, model.total_power(1.0) + 15.0 * model.total_power(0.0),
              1e-6);
}

TEST(NetworkTest, RejectsOverfullPadAllocation) {
  StackupConfig cfg;
  cfg.topology = PdnTopology::VoltageStacked;
  cfg.layer_count = 2;
  cfg.vdd_pads_per_core = 200;  // way more than ~68 sites per tile
  EXPECT_THROW(PdnNetwork(cfg, paper_fp()), Error);
}

TEST(NetworkTest, ValidationRejectsStackedSingleLayer) {
  StackupConfig cfg;
  cfg.topology = PdnTopology::VoltageStacked;
  cfg.layer_count = 1;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(NetworkTest, SupplyVoltageScalesWithLayers) {
  StackupConfig cfg;
  cfg.topology = PdnTopology::VoltageStacked;
  cfg.layer_count = 8;
  EXPECT_DOUBLE_EQ(cfg.supply_voltage(), 8.0);
  cfg.topology = PdnTopology::Regular3d;
  EXPECT_DOUBLE_EQ(cfg.supply_voltage(), 1.0);
}

}  // namespace
}  // namespace vstack::pdn
