#include "pdn/params.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace vstack::pdn {
namespace {

TEST(PdnParametersTest, Table1Defaults) {
  const PdnParameters p;
  EXPECT_DOUBLE_EQ(p.c4_pitch, 200e-6);
  EXPECT_DOUBLE_EQ(p.c4_resistance, 10e-3);
  EXPECT_DOUBLE_EQ(p.tsv_min_pitch, 10e-6);
  EXPECT_DOUBLE_EQ(p.tsv_diameter, 5e-6);
  EXPECT_NEAR(p.tsv_resistance, 44.539e-3, 1e-12);
  EXPECT_NEAR(p.tsv_koz_side, 9.88e-6, 1e-12);
  EXPECT_NO_THROW(p.validate());
}

TEST(PdnParametersTest, SheetResistanceFormula) {
  const PdnParameters p;
  // rho * pitch / (w * t) = 2.2e-8 * 810e-6 / (400e-6 * 0.72e-6).
  EXPECT_NEAR(p.sheet_resistance(),
              2.2e-8 * 810e-6 / (400e-6 * 0.72e-6), 1e-9);
}

TEST(PdnParametersTest, KozAreaIsSquareOfSide) {
  const PdnParameters p;
  EXPECT_NEAR(p.tsv_koz_area(), 9.88e-6 * 9.88e-6, 1e-18);
}

TEST(PdnParametersTest, ValidationCatchesBadGeometry) {
  PdnParameters p;
  p.tsv_diameter = 20e-6;  // larger than the keep-out zone
  EXPECT_THROW(p.validate(), Error);
  p = PdnParameters{};
  p.grid_width = p.grid_pitch;  // strap as wide as the pitch
  EXPECT_THROW(p.validate(), Error);
}

TEST(TsvConfigTest, Table2Counts) {
  EXPECT_EQ(TsvConfig::dense().tsvs_per_core, 6650u);
  EXPECT_EQ(TsvConfig::sparse().tsvs_per_core, 1675u);
  EXPECT_EQ(TsvConfig::few().tsvs_per_core, 110u);
  EXPECT_EQ(TsvConfig::few().vdd_tsvs_per_core(), 55u);  // "55 per core"
}

TEST(TsvConfigTest, AreaOverheadsMatchTable2) {
  // Core tile: 44.12 mm^2 / 16.  Paper's Table 2 reports 24.2%, 6.1%, 0.4%;
  // pure KoZ-count accounting gives 23.5%, 5.9%, 0.39%.
  const PdnParameters p;
  const double core_area = 44.12e-6 / 16.0;
  EXPECT_NEAR(TsvConfig::dense().area_overhead(p, core_area), 0.235, 0.01);
  EXPECT_NEAR(TsvConfig::sparse().area_overhead(p, core_area), 0.059, 0.005);
  EXPECT_NEAR(TsvConfig::few().area_overhead(p, core_area), 0.0039, 0.0005);
}

TEST(TsvConfigTest, PaperConfigsOrdering) {
  const auto configs = TsvConfig::paper_configs();
  ASSERT_EQ(configs.size(), 3u);
  EXPECT_GT(configs[0].tsvs_per_core, configs[1].tsvs_per_core);
  EXPECT_GT(configs[1].tsvs_per_core, configs[2].tsvs_per_core);
}

TEST(TsvConfigTest, Validation) {
  TsvConfig c = TsvConfig::few();
  c.tsvs_per_core = 1;
  EXPECT_THROW(c.validate(), Error);
}

}  // namespace
}  // namespace vstack::pdn
