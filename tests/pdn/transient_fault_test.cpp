// Mid-run fault events in the PDN transient engine (pdn::TimedFaultEvent):
// scheduling semantics in fixed and adaptive mode, load surges, validation,
// and the epoch-keyed factorization cache that makes post-fault solves safe.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.h"
#include "floorplan/floorplan.h"
#include "pdn/transient.h"
#include "pdn/transient_core.h"
#include "power/workload.h"

namespace vstack::pdn {
namespace {

const floorplan::Floorplan& paper_fp() {
  static const floorplan::Floorplan fp = floorplan::paper_layer_floorplan();
  return fp;
}

const power::CorePowerModel& cpm() {
  static const power::CorePowerModel m =
      power::CorePowerModel::cortex_a9_like();
  return m;
}

StackupConfig small_stack(std::size_t layers) {
  StackupConfig cfg;
  cfg.topology = PdnTopology::VoltageStacked;
  cfg.layer_count = layers;
  cfg.grid_nx = cfg.grid_ny = 8;
  return cfg;
}

PdnTransientOptions fast_options() {
  PdnTransientOptions o;
  o.time_step = 1e-9;
  o.duration = 80e-9;
  o.step_time = 10e-9;
  return o;
}

/// Imbalanced per-layer activities (the stress case for stacking): odd
/// layers draw a fraction of the even layers' load, so the intermediate
/// rails lean on the converters.
std::vector<double> imbalanced(std::size_t layers) {
  std::vector<double> a(layers, 1.0);
  for (std::size_t i = 1; i < layers; i += 2) a[i] = 0.2;
  return a;
}

/// Stuck-off fault for every converter at `level` except the first `keep`.
FaultSet kill_level_converters(const PdnModel& model, std::size_t level,
                               std::size_t keep) {
  FaultSet fs;
  std::size_t kept = 0;
  const auto& convs = model.network().converters();
  for (std::size_t i = 0; i < convs.size(); ++i) {
    if (convs[i].level != level) continue;
    if (kept < keep) {
      ++kept;
    } else {
      fs.converter_stuck_off(i);
    }
  }
  return fs;
}

bool trail_contains(const sim::TransientReport& report,
                    const std::string& needle) {
  for (const auto& ev : report.events) {
    if (ev.what.find(needle) != std::string::npos) return true;
  }
  return false;
}

double max_noise_after(const PdnTransientResult& r, double t) {
  double worst = 0.0;
  for (std::size_t k = 0; k < r.time.size(); ++k) {
    if (r.time[k] >= t) worst = std::max(worst, r.worst_noise[k]);
  }
  return worst;
}

TEST(PdnFaultEventTest, FaultAppliesAtScheduledTimeOnTheFixedGrid) {
  // Fresh models per run: PdnModel::solve warm-starts its CG from the last
  // solution, so sharing one model would skew the two DC initial conditions
  // against each other at the iterative tolerance level.
  PdnModel healthy_model(small_stack(2), paper_fp());
  PdnModel faulted_model(small_stack(2), paper_fp());
  const auto acts = imbalanced(2);

  const auto healthy = simulate_load_step(healthy_model, cpm(), acts, acts,
                                          fast_options());
  ASSERT_TRUE(healthy.ok());

  PdnTransientOptions o = fast_options();
  TimedFaultEvent ev;
  ev.time = 40e-9;
  ev.faults = kill_level_converters(faulted_model, 1, 4);
  ev.label = "conv-kill";
  o.fault_events.push_back(ev);

  const auto r = simulate_load_step(faulted_model, cpm(), acts, acts, o);
  ASSERT_TRUE(r.ok()) << r.report.diagnostic;
  ASSERT_EQ(r.time.size(), healthy.time.size());

  // Before the strike the faulted run retraces the healthy waveform
  // (startup ringing and all) on the identical fixed grid.
  for (std::size_t k = 0; k < r.time.size(); ++k) {
    if (r.time[k] >= 40e-9) break;
    EXPECT_DOUBLE_EQ(r.worst_noise[k], healthy.worst_noise[k])
        << "pre-fault sample at t=" << r.time[k];
  }
  // After it, losing most of the level-1 converters under imbalance droops
  // the intermediate rail well past anything the healthy run shows.
  EXPECT_GT(max_noise_after(r, 40e-9),
            max_noise_after(healthy, 0.0) + 0.02);
  EXPECT_TRUE(trail_contains(r.report, "fault event 'conv-kill' applied"));
}

TEST(PdnFaultEventTest, FaultAtTimeZeroStartsFromTheHealthyOperatingPoint) {
  PdnModel model(small_stack(2), paper_fp());
  const auto acts = imbalanced(2);

  const auto healthy = simulate_load_step(model, cpm(), acts, acts,
                                          fast_options());
  ASSERT_TRUE(healthy.ok());

  PdnTransientOptions o = fast_options();
  TimedFaultEvent ev;
  ev.time = 0.0;
  ev.faults = kill_level_converters(model, 1, 4);
  ev.label = "at-zero";
  o.fault_events.push_back(ev);
  const auto r = simulate_load_step(model, cpm(), acts, acts, o);
  ASSERT_TRUE(r.ok()) << r.report.diagnostic;

  // The initial condition is the HEALTHY DC point -- the fault only shapes
  // the waveform from t = 0+ onward.  (Loose tolerance: the shared model's
  // warm-started CG makes repeat DC solves agree only to the iterative
  // tolerance, far below the ~0.1 fault droop this test watches for.)
  EXPECT_NEAR(r.initial_noise, healthy.initial_noise, 1e-5);
  EXPECT_GT(r.final_noise, r.initial_noise + 0.02);
  EXPECT_TRUE(trail_contains(r.report, "'at-zero' applied"));
}

TEST(PdnFaultEventTest, AdaptiveSnapsAStepBoundaryOntoTheFaultInstant) {
  PdnModel model(small_stack(2), paper_fp());
  const auto acts = imbalanced(2);

  PdnTransientOptions o = fast_options();
  o.adaptive = true;
  TimedFaultEvent ev;
  // Deliberately off any uniform grid a sane controller would pick.
  ev.time = 13.7e-9;
  ev.faults = kill_level_converters(model, 1, 4);
  ev.label = "off-grid";
  o.fault_events.push_back(ev);
  const auto r = simulate_load_step(model, cpm(), acts, acts, o);
  ASSERT_TRUE(r.ok()) << r.report.diagnostic;

  double closest = std::numeric_limits<double>::infinity();
  for (double t : r.time) closest = std::min(closest, std::abs(t - ev.time));
  EXPECT_LT(closest, 1e-13) << "no accepted step boundary on the fault";
  EXPECT_GT(max_noise_after(r, ev.time), r.initial_noise + 0.02);
  EXPECT_TRUE(trail_contains(r.report, "'off-grid' applied"));
}

TEST(PdnFaultEventTest, TwoFaultsInsideOneFixedStepBothApply) {
  PdnModel model(small_stack(2), paper_fp());
  const auto acts = imbalanced(2);

  PdnTransientOptions o = fast_options();  // 1 ns grid
  TimedFaultEvent first;
  first.time = 40.2e-9;  // both inside the (40 ns, 41 ns] interval
  first.faults = kill_level_converters(model, 1, 16);
  first.label = "first-hit";
  TimedFaultEvent second;
  second.time = 40.7e-9;
  second.faults = kill_level_converters(model, 1, 4);
  second.label = "second-hit";
  o.fault_events.push_back(first);
  o.fault_events.push_back(second);

  const auto r = simulate_load_step(model, cpm(), acts, acts, o);
  ASSERT_TRUE(r.ok()) << r.report.diagnostic;
  EXPECT_TRUE(trail_contains(r.report, "'first-hit' applied"));
  EXPECT_TRUE(trail_contains(r.report, "'second-hit' applied"));
  EXPECT_GT(max_noise_after(r, 41e-9), r.initial_noise + 0.02);
}

TEST(PdnFaultEventTest, AdaptiveAndFixedAgreeOnTheFaultedEndpoint) {
  PdnModel model(small_stack(2), paper_fp());
  const auto acts = imbalanced(2);

  PdnTransientOptions o = fast_options();
  o.duration = 200e-9;
  TimedFaultEvent ev;
  ev.time = 50e-9;
  ev.faults = kill_level_converters(model, 1, 8);
  o.fault_events.push_back(ev);

  const auto fixed = simulate_load_step(model, cpm(), acts, acts, o);
  o.adaptive = true;
  const auto adaptive = simulate_load_step(model, cpm(), acts, acts, o);
  ASSERT_TRUE(fixed.ok()) << fixed.report.diagnostic;
  ASSERT_TRUE(adaptive.ok()) << adaptive.report.diagnostic;

  // Same physics, different grids: the settled post-fault levels must agree.
  EXPECT_NEAR(adaptive.final_noise, fixed.final_noise,
              0.05 * fixed.final_noise + 0.002);
}

TEST(PdnFaultEventTest, LoadSurgeEventReplacesTheActivities) {
  PdnModel model(small_stack(2), paper_fp());
  const std::vector<double> light(2, 0.2);

  PdnTransientOptions o = fast_options();
  TimedFaultEvent ev;
  ev.time = 30e-9;
  ev.activities = {1.0, 1.0};  // pure load surge: no topology change
  ev.label = "surge";
  o.fault_events.push_back(ev);

  const auto r = simulate_load_step(model, cpm(), light, light, o);
  ASSERT_TRUE(r.ok()) << r.report.diagnostic;
  EXPECT_GT(max_noise_after(r, 32e-9), r.initial_noise);
  EXPECT_GT(r.supply_current.back(), r.supply_current.front());
  EXPECT_TRUE(trail_contains(r.report, "load surge 'surge' applied"));
}

TEST(PdnFaultEventTest, ValidationRejectsBadEventTimes) {
  PdnModel model(small_stack(2), paper_fp());
  const auto acts = imbalanced(2);

  PdnTransientOptions o = fast_options();
  TimedFaultEvent ev;
  ev.time = o.duration;  // at/after the end: nothing left to observe
  o.fault_events.push_back(ev);
  EXPECT_THROW(simulate_load_step(model, cpm(), acts, acts, o), Error);

  o.fault_events[0].time = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(simulate_load_step(model, cpm(), acts, acts, o), Error);

  o.fault_events[0].time = 20e-9;
  o.fault_events[0].activities = {1.0};  // wrong layer count
  EXPECT_THROW(simulate_load_step(model, cpm(), acts, acts, o), Error);
}

TEST(PdnFaultEventTest, StepSolverCacheIsInvalidatedByTheTopologyEpoch) {
  // Regression for the epoch-keyed factorization cache: solving, mutating
  // the topology, then solving again at the SAME (dt, scheme) must use the
  // post-fault matrix -- bit-identical to a fresh solver built after the
  // mutation, and different from the pre-fault solution.
  PdnModel model(small_stack(2), paper_fp());
  PdnNetwork net = model.network();
  PdnTransientOptions o = fast_options();

  detail::TransientWorkspace ws(net, o);
  detail::StepSolver solver(ws.system(), o);
  const std::size_t n = ws.n();
  const la::Vector rhs(n, 1e-3);
  sim::TransientReport report;
  std::string diag;

  la::Vector before(n, 0.0);
  ASSERT_TRUE(solver.solve(1e-9, true, rhs, before, 0.0, report, diag))
      << diag;

  kill_level_converters(model, 1, 4).apply_to(net);
  ws.rebuild_topology();

  la::Vector after(n, 0.0);
  ASSERT_TRUE(solver.solve(1e-9, true, rhs, after, 1e-9, report, diag))
      << diag;

  // A solver with no pre-fault history must produce the identical solution.
  detail::StepSolver fresh(ws.system(), o);
  la::Vector reference(n, 0.0);
  ASSERT_TRUE(fresh.solve(1e-9, true, rhs, reference, 1e-9, report, diag))
      << diag;
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(after[i], reference[i]) << "entry " << i;
  }

  // And the mutation must actually have changed the answer (a stale cached
  // factorization would have reproduced `before`).
  double delta = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    delta = std::max(delta, std::abs(after[i] - before[i]));
  }
  EXPECT_GT(delta, 1e-12);
}

}  // namespace
}  // namespace vstack::pdn
