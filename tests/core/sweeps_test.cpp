#include "core/sweeps.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::core {
namespace {

const StudyContext& ctx() {
  static const StudyContext c = [] {
    StudyContext c = StudyContext::paper_defaults();
    c.base.grid_nx = c.base.grid_ny = 16;
    return c;
  }();
  return c;
}

TEST(Fig5aSweepTest, ReproducesPaperShape) {
  const auto rows = run_fig5a(ctx(), {2, 8});
  ASSERT_EQ(rows.size(), 2u);

  // 2-layer: V-S normalized to ~1 with regular Few in the same lifetime
  // class (the paper puts regular slightly above; our pad-local crowding
  // model slightly below -- documented divergence, see EXPERIMENTS.md).
  EXPECT_NEAR(rows[0].vs_few, 1.0, 0.05);
  EXPECT_GT(rows[0].reg_few, 0.4 * rows[0].vs_few);
  EXPECT_LT(rows[0].reg_few, 2.5 * rows[0].vs_few);

  // Regular degrades steeply with layers ("up to 84%"); V-S barely moves.
  EXPECT_LT(rows[1].reg_few, 0.35 * rows[0].reg_few);
  EXPECT_GT(rows[1].vs_few, 0.80 * rows[0].vs_few);

  // 8-layer gap: V-S more than 3x the best regular allocation.
  EXPECT_GT(rows[1].vs_few / rows[1].reg_few, 3.0);

  // More TSVs help the regular PDN, but only marginally.
  EXPECT_GT(rows[1].reg_dense, rows[1].reg_few);
  EXPECT_LT(rows[1].reg_dense, rows[1].vs_few);
}

TEST(Fig5bSweepTest, ReproducesPaperShape) {
  const auto rows = run_fig5b(ctx(), {2, 8});
  ASSERT_EQ(rows.size(), 2u);

  // V-S flat at ~1 across layer counts.
  EXPECT_NEAR(rows[0].vs, 1.0, 0.05);
  EXPECT_NEAR(rows[1].vs, 1.0, 0.08);

  // Regular C4 MTTF degrades quickly with scaling.
  EXPECT_LT(rows[1].reg_25, 0.35 * rows[0].reg_25);

  // More power pads help monotonically, but even 100% stays well below
  // V-S at 8 layers ("not feasible to match V-S by allocating more pads").
  EXPECT_GT(rows[1].reg_50, rows[1].reg_25);
  EXPECT_GT(rows[1].reg_75, rows[1].reg_50);
  EXPECT_GT(rows[1].reg_100, rows[1].reg_75);
  EXPECT_GT(rows[1].vs / rows[1].reg_100, 3.0);
}

TEST(Fig6SweepTest, ReproducesPaperShape) {
  const auto result = run_fig6(ctx(), 8, {2, 8}, {0.0, 0.5, 1.0});
  ASSERT_EQ(result.rows.size(), 3u);

  // Regular reference ordering: fewer TSVs => more noise.
  EXPECT_LT(result.reg_dense, result.reg_sparse);
  EXPECT_LT(result.reg_sparse, result.reg_few);

  // V-S noise grows with imbalance; fewer converters => more noise.
  const auto& r0 = result.rows[0];
  const auto& r1 = result.rows[1];
  ASSERT_TRUE(r0.vs_noise[1].has_value());
  ASSERT_TRUE(r1.vs_noise[1].has_value());
  EXPECT_GT(*r1.vs_noise[1], *r0.vs_noise[1]);

  // 2 conv/core exceeds the 100 mA limit by 50% imbalance (skipped point).
  EXPECT_FALSE(r1.vs_noise[0].has_value());
  // 8 conv/core survives the full sweep.
  EXPECT_TRUE(result.rows[2].vs_noise[1].has_value());

  // At low imbalance the iso-area V-S design beats regular Dense; at 100%
  // it loses (the paper's ~50% crossover).
  EXPECT_LT(*r0.vs_noise[1], result.reg_dense);
  EXPECT_GT(*result.rows[2].vs_noise[1], result.reg_dense);
}

TEST(Fig7SweepTest, CampaignStatistics) {
  const auto summaries = run_fig7(ctx(), 400, 2015);
  ASSERT_EQ(summaries.size(), 13u);
  double mean_imb = power::mean_max_imbalance(summaries);
  EXPECT_GT(mean_imb, 0.55);
  EXPECT_LT(mean_imb, 0.72);
  for (const auto& s : summaries) {
    EXPECT_LE(s.power.min, s.power.median);
    EXPECT_LE(s.power.median, s.power.max);
  }
}

TEST(Fig8SweepTest, ReproducesPaperShape) {
  const auto result = run_fig8(ctx(), 8, {2, 8}, {0.1, 0.5, 1.0});
  ASSERT_EQ(result.rows.size(), 3u);

  // Efficiency decreases with imbalance for a given converter count.
  ASSERT_TRUE(result.rows[0].vs_efficiency[1].has_value());
  ASSERT_TRUE(result.rows[2].vs_efficiency[1].has_value());
  EXPECT_GT(*result.rows[0].vs_efficiency[1],
            *result.rows[2].vs_efficiency[1]);

  // Fewer converters => higher efficiency where feasible.
  ASSERT_TRUE(result.rows[0].vs_efficiency[0].has_value());
  EXPECT_GT(*result.rows[0].vs_efficiency[0],
            *result.rows[0].vs_efficiency[1]);

  // 2 conv/core infeasible at 100% imbalance.
  EXPECT_FALSE(result.rows[2].vs_efficiency[0].has_value());

  // V-S beats the regular-with-SC baseline at moderate imbalance.
  EXPECT_GT(*result.rows[1].vs_efficiency[1], result.rows[1].regular_sc);
}

// Worker-pool determinism: figure rows land in sweep order, so jobs=4
// output is bitwise identical to the serial run.
TEST(SweepParallelTest, Fig5aParallelMatchesSerialBitwise) {
  const auto serial = run_fig5a(ctx(), {2, 4, 8});
  const auto parallel =
      run_fig5a(ctx(), {2, 4, 8}, ExecutionPolicy::parallel(4));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].layers, parallel[i].layers);
    EXPECT_EQ(serial[i].reg_dense, parallel[i].reg_dense);
    EXPECT_EQ(serial[i].reg_sparse, parallel[i].reg_sparse);
    EXPECT_EQ(serial[i].reg_few, parallel[i].reg_few);
    EXPECT_EQ(serial[i].vs_few, parallel[i].vs_few);
  }
}

TEST(SweepParallelTest, Fig6ParallelMatchesSerialBitwise) {
  const auto serial = run_fig6(ctx(), 8, {2, 8}, {0.0, 0.5, 1.0});
  const auto parallel = run_fig6(ctx(), 8, {2, 8}, {0.0, 0.5, 1.0},
                                 ExecutionPolicy::parallel(4));
  EXPECT_EQ(serial.reg_dense, parallel.reg_dense);
  EXPECT_EQ(serial.reg_sparse, parallel.reg_sparse);
  EXPECT_EQ(serial.reg_few, parallel.reg_few);
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t r = 0; r < serial.rows.size(); ++r) {
    EXPECT_EQ(serial.rows[r].imbalance, parallel.rows[r].imbalance);
    ASSERT_EQ(serial.rows[r].vs_noise.size(),
              parallel.rows[r].vs_noise.size());
    for (std::size_t c = 0; c < serial.rows[r].vs_noise.size(); ++c) {
      EXPECT_EQ(serial.rows[r].vs_noise[c].has_value(),
                parallel.rows[r].vs_noise[c].has_value());
      if (serial.rows[r].vs_noise[c]) {
        EXPECT_EQ(*serial.rows[r].vs_noise[c], *parallel.rows[r].vs_noise[c]);
      }
    }
  }
}

// The facade must be a pure re-plumbing of the free functions: same rows,
// no behavior of its own.
TEST(SweepRunnerTest, FacadeMatchesFreeFunctions) {
  SweepOptions opts;
  opts.layer_counts = {2, 8};
  opts.execution.jobs = 2;
  const SweepRunner runner(ctx(), opts);

  const auto direct = run_fig5a(ctx(), {2, 8});
  const auto via_facade = runner.fig5a();
  ASSERT_EQ(via_facade.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_facade[i].layers, direct[i].layers);
    EXPECT_EQ(via_facade[i].vs_few, direct[i].vs_few);
    EXPECT_EQ(via_facade[i].reg_few, direct[i].reg_few);
  }
}

TEST(SweepRunnerTest, RejectsEmptyAxesAndBadPolicy) {
  SweepOptions opts;
  opts.layer_counts.clear();
  EXPECT_THROW(SweepRunner(ctx(), opts), Error);

  SweepOptions bad_policy;
  bad_policy.execution.chunk = 0;
  EXPECT_THROW(SweepRunner(ctx(), bad_policy), Error);
}

}  // namespace
}  // namespace vstack::core
