#include "core/design_space.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace vstack::core {
namespace {

const StudyContext& ctx() {
  static const StudyContext c = [] {
    StudyContext c = StudyContext::paper_defaults();
    c.base.grid_nx = c.base.grid_ny = 8;
    return c;
  }();
  return c;
}

DesignSpaceOptions small_options() {
  DesignSpaceOptions o;
  o.layers = 4;
  o.regular_c4_fractions = {0.25, 1.0};
  o.stacked_converter_counts = {2, 8};
  return o;
}

TEST(DominanceTest, StrictDominance) {
  DesignPoint a, b;
  a.noise = 0.01;
  a.area_overhead = 0.05;
  a.tsv_mttf = a.c4_mttf = 2.0;
  a.efficiency = 0.9;
  b = a;
  b.noise = 0.02;  // worse on one axis, equal elsewhere
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, a));  // no strict improvement
}

TEST(DominanceTest, TradeoffIsNotDominance) {
  DesignPoint a, b;
  a.noise = 0.01;
  b.noise = 0.02;
  a.efficiency = 0.8;
  b.efficiency = 0.9;  // b better on efficiency, worse on noise
  EXPECT_FALSE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
}

TEST(DesignSpaceTest, EnumeratesFullGrid) {
  const auto points = enumerate_designs(ctx(), small_options());
  // 3 TSV configs x (2 fractions + 2 converter counts).
  EXPECT_EQ(points.size(), 3u * 4u);
  for (const auto& p : points) {
    EXPECT_FALSE(p.label.empty());
    EXPECT_GT(p.area_overhead, 0.0);
    EXPECT_GT(p.tsv_mttf, 0.0);
  }
}

TEST(DesignSpaceTest, FrontIsNonEmptyAndNonDominated) {
  const auto points = enumerate_designs(ctx(), small_options());
  const auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  for (const std::size_t i : front) {
    EXPECT_TRUE(points[i].feasible);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j != i && points[j].feasible) {
        EXPECT_FALSE(dominates(points[j], points[i]))
            << points[j].label << " dominates " << points[i].label;
      }
    }
  }
}

TEST(DesignSpaceTest, StackedDesignsOwnTheLifetimeExtreme) {
  // The best TSV lifetime among feasible designs belongs to a V-S design.
  const auto points = enumerate_designs(ctx(), small_options());
  const auto best = std::max_element(
      points.begin(), points.end(), [](const auto& a, const auto& b) {
        return a.tsv_mttf < b.tsv_mttf;
      });
  EXPECT_TRUE(best->config.is_voltage_stacked()) << best->label;
}

TEST(DesignSpaceTest, InfeasiblePointsExcludedFromFront) {
  auto points = enumerate_designs(ctx(), small_options());
  // Force one point infeasible but otherwise utopian.
  points[0].feasible = false;
  points[0].noise = 0.0;
  points[0].area_overhead = 0.0;
  points[0].tsv_mttf = points[0].c4_mttf = 1e9;
  points[0].efficiency = 1.0;
  const auto front = pareto_front(points);
  EXPECT_TRUE(std::find(front.begin(), front.end(), 0u) == front.end());
}

}  // namespace
}  // namespace vstack::core
