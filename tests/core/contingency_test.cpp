// Contingency engine: EM-risk ranking, deterministic N-1 sweeps, seeded
// Monte Carlo N-k campaigns, and the ISSUE acceptance property -- an N-1
// sweep over EVERY TSV of the default 4-layer stacked configuration
// completes with each case either converged (with an attempt trail) or
// structurally diagnosed, never an exception or a NaN.
#include "core/contingency.h"

#include <gtest/gtest.h>

#include <cmath>

#include "power/workload.h"

namespace vstack::core {
namespace {

const StudyContext& ctx() {
  static const StudyContext c = StudyContext::paper_defaults();
  return c;
}

pdn::StackupConfig stacked4(std::size_t grid = 12) {
  auto cfg = make_stacked(ctx(), 4, pdn::TsvConfig::few(), 8);
  cfg.grid_nx = cfg.grid_ny = grid;
  return cfg;
}

std::vector<double> acts4() {
  return power::interleaved_layer_activities(4, 0.5);
}

bool is_tsv_kind(pdn::ConductorKind kind) {
  return kind == pdn::ConductorKind::RecyclingTsv ||
         kind == pdn::ConductorKind::ThroughVia;
}

TEST(ContingencyRankingTest, SortedProbabilitiesOverCandidateKinds) {
  const ContingencyEngine engine(ctx(), stacked4());
  const auto ranking = engine.rank_by_em_risk(acts4());
  ASSERT_FALSE(ranking.empty());
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    const auto& e = ranking[i];
    EXPECT_GE(e.failure_probability, 0.0);
    EXPECT_LE(e.failure_probability, 1.0);
    EXPECT_GE(e.unit_current, 0.0);
    EXPECT_GT(e.count, 0u);
    // Grid straps, package lumps and leakage groups are not EM candidates.
    EXPECT_NE(e.kind, pdn::ConductorKind::GridStrap);
    EXPECT_NE(e.kind, pdn::ConductorKind::Leakage);
    if (i > 0) {
      EXPECT_LE(e.failure_probability, ranking[i - 1].failure_probability);
    }
  }
  // The auto mission time is the array's P = 0.5 crossing, so the worst
  // conductor must carry a substantial failure probability.
  EXPECT_GT(ranking.front().failure_probability, 0.05);
}

TEST(ContingencyN1Test, TopKSweepClassifiesEveryCase) {
  const ContingencyEngine engine(ctx(), stacked4());
  ContingencyOptions opts;
  opts.top_k = 5;
  const auto report = engine.run_n_minus_1(acts4(), opts);
  ASSERT_EQ(report.cases.size(), 5u);
  EXPECT_EQ(report.survivable + report.degraded + report.infeasible, 5u);
  EXPECT_GT(report.base_max_node_deviation_fraction, 0.0);
  EXPECT_GT(report.base_tsv_current_sum, 0.0);
  for (const auto& c : report.cases) {
    EXPECT_FALSE(c.label.empty());
    EXPECT_EQ(c.faults.size(), 1u);
    if (c.solved) {
      EXPECT_TRUE(std::isfinite(c.max_node_deviation_fraction));
      EXPECT_TRUE(std::isfinite(c.tsv_current_sum));
      // An opened conductor can only make the noise worse (or leave it,
      // to iterative-solver tolerance).
      EXPECT_GE(c.max_node_deviation_fraction,
                report.base_max_node_deviation_fraction - 1e-6);
    } else {
      EXPECT_FALSE(c.diagnostic.empty());
    }
  }
}

TEST(ContingencyN1Test, TinyNoiseBudgetDegradesSurvivors) {
  const ContingencyEngine engine(ctx(), stacked4());
  ContingencyOptions opts;
  opts.top_k = 3;
  opts.noise_budget_fraction = 1e-9;  // nothing passes this
  const auto report = engine.run_n_minus_1(acts4(), opts);
  EXPECT_EQ(report.survivable, 0u);
  EXPECT_EQ(report.degraded + report.infeasible, report.cases.size());
}

TEST(ContingencyCaseTest, StrandedTopRailIsInfeasible) {
  // IdealRails converters only pin intermediate rails; the top rail hangs
  // off the through-vias alone.  Opening every one strands layer 3's loads.
  const auto cfg = stacked4();
  const ContingencyEngine engine(ctx(), cfg);
  const pdn::PdnModel probe(cfg, ctx().layer_floorplan);
  pdn::FaultSet faults;
  for (std::size_t i = 0; i < probe.network().conductors().size(); ++i) {
    if (probe.network().conductors()[i].kind ==
        pdn::ConductorKind::ThroughVia) {
      faults.open_conductor(i);
    }
  }
  ASSERT_FALSE(faults.empty());

  const auto result = engine.evaluate_case(faults, acts4());
  EXPECT_EQ(result.outcome, CaseOutcome::Infeasible);
  EXPECT_GT(result.floating_islands, 0u);
  EXPECT_FALSE(result.diagnostic.empty());
}

TEST(ContingencyMonteCarloTest, SeededCampaignIsBitReproducible) {
  const ContingencyEngine engine(ctx(), stacked4());
  ContingencyOptions opts;
  opts.trials = 6;
  opts.faults_per_trial = 2;
  opts.converter_faults_per_trial = 1;
  opts.leakage_faults_per_trial = 1;
  opts.seed = 2015;
  const auto a = engine.run_monte_carlo(acts4(), opts);
  const auto b = engine.run_monte_carlo(acts4(), opts);

  ASSERT_EQ(a.cases.size(), 6u);
  ASSERT_EQ(b.cases.size(), 6u);
  EXPECT_EQ(a.survivable, b.survivable);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.infeasible, b.infeasible);
  EXPECT_DOUBLE_EQ(a.worst_post_fault_deviation,
                   b.worst_post_fault_deviation);
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    const auto& fa = a.cases[i].faults.faults();
    const auto& fb = b.cases[i].faults.faults();
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t j = 0; j < fa.size(); ++j) {
      EXPECT_EQ(fa[j].kind, fb[j].kind);
      EXPECT_EQ(fa[j].index, fb[j].index);
      EXPECT_DOUBLE_EQ(fa[j].severity, fb[j].severity);
    }
    EXPECT_EQ(a.cases[i].outcome, b.cases[i].outcome);
    EXPECT_DOUBLE_EQ(a.cases[i].max_node_deviation_fraction,
                     b.cases[i].max_node_deviation_fraction);
  }

  // A different seed must sample a different campaign.
  ContingencyOptions other = opts;
  other.seed = 7;
  const auto c = engine.run_monte_carlo(acts4(), other);
  bool any_difference = false;
  for (std::size_t i = 0; i < c.cases.size() && !any_difference; ++i) {
    const auto& fa = a.cases[i].faults.faults();
    const auto& fc = c.cases[i].faults.faults();
    if (fa.size() != fc.size()) {
      any_difference = true;
      break;
    }
    for (std::size_t j = 0; j < fa.size(); ++j) {
      if (fa[j].kind != fc[j].kind || fa[j].index != fc[j].index) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

void expect_reports_identical(const ContingencyReport& a,
                              const ContingencyReport& b) {
  ASSERT_EQ(a.cases.size(), b.cases.size());
  EXPECT_EQ(a.survivable, b.survivable);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.infeasible, b.infeasible);
  // Bitwise: both runs solve identical systems in identical order.
  EXPECT_EQ(a.worst_post_fault_deviation, b.worst_post_fault_deviation);
  EXPECT_EQ(a.base_max_node_deviation_fraction,
            b.base_max_node_deviation_fraction);
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    EXPECT_EQ(a.cases[i].label, b.cases[i].label);
    EXPECT_EQ(a.cases[i].outcome, b.cases[i].outcome);
    EXPECT_EQ(a.cases[i].solved, b.cases[i].solved);
    EXPECT_EQ(a.cases[i].max_node_deviation_fraction,
              b.cases[i].max_node_deviation_fraction) << "case " << i;
    EXPECT_EQ(a.cases[i].tsv_current_sum, b.cases[i].tsv_current_sum)
        << "case " << i;
  }
}

// Worker-pool determinism: the parallel sweeps commit cases in plan order,
// so jobs=4 must be bitwise identical to jobs=1 (same doubles, not just
// close ones).
TEST(ContingencyParallelTest, MonteCarloParallelMatchesSerialBitwise) {
  const ContingencyEngine engine(ctx(), stacked4());
  ContingencyOptions opts;
  opts.trials = 6;
  opts.faults_per_trial = 2;
  opts.converter_faults_per_trial = 1;
  opts.leakage_faults_per_trial = 1;
  opts.seed = 2015;

  const auto serial = engine.run_monte_carlo(acts4(), opts);
  ContingencyOptions par = opts;
  par.execution.jobs = 4;
  const auto parallel = engine.run_monte_carlo(acts4(), par);
  expect_reports_identical(serial, parallel);
}

TEST(ContingencyParallelTest, N1ParallelMatchesSerialBitwise) {
  const ContingencyEngine engine(ctx(), stacked4());
  ContingencyOptions opts;
  opts.top_k = 6;

  const auto serial = engine.run_n_minus_1(acts4(), opts);
  ContingencyOptions par = opts;
  par.execution.jobs = 4;
  const auto parallel = engine.run_n_minus_1(acts4(), par);
  expect_reports_identical(serial, parallel);
}

// The ISSUE acceptance property: N-1 over EVERY TSV (recycling TSVs and
// through-via chains) of the default 4-layer stacked configuration.  Each
// case must come back classified -- converged with an attempt trail, or a
// structured diagnostic -- and all reported metrics must be finite.
TEST(ContingencyAcceptanceTest, FullTsvNMinus1SweepNeverThrowsOrNans) {
  const auto cfg = stacked4();
  const ContingencyEngine engine(ctx(), cfg);
  const pdn::PdnModel probe(cfg, ctx().layer_floorplan);
  const auto& groups = probe.network().conductors();
  const auto activities = acts4();

  std::size_t tsv_cases = 0;
  std::size_t survivable = 0;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (!is_tsv_kind(groups[i].kind)) continue;
    ++tsv_cases;
    pdn::FaultSet faults;
    faults.open_conductor(i);
    const auto result = engine.evaluate_case(faults, activities);

    ASSERT_GE(result.solve_attempts, 1u) << result.label;
    if (result.solved) {
      EXPECT_TRUE(std::isfinite(result.max_node_deviation_fraction))
          << result.label;
      EXPECT_TRUE(std::isfinite(result.max_ir_drop_fraction)) << result.label;
      EXPECT_TRUE(std::isfinite(result.max_converter_current))
          << result.label;
      EXPECT_TRUE(std::isfinite(result.tsv_current_sum)) << result.label;
      if (result.outcome == CaseOutcome::Survivable) ++survivable;
    } else {
      EXPECT_EQ(result.outcome, CaseOutcome::Infeasible) << result.label;
      EXPECT_FALSE(result.diagnostic.empty()) << result.label;
    }
  }
  // The default stack has hundreds of TSV groups and healthy redundancy:
  // the sweep must actually cover them, and most single opens must survive.
  EXPECT_GT(tsv_cases, 100u);
  EXPECT_GT(survivable, tsv_cases / 2);
}

}  // namespace
}  // namespace vstack::core
