// Shared worker pool (core/task_pool.h): ordered reduction despite
// out-of-order completion, cancellation prefix semantics, error
// propagation, policy validation, and an oversubscribed stress run (the
// TSan CI preset replays this binary with 16 workers on few cores).
#include "core/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"

namespace vstack::core {
namespace {

ExecutionPolicy policy(std::size_t jobs, std::size_t chunk = 1,
                       bool cancel_on_error = true) {
  ExecutionPolicy p;
  p.jobs = jobs;
  p.chunk = chunk;
  p.cancel_on_error = cancel_on_error;
  return p;
}

TEST(ExecutionPolicyTest, ValidateRejectsBadShapes) {
  EXPECT_THROW(TaskPool(policy(4, 0)), Error);
  EXPECT_THROW(TaskPool(policy(5000)), Error);
  EXPECT_NO_THROW(TaskPool(policy(0)));  // 0 = auto is legal
}

TEST(ExecutionPolicyTest, Helpers) {
  EXPECT_EQ(ExecutionPolicy::serial().jobs, 1u);
  EXPECT_EQ(ExecutionPolicy::parallel().jobs, 0u);
  EXPECT_EQ(ExecutionPolicy::parallel(6).jobs, 6u);
  EXPECT_EQ(policy(3).resolved_jobs(), 3u);
}

TEST(ExecutionPolicyTest, DefaultJobsHonorsEnvOverride) {
  const char* saved = std::getenv("VSTACK_JOBS");
  const std::string saved_value = saved ? saved : "";

  ASSERT_EQ(setenv("VSTACK_JOBS", "3", 1), 0);
  EXPECT_EQ(ExecutionPolicy::default_jobs(), 3u);
  EXPECT_EQ(ExecutionPolicy::parallel().resolved_jobs(), 3u);

  // Malformed values fall through to hardware concurrency (>= 1).
  ASSERT_EQ(setenv("VSTACK_JOBS", "banana", 1), 0);
  EXPECT_GE(ExecutionPolicy::default_jobs(), 1u);
  ASSERT_EQ(setenv("VSTACK_JOBS", "0", 1), 0);
  EXPECT_GE(ExecutionPolicy::default_jobs(), 1u);

  if (saved) {
    setenv("VSTACK_JOBS", saved_value.c_str(), 1);
  } else {
    unsetenv("VSTACK_JOBS");
  }
}

TEST(ExecutionPolicyTest, DefaultJobsRejectsAndClampsBadEnvValues) {
  const char* saved = std::getenv("VSTACK_JOBS");
  const std::string saved_value = saved ? saved : "";
  const std::size_t fallback = [] {
    unsetenv("VSTACK_JOBS");
    return ExecutionPolicy::default_jobs();
  }();

  // Zero and negative values are ignored (warn + hardware fallback).
  ASSERT_EQ(setenv("VSTACK_JOBS", "0", 1), 0);
  EXPECT_EQ(ExecutionPolicy::default_jobs(), fallback);
  ASSERT_EQ(setenv("VSTACK_JOBS", "-3", 1), 0);
  EXPECT_EQ(ExecutionPolicy::default_jobs(), fallback);

  // Non-numeric (including trailing junk) is ignored too.
  ASSERT_EQ(setenv("VSTACK_JOBS", "abc", 1), 0);
  EXPECT_EQ(ExecutionPolicy::default_jobs(), fallback);
  ASSERT_EQ(setenv("VSTACK_JOBS", "4banana", 1), 0);
  EXPECT_EQ(ExecutionPolicy::default_jobs(), fallback);
  ASSERT_EQ(setenv("VSTACK_JOBS", "", 1), 0);
  EXPECT_EQ(ExecutionPolicy::default_jobs(), fallback);

  // Huge values clamp to the 4096 pool bound instead of exploding --
  // including values past the long long range.
  ASSERT_EQ(setenv("VSTACK_JOBS", "100000", 1), 0);
  EXPECT_EQ(ExecutionPolicy::default_jobs(), 4096u);
  ASSERT_EQ(setenv("VSTACK_JOBS", "99999999999999999999", 1), 0);
  EXPECT_EQ(ExecutionPolicy::default_jobs(), 4096u);

  // The clamped result must still be a constructible pool size.
  ExecutionPolicy p;
  p.jobs = ExecutionPolicy::default_jobs();
  EXPECT_NO_THROW(TaskPool{p});

  if (saved) {
    setenv("VSTACK_JOBS", saved_value.c_str(), 1);
  } else {
    unsetenv("VSTACK_JOBS");
  }
}

TEST(TaskPoolTest, ZeroCountIsANoop) {
  const TaskPool pool(policy(4));
  pool.run_ordered(
      0, [](std::size_t) { FAIL() << "work on empty range"; },
      [](std::size_t) { FAIL() << "commit on empty range"; });
}

TEST(TaskPoolTest, SerialInterleavesWorkAndCommitInline) {
  const TaskPool pool(ExecutionPolicy::serial());
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::string> events;
  pool.run_ordered(
      3,
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        events.push_back("w" + std::to_string(i));
      },
      [&](std::size_t i) { events.push_back("c" + std::to_string(i)); });
  EXPECT_EQ(events,
            (std::vector<std::string>{"w0", "c0", "w1", "c1", "w2", "c2"}));
}

// The determinism tentpole: workers finish in roughly REVERSE index order
// (early indices sleep longest), yet commits arrive strictly ascending on
// the calling thread.
TEST(TaskPoolTest, CommitsInIndexOrderDespiteOutOfOrderCompletion) {
  const std::size_t count = 8;
  const TaskPool pool(policy(4));
  const std::thread::id caller = std::this_thread::get_id();

  std::mutex mu;
  std::vector<std::size_t> completion;
  std::vector<std::size_t> commits;
  pool.run_ordered(
      count,
      [&](std::size_t i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds((count - i) * 10));
        const std::lock_guard<std::mutex> lock(mu);
        completion.push_back(i);
      },
      [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        commits.push_back(i);
      });

  ASSERT_EQ(commits.size(), count);
  for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(commits[i], i);
  // Index 3 sleeps 50 ms, index 0 sleeps 80 ms: with 4 concurrent workers
  // the first batch cannot complete in ascending order.
  ASSERT_EQ(completion.size(), count);
  EXPECT_NE(completion, commits);
}

TEST(TaskPoolTest, CancelOnErrorCommitsExactPrefixAndRethrows) {
  const std::size_t count = 16;
  const TaskPool pool(policy(4));
  std::vector<std::size_t> commits;
  try {
    pool.run_ordered(
        count,
        [&](std::size_t i) {
          if (i == 5) throw Error("boom at 5");
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        },
        [&](std::size_t i) { commits.push_back(i); });
    FAIL() << "expected the work error to propagate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom at 5"), std::string::npos);
  }
  // Commits are a contiguous prefix that stops at (or before) the failed
  // index -- never a hole, never anything past the failure.
  EXPECT_LE(commits.size(), 5u);
  for (std::size_t i = 0; i < commits.size(); ++i) EXPECT_EQ(commits[i], i);
}

TEST(TaskPoolTest, NoCancelEvaluatesEverythingAndRethrowsLowestError) {
  const std::size_t count = 12;
  const TaskPool pool(policy(4, 1, /*cancel_on_error=*/false));
  std::atomic<std::size_t> executed{0};
  std::vector<std::size_t> commits;
  try {
    pool.run_ordered(
        count,
        [&](std::size_t i) {
          executed.fetch_add(1);
          if (i == 3) throw Error("first failure");
          if (i == 7) throw Error("second failure");
        },
        [&](std::size_t i) { commits.push_back(i); });
    FAIL() << "expected the work error to propagate";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "first failure");  // lowest index wins
  }
  EXPECT_EQ(executed.load(), count);  // no cancellation: every task ran
  // Every survivor committed, in order, with the failed indices skipped.
  const std::vector<std::size_t> expected{0, 1, 2, 4, 5, 6, 8, 9, 10, 11};
  EXPECT_EQ(commits, expected);
}

TEST(TaskPoolTest, CommitExceptionCancelsAndRethrows) {
  const std::size_t count = 64;
  const TaskPool pool(policy(4));
  std::vector<std::size_t> commits;
  try {
    pool.run_ordered(
        count, [](std::size_t) {},
        [&](std::size_t i) {
          if (i == 2) throw Error("manifest write failed");
          commits.push_back(i);
        });
    FAIL() << "expected the commit error to propagate";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "manifest write failed");
  }
  EXPECT_EQ(commits, (std::vector<std::size_t>{0, 1}));
}

// Oversubscription stress: far more workers than cores, chunked claiming,
// every index evaluated exactly once and reduced in order.  This is the
// test the CI TSan job replays repeatedly.
TEST(TaskPoolStressTest, OversubscribedChunkedRunReducesDeterministically) {
  const std::size_t count = 500;
  const TaskPool pool(policy(16, 3));
  std::vector<std::size_t> results(count, 0);
  std::vector<std::atomic<int>> touched(count);
  for (auto& t : touched) t.store(0);

  std::size_t next_expected = 0;
  unsigned long long sum = 0;
  pool.run_ordered(
      count,
      [&](std::size_t i) {
        touched[i].fetch_add(1);
        results[i] = i * i;
      },
      [&](std::size_t i) {
        EXPECT_EQ(i, next_expected++);
        sum += results[i];
      });

  EXPECT_EQ(next_expected, count);
  unsigned long long want = 0;
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
    want += static_cast<unsigned long long>(i) * i;
  }
  EXPECT_EQ(sum, want);
}

}  // namespace
}  // namespace vstack::core
