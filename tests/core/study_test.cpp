#include "core/study.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::core {
namespace {

// Shared context at reduced grid resolution to keep test runtime low; the
// physics (current recycling, EM scaling) is resolution-insensitive.
const StudyContext& ctx() {
  static const StudyContext c = [] {
    StudyContext c = StudyContext::paper_defaults();
    c.base.grid_nx = c.base.grid_ny = 16;
    return c;
  }();
  return c;
}

TEST(StudyContextTest, PaperDefaultsSane) {
  const auto& c = ctx();
  EXPECT_EQ(c.layer_floorplan.core_count(), 16u);
  EXPECT_NEAR(c.black.current_exponent, 1.1, 1e-12);
  EXPECT_EQ(c.base.tsv.name, "Few TSV");
  EXPECT_EQ(c.base.vdd_pads_per_core, 32u);
}

TEST(StudyContextTest, IsoAreaPairing) {
  // Paper Sec. 5.2: one converter (high-density caps) is ~3% of core area,
  // so V-S with 8 conv/core + Few TSV is iso-area with regular + Dense TSV.
  const auto& c = ctx();
  const double conv_frac = sc::converter_area(c.base.converter,
                                              c.capacitor_technology) /
                           c.core_model.area();
  EXPECT_GT(conv_frac, 0.02);
  EXPECT_LT(conv_frac, 0.05);
  const double vs_area = c.vs_area_overhead(8, pdn::TsvConfig::few());
  const double reg_area = c.regular_area_overhead(pdn::TsvConfig::dense());
  EXPECT_NEAR(vs_area, reg_area, 0.08);  // same area class
}

TEST(StudyTest, StackedBeatsRegularTsvMttfAtEightLayers) {
  // Fig. 5a headline: >3x TSV EM-lifetime gap at 8 layers.
  const auto reg = evaluate_scenario(
      ctx(), make_regular(ctx(), 8, pdn::TsvConfig::few(), 0.25),
      std::vector<double>(8, 1.0));
  const auto vs = evaluate_scenario(
      ctx(), make_stacked(ctx(), 8, pdn::TsvConfig::few(), 8),
      std::vector<double>(8, 1.0));
  EXPECT_GT(vs.tsv_mttf / reg.tsv_mttf, 3.0);
}

TEST(StudyTest, TwoLayerTsvGapIsSmall) {
  // Fig. 5a: at 2 layers the two topologies' TSV lifetimes are close (the
  // paper reports regular slightly ahead; our finer pad-local crowding
  // model puts V-S slightly ahead -- see EXPERIMENTS.md).  Either way the
  // gap is small compared to the >3x separation at 8 layers.
  const auto reg = evaluate_scenario(
      ctx(), make_regular(ctx(), 2, pdn::TsvConfig::few(), 0.25),
      std::vector<double>(2, 1.0));
  const auto vs = evaluate_scenario(
      ctx(), make_stacked(ctx(), 2, pdn::TsvConfig::few(), 8),
      std::vector<double>(2, 1.0));
  const double ratio = vs.tsv_mttf / reg.tsv_mttf;
  EXPECT_GT(ratio, 1.0 / 2.5);
  EXPECT_LT(ratio, 2.5);
}

TEST(StudyTest, C4MttfIndependentOfLayersForStacked) {
  const auto vs2 = evaluate_scenario(
      ctx(), make_stacked(ctx(), 2, pdn::TsvConfig::few(), 8),
      std::vector<double>(2, 1.0));
  const auto vs8 = evaluate_scenario(
      ctx(), make_stacked(ctx(), 8, pdn::TsvConfig::few(), 8),
      std::vector<double>(8, 1.0));
  EXPECT_NEAR(vs8.c4_mttf / vs2.c4_mttf, 1.0, 0.05);
}

TEST(StudyTest, RegularC4MttfDegradesWithLayers) {
  const auto reg2 = evaluate_scenario(
      ctx(), make_regular(ctx(), 2, pdn::TsvConfig::few(), 0.25),
      std::vector<double>(2, 1.0));
  const auto reg8 = evaluate_scenario(
      ctx(), make_regular(ctx(), 8, pdn::TsvConfig::few(), 0.25),
      std::vector<double>(8, 1.0));
  EXPECT_LT(reg8.c4_mttf, 0.35 * reg2.c4_mttf);
}

TEST(StudyTest, StackedEfficiencyDecreasesWithImbalance) {
  const auto low = stacked_efficiency(ctx(), 8, 8, 0.1);
  const auto high = stacked_efficiency(ctx(), 8, 8, 0.9);
  EXPECT_GT(low.efficiency, high.efficiency);
  EXPECT_GT(low.efficiency, 0.80);
}

TEST(StudyTest, FewerConvertersMoreEfficientOpenLoop) {
  const auto two = stacked_efficiency(ctx(), 8, 2, 0.2);
  const auto eight = stacked_efficiency(ctx(), 8, 8, 0.2);
  EXPECT_GT(two.efficiency, eight.efficiency);
}

TEST(StudyTest, ConverterLimitDetectedAtHighImbalance) {
  const auto r = stacked_efficiency(ctx(), 8, 2, 1.0);
  EXPECT_FALSE(r.feasible);
  EXPECT_GT(r.max_converter_current, 0.1);
}

TEST(StudyTest, StackedBeatsRegularScEfficiency) {
  // Sec. 5.3: V-S converters only carry the differential current, so V-S
  // efficiency exceeds the regular-with-SC baseline.
  const auto vs = stacked_efficiency(ctx(), 8, 4, 0.4);
  const auto reg = regular_sc_efficiency(ctx(), 8, 4, 0.4);
  EXPECT_GT(vs.efficiency, reg.efficiency);
}

TEST(StudyTest, RegularScBaselineInMidEighties) {
  const auto reg = regular_sc_efficiency(ctx(), 8, 8, 0.0);
  EXPECT_GT(reg.efficiency, 0.75);
  EXPECT_LT(reg.efficiency, 0.92);
}

}  // namespace
}  // namespace vstack::core
