// Crash-safe transient campaign runner (core/campaign.h): plan/evaluate
// determinism against the DC Monte Carlo, JSONL checkpoint round-tripping,
// partial resume after truncation, and refusal of mismatched manifests.
#include "core/campaign.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "power/workload.h"
#include "telemetry/telemetry.h"

namespace vstack::core {
namespace {

const StudyContext& ctx() {
  static const StudyContext c = StudyContext::paper_defaults();
  return c;
}

pdn::StackupConfig stacked4() {
  auto cfg = make_stacked(ctx(), 4, pdn::TsvConfig::few(), 8);
  cfg.grid_nx = cfg.grid_ny = 8;
  return cfg;
}

std::vector<double> acts4() {
  return power::interleaved_layer_activities(4, 0.8);
}

CampaignOptions fast_options(std::uint64_t seed = 42) {
  CampaignOptions o;
  o.contingency.trials = 4;
  o.contingency.faults_per_trial = 2;
  o.contingency.converter_faults_per_trial = 8;
  o.contingency.seed = seed;
  o.ride_through.transient.time_step = 2e-9;
  o.ride_through.transient.duration = 200e-9;
  o.ride_through.supervisor.trip_fraction = 0.10;
  o.ride_through.supervisor.recovery_fraction = 0.08;
  o.ride_through.supervisor.sense_interval = 5e-9;
  o.ride_through.supervisor.detection_latency = 20e-9;
  o.ride_through.supervisor.action_dwell = 40e-9;
  o.ride_through.supervisor.watchdog_timeout = 120e-9;
  o.fault_time = 50e-9;
  // Wall-clock budgets couple results to machine speed: an oversubscribed
  // parallel run (or a TSan build) can trip a timeout serial would not and
  // diverge via the relaxed-tolerance retry.  Determinism tests must not
  // depend on how fast the host is.
  o.scenario_timeout_s = 0.0;
  return o;
}

void expect_scenarios_identical(const CampaignReport& a,
                                const CampaignReport& b) {
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (std::size_t i = 0; i < a.scenarios.size(); ++i) {
    const auto& x = a.scenarios[i];
    const auto& y = b.scenarios[i];
    EXPECT_EQ(x.index, y.index);
    EXPECT_EQ(x.label, y.label);
    EXPECT_EQ(x.scenario_hash, y.scenario_hash);
    EXPECT_EQ(x.outcome, y.outcome);
    EXPECT_EQ(x.completed, y.completed);
    EXPECT_EQ(x.timed_out, y.timed_out);
    // Bit-identical doubles: the manifest round-trips through %.17g.
    EXPECT_EQ(x.detected_at, y.detected_at) << "scenario " << i;
    EXPECT_EQ(x.recovered_at, y.recovered_at) << "scenario " << i;
    EXPECT_EQ(x.worst_droop, y.worst_droop) << "scenario " << i;
    EXPECT_EQ(x.final_droop, y.final_droop) << "scenario " << i;
    EXPECT_EQ(x.action_count, y.action_count);
    EXPECT_EQ(x.shutdown_count, y.shutdown_count);
  }
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.worst_droop, b.worst_droop);
  EXPECT_EQ(a.config_hash, b.config_hash);
}

TEST(CampaignPlanTest, PlanMatchesRunMonteCarloFaultSets) {
  const ContingencyEngine engine(ctx(), stacked4());
  ContingencyOptions opts;
  opts.trials = 5;
  opts.faults_per_trial = 2;
  opts.converter_faults_per_trial = 2;
  opts.leakage_faults_per_trial = 1;
  opts.seed = 7;

  const auto plan = engine.plan_monte_carlo(acts4(), opts);
  const auto report = engine.run_monte_carlo(acts4(), opts);
  ASSERT_EQ(plan.size(), 5u);
  ASSERT_EQ(report.cases.size(), 5u);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].index, i);
    EXPECT_EQ(plan[i].label, report.cases[i].label);
    const auto& pf = plan[i].faults.faults();
    const auto& rf = report.cases[i].faults.faults();
    ASSERT_EQ(pf.size(), rf.size()) << "trial " << i;
    for (std::size_t j = 0; j < pf.size(); ++j) {
      EXPECT_EQ(static_cast<int>(pf[j].kind), static_cast<int>(rf[j].kind));
      EXPECT_EQ(pf[j].index, rf[j].index);
      EXPECT_EQ(pf[j].units, rf[j].units);
      EXPECT_EQ(pf[j].severity, rf[j].severity);
    }
  }
}

TEST(CampaignRunnerTest, ClassifiesEveryScenario) {
  const CampaignRunner runner(ctx(), stacked4());
  const auto report = runner.run(acts4(), fast_options());
  ASSERT_EQ(report.scenarios.size(), 4u);
  EXPECT_EQ(report.evaluated, 4u);
  EXPECT_EQ(report.resumed, 0u);
  EXPECT_EQ(report.recovered + report.degraded + report.lost, 4u);
  EXPECT_NE(report.config_hash, 0u);
  for (const auto& s : report.scenarios) {
    EXPECT_FALSE(s.label.empty());
    EXPECT_NE(s.scenario_hash, 0u);
    EXPECT_GE(s.attempts, 1u);
    EXPECT_FALSE(s.from_checkpoint);
  }
  EXPECT_FALSE(report.summary().empty());
}

TEST(CampaignRunnerTest, ManifestResumeIsBitIdentical) {
  const std::string manifest =
      ::testing::TempDir() + "/campaign_resume.jsonl";
  std::remove(manifest.c_str());

  CampaignOptions opts = fast_options();
  opts.manifest_path = manifest;
  const CampaignRunner runner(ctx(), stacked4());

  const auto full = runner.run(acts4(), opts);
  ASSERT_EQ(full.evaluated, 4u);

  // Second run with the same manifest: everything restores, nothing is
  // simulated, and the aggregates are bit-identical.
  const auto resumed = runner.run(acts4(), opts);
  EXPECT_EQ(resumed.resumed, 4u);
  EXPECT_EQ(resumed.evaluated, 0u);
  for (const auto& s : resumed.scenarios) EXPECT_TRUE(s.from_checkpoint);
  expect_scenarios_identical(full, resumed);
}

TEST(CampaignRunnerTest, TruncatedManifestResumesTheRemainder) {
  const std::string manifest =
      ::testing::TempDir() + "/campaign_truncated.jsonl";
  std::remove(manifest.c_str());

  CampaignOptions opts = fast_options();
  opts.manifest_path = manifest;
  const CampaignRunner runner(ctx(), stacked4());
  const auto full = runner.run(acts4(), opts);
  ASSERT_EQ(full.evaluated, 4u);

  // Simulate a crash after two scenarios: keep the header + 2 lines plus a
  // torn (half-written) third line, which the loader must skip.
  std::vector<std::string> lines;
  {
    std::ifstream in(manifest);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 5u);  // header + 4 scenarios
  {
    std::ofstream out(manifest, std::ios::trunc);
    out << lines[0] << "\n" << lines[1] << "\n" << lines[2] << "\n";
    out << lines[3].substr(0, lines[3].size() / 2);  // torn write
  }

  const auto resumed = runner.run(acts4(), opts);
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.evaluated, 2u);
  expect_scenarios_identical(full, resumed);
}

TEST(CampaignRunnerTest, TornTailManifestIsRepairedOnResume) {
  const std::string manifest =
      ::testing::TempDir() + "/campaign_torn_repair.jsonl";
  std::remove(manifest.c_str());

  CampaignOptions opts = fast_options();
  opts.manifest_path = manifest;
  const CampaignRunner runner(ctx(), stacked4());
  const auto full = runner.run(acts4(), opts);
  ASSERT_EQ(full.evaluated, 4u);

  std::vector<std::string> lines;
  {
    std::ifstream in(manifest);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 5u);
  {
    std::ofstream out(manifest, std::ios::trunc);
    out << lines[0] << "\n" << lines[1] << "\n" << lines[2] << "\n";
    out << lines[3].substr(0, lines[3].size() / 2);  // kill -9 mid-append
  }

  // The resume must terminate the fragment BEFORE appending: otherwise its
  // first committed scenario concatenates onto the torn line, producing
  // garbage and losing that record -- which the third run would expose as
  // a re-evaluation.
  const auto resumed = runner.run(acts4(), opts);
  EXPECT_EQ(resumed.resumed, 2u);
  EXPECT_EQ(resumed.evaluated, 2u);
  expect_scenarios_identical(full, resumed);

  const auto third = runner.run(acts4(), opts);
  EXPECT_EQ(third.resumed, 4u);
  EXPECT_EQ(third.evaluated, 0u);
  expect_scenarios_identical(full, third);
}

TEST(CampaignRunnerTest, MismatchedManifestIsRefused) {
  const std::string manifest =
      ::testing::TempDir() + "/campaign_mismatch.jsonl";
  std::remove(manifest.c_str());

  CampaignOptions opts = fast_options(/*seed=*/42);
  opts.manifest_path = manifest;
  const CampaignRunner runner(ctx(), stacked4());
  (void)runner.run(acts4(), opts);

  // A different seed is a different campaign: refusing beats silently
  // mixing two campaigns' scenarios in one manifest.
  CampaignOptions other = fast_options(/*seed=*/43);
  other.manifest_path = manifest;
  EXPECT_THROW(runner.run(acts4(), other), Error);
}

TEST(CampaignOptionsTest, ValidateRejectsBrokenShapes) {
  CampaignOptions o = fast_options();
  o.fault_time = o.ride_through.transient.duration;  // strikes after the end
  EXPECT_THROW(o.validate(), Error);

  o = fast_options();
  o.max_retries = 100;  // runaway retry budget
  EXPECT_THROW(o.validate(), Error);

  o = fast_options();
  o.retry_tolerance_relax = 0.5;  // would TIGHTEN tolerances on retry
  EXPECT_THROW(o.validate(), Error);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

/// Blank out every "wall_seconds" value: it is the one measured (therefore
/// run-dependent) manifest field; everything else must match byte for byte.
std::string mask_wall_seconds(const std::string& text) {
  const std::string key = "\"wall_seconds\":";
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  for (;;) {
    const std::size_t hit = text.find(key, pos);
    if (hit == std::string::npos) {
      out.append(text, pos, std::string::npos);
      return out;
    }
    const std::size_t start = hit + key.size();
    std::size_t end = start;
    while (end < text.size() && text[end] != ',' && text[end] != '}') ++end;
    out.append(text, pos, start - pos);
    out += 'X';
    pos = end;
  }
}

// The ordered-reduction guarantee, end to end: a jobs=4 campaign produces
// the same scenarios, the same summary() text, and (wall_seconds aside)
// the same manifest BYTES as jobs=1.
TEST(CampaignParallelTest, ParallelRunMatchesSerialBitIdentical) {
  const std::string serial_manifest =
      ::testing::TempDir() + "/campaign_par_serial.jsonl";
  const std::string parallel_manifest =
      ::testing::TempDir() + "/campaign_par_parallel.jsonl";
  std::remove(serial_manifest.c_str());
  std::remove(parallel_manifest.c_str());

  const CampaignRunner runner(ctx(), stacked4());

  CampaignOptions serial_opts = fast_options();
  serial_opts.manifest_path = serial_manifest;
  const auto serial = runner.run(acts4(), serial_opts);

  CampaignOptions parallel_opts = fast_options();
  parallel_opts.manifest_path = parallel_manifest;
  parallel_opts.execution.jobs = 4;
  const auto parallel = runner.run(acts4(), parallel_opts);

  EXPECT_EQ(parallel.evaluated, 4u);
  expect_scenarios_identical(serial, parallel);
  EXPECT_EQ(serial.summary(), parallel.summary());
  EXPECT_EQ(mask_wall_seconds(read_file(serial_manifest)),
            mask_wall_seconds(read_file(parallel_manifest)));
}

// Telemetry is observation-only: a campaign run with the span tracer live
// writes the same manifest BYTES (wall_seconds aside) as one with tracing
// off.  The compile-time half of this guarantee -- a -DVSTACK_TELEMETRY=OFF
// build matching an ON build -- is exercised by the telemetry-off CI job.
TEST(CampaignParallelTest, TracingDoesNotPerturbManifest) {
  const std::string quiet_manifest =
      ::testing::TempDir() + "/campaign_tel_quiet.jsonl";
  const std::string traced_manifest =
      ::testing::TempDir() + "/campaign_tel_traced.jsonl";
  std::remove(quiet_manifest.c_str());
  std::remove(traced_manifest.c_str());

  const CampaignRunner runner(ctx(), stacked4());

  telemetry::set_tracing_enabled(false);
  CampaignOptions quiet_opts = fast_options();
  quiet_opts.manifest_path = quiet_manifest;
  quiet_opts.execution.jobs = 4;
  const auto quiet = runner.run(acts4(), quiet_opts);

  telemetry::set_tracing_enabled(true);
  CampaignOptions traced_opts = fast_options();
  traced_opts.manifest_path = traced_manifest;
  traced_opts.execution.jobs = 4;
  const auto traced = runner.run(acts4(), traced_opts);
  const auto events = telemetry::collect_trace();
  telemetry::set_tracing_enabled(false);

  expect_scenarios_identical(quiet, traced);
  EXPECT_EQ(mask_wall_seconds(read_file(quiet_manifest)),
            mask_wall_seconds(read_file(traced_manifest)));
#if VSTACK_TELEMETRY_ENABLED
  // The traced run must actually have recorded campaign spans, or the
  // comparison above is vacuous.
  bool saw_campaign_span = false;
  for (const auto& e : events) {
    if (e.name == "core.campaign.scenario") saw_campaign_span = true;
  }
  EXPECT_TRUE(saw_campaign_span);
#else
  EXPECT_TRUE(events.empty());
#endif
}

// Manifests are interchangeable across policies in BOTH directions: the
// prefix property holds no matter which mode wrote the file.
TEST(CampaignParallelTest, SerialManifestResumesUnderParallelAndViceVersa) {
  const CampaignRunner runner(ctx(), stacked4());

  const auto truncate_to_two = [](const std::string& manifest) {
    std::vector<std::string> lines;
    std::ifstream in(manifest);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 5u);  // header + 4 scenarios
    std::ofstream out(manifest, std::ios::trunc);
    out << lines[0] << "\n" << lines[1] << "\n" << lines[2] << "\n";
  };

  for (const bool serial_writes : {true, false}) {
    const std::string manifest = ::testing::TempDir() +
                                 "/campaign_cross_resume_" +
                                 (serial_writes ? "s2p" : "p2s") + ".jsonl";
    std::remove(manifest.c_str());

    CampaignOptions writer = fast_options();
    writer.manifest_path = manifest;
    writer.execution.jobs = serial_writes ? 1 : 4;
    const auto full = runner.run(acts4(), writer);
    ASSERT_EQ(full.evaluated, 4u);

    truncate_to_two(manifest);

    CampaignOptions resumer = writer;
    resumer.execution.jobs = serial_writes ? 4 : 1;
    const auto resumed = runner.run(acts4(), resumer);
    EXPECT_EQ(resumed.resumed, 2u) << (serial_writes ? "s2p" : "p2s");
    EXPECT_EQ(resumed.evaluated, 2u);
    expect_scenarios_identical(full, resumed);
  }
}

TEST(CampaignCompareTest, SurvivabilityTableCoversBothTopologies) {
  CampaignOptions opts = fast_options();
  opts.contingency.trials = 2;
  auto regular = make_regular(ctx(), 4, pdn::TsvConfig::few(), 0.25);
  regular.grid_nx = regular.grid_ny = 8;
  // Regular PDNs have no converters to lose; keep the conductor faults.
  const auto table =
      compare_survivability(ctx(), stacked4(), regular, acts4(), opts);
  ASSERT_EQ(table.rows.size(), 2u);
  for (const auto& row : table.rows) {
    EXPECT_EQ(row.recovered + row.degraded + row.lost, 2u);
  }
  const std::string text = table.format();
  EXPECT_NE(text.find("stacked"), std::string::npos);
  EXPECT_NE(text.find("regular"), std::string::npos);
}

}  // namespace
}  // namespace vstack::core
