// Deadline propagation through the scenario runners (core/campaign.h,
// core/contingency.h): a fired token truncates to a committed contiguous
// prefix, manifests stay resumable and byte-stable, and resuming with an
// unexpired deadline reproduces the uninterrupted run exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/contingency.h"
#include "power/workload.h"

namespace vstack::core {
namespace {

const StudyContext& ctx() {
  static const StudyContext c = StudyContext::paper_defaults();
  return c;
}

pdn::StackupConfig stacked4() {
  auto cfg = make_stacked(ctx(), 4, pdn::TsvConfig::few(), 8);
  cfg.grid_nx = cfg.grid_ny = 8;
  return cfg;
}

std::vector<double> acts4() {
  return power::interleaved_layer_activities(4, 0.8);
}

CampaignOptions fast_options() {
  CampaignOptions o;
  o.contingency.trials = 4;
  o.contingency.faults_per_trial = 2;
  o.contingency.converter_faults_per_trial = 8;
  o.contingency.seed = 42;
  o.ride_through.transient.time_step = 2e-9;
  o.ride_through.transient.duration = 200e-9;
  o.ride_through.supervisor.trip_fraction = 0.10;
  o.ride_through.supervisor.recovery_fraction = 0.08;
  o.ride_through.supervisor.sense_interval = 5e-9;
  o.ride_through.supervisor.detection_latency = 20e-9;
  o.ride_through.supervisor.action_dwell = 40e-9;
  o.ride_through.supervisor.watchdog_timeout = 120e-9;
  o.fault_time = 50e-9;
  o.scenario_timeout_s = 0.0;  // keep results machine-speed independent
  return o;
}

std::string manifest_path(const std::string& tag) {
  return testing::TempDir() + "vstack_deadline_" + tag + ".jsonl";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

/// Blank out the one legitimately run-dependent manifest field: a scenario's
/// wall_seconds measures real time and differs between otherwise identical
/// runs.  Everything else must match to the byte.
std::string mask_wall_seconds(std::string s) {
  const std::string key = "\"wall_seconds\":";
  std::size_t pos = 0;
  while ((pos = s.find(key, pos)) != std::string::npos) {
    const std::size_t begin = pos + key.size();
    const std::size_t end = s.find_first_of(",}", begin);
    s.replace(begin, end - begin, "*");
    pos = begin;
  }
  return s;
}

TEST(CampaignDeadline, PreExpiredTokenWritesHeaderOnlyManifest) {
  const CampaignRunner runner(ctx(), stacked4());
  std::string manifests[2];
  for (int pass = 0; pass < 2; ++pass) {
    CampaignOptions o = fast_options();
    o.manifest_path = manifest_path(pass == 0 ? "serial" : "parallel");
    std::remove(o.manifest_path.c_str());
    o.execution.jobs = pass == 0 ? 1 : 4;
    o.execution.deadline = Deadline::after(0.0);
    const CampaignReport report = runner.run(acts4(), o);
    EXPECT_TRUE(report.cancelled);
    EXPECT_EQ(report.planned, 4u);
    EXPECT_TRUE(report.scenarios.empty());
    EXPECT_NE(report.summary().find("CANCELLED"), std::string::npos);
    manifests[pass] = slurp(o.manifest_path);
    std::remove(o.manifest_path.c_str());
  }
  // Header-only, and byte-identical between serial and parallel.
  EXPECT_EQ(manifests[0], manifests[1]);
  EXPECT_EQ(manifests[0].find('\n'), manifests[0].size() - 1)
      << "expected exactly the header line, got:\n"
      << manifests[0];
}

TEST(CampaignDeadline, ResumeAfterInterruptionMatchesUninterrupted) {
  const CampaignRunner runner(ctx(), stacked4());

  // Reference: uninterrupted run with a manifest.
  CampaignOptions ref = fast_options();
  ref.manifest_path = manifest_path("reference");
  std::remove(ref.manifest_path.c_str());
  const CampaignReport expected = runner.run(acts4(), ref);
  ASSERT_FALSE(expected.cancelled);
  const std::string expected_bytes = mask_wall_seconds(slurp(ref.manifest_path));
  std::remove(ref.manifest_path.c_str());

  // Interrupted run: a cancellable token fired immediately leaves a
  // resumable (possibly header-only) prefix; a short wall-clock budget
  // exercises mid-run expiry when scheduling allows.  Either way the
  // invariant is the same: lines = header + one per committed scenario.
  CampaignOptions cut = fast_options();
  cut.manifest_path = manifest_path("resume");
  std::remove(cut.manifest_path.c_str());
  cut.execution.deadline = Deadline::after(0.05);
  const CampaignReport partial = runner.run(acts4(), cut);
  EXPECT_EQ(partial.cancelled, partial.scenarios.size() < partial.planned);
  const std::string cut_bytes = mask_wall_seconds(slurp(cut.manifest_path));
  const std::size_t lines =
      static_cast<std::size_t>(std::count(cut_bytes.begin(), cut_bytes.end(),
                                          '\n'));
  EXPECT_EQ(lines, 1 + partial.scenarios.size());
  // The committed prefix is the same bytes the uninterrupted manifest
  // starts with.
  EXPECT_EQ(expected_bytes.compare(0, cut_bytes.size(), cut_bytes), 0);

  // Resume with an unexpired deadline: finishes the campaign and matches
  // the uninterrupted run bit for bit.
  CampaignOptions finish = fast_options();
  finish.manifest_path = cut.manifest_path;
  const CampaignReport resumed = runner.run(acts4(), finish);
  EXPECT_FALSE(resumed.cancelled);
  ASSERT_EQ(resumed.scenarios.size(), expected.scenarios.size());
  for (std::size_t i = 0; i < resumed.scenarios.size(); ++i) {
    EXPECT_EQ(resumed.scenarios[i].scenario_hash,
              expected.scenarios[i].scenario_hash);
    EXPECT_EQ(resumed.scenarios[i].outcome, expected.scenarios[i].outcome);
    EXPECT_EQ(resumed.scenarios[i].worst_droop,
              expected.scenarios[i].worst_droop);
    EXPECT_EQ(resumed.scenarios[i].final_droop,
              expected.scenarios[i].final_droop);
  }
  EXPECT_EQ(resumed.worst_droop, expected.worst_droop);
  EXPECT_EQ(mask_wall_seconds(slurp(finish.manifest_path)), expected_bytes);
  std::remove(finish.manifest_path.c_str());
}

TEST(ContingencyDeadline, PreExpiredTokenCancelsBothModes) {
  const ContingencyEngine engine(ctx(), stacked4());
  ContingencyOptions o;
  o.trials = 4;
  o.faults_per_trial = 2;
  o.seed = 11;
  o.execution.deadline = Deadline::after(0.0);

  const ContingencyReport mc = engine.run_monte_carlo(acts4(), o);
  EXPECT_TRUE(mc.cancelled);
  EXPECT_GT(mc.planned, 0u);
  EXPECT_TRUE(mc.cases.empty());

  const ContingencyReport n1 = engine.run_n_minus_1(acts4(), o);
  EXPECT_TRUE(n1.cancelled);
  EXPECT_GT(n1.planned, 0u);
  EXPECT_TRUE(n1.cases.empty());
}

TEST(ContingencyDeadline, UnlimitedTokenReportsNotCancelled) {
  const ContingencyEngine engine(ctx(), stacked4());
  ContingencyOptions o;
  o.trials = 2;
  o.faults_per_trial = 1;
  o.seed = 11;
  const ContingencyReport report = engine.run_monte_carlo(acts4(), o);
  EXPECT_FALSE(report.cancelled);
  EXPECT_EQ(report.cases.size(), report.planned);
}

}  // namespace
}  // namespace vstack::core
