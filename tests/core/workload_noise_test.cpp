#include "core/workload_noise.h"

#include "power/workload.h"

#include <gtest/gtest.h>

namespace vstack::core {
namespace {

const StudyContext& ctx() {
  static const StudyContext c = [] {
    StudyContext c = StudyContext::paper_defaults();
    c.base.grid_nx = c.base.grid_ny = 8;  // many solves per test
    return c;
  }();
  return c;
}

TEST(WorkloadNoiseTest, DistributionIsOrdered) {
  const auto cfg = make_stacked(ctx(), 4, ctx().base.tsv, 8);
  const auto r = sample_noise_distribution(
      ctx(), cfg, SchedulingPolicy::RandomMix, 30, 7);
  EXPECT_EQ(r.samples, 30u);
  EXPECT_LE(r.noise.min, r.noise.median);
  EXPECT_LE(r.noise.median, r.noise.max);
  EXPECT_GT(r.mean_noise, 0.0);
  EXPECT_LT(r.mean_noise, 0.10);
}

TEST(WorkloadNoiseTest, StackSchedulingBeatsRandomMix) {
  // The paper's Sec. 5.2 scheduling conclusion, as a distribution-level
  // statement.
  const auto cfg = make_stacked(ctx(), 8, ctx().base.tsv, 8);
  const auto same = sample_noise_distribution(
      ctx(), cfg, SchedulingPolicy::SameAppPerStack, 25, 11);
  const auto mixed = sample_noise_distribution(
      ctx(), cfg, SchedulingPolicy::RandomMix, 25, 11);
  EXPECT_LT(same.mean_noise, mixed.mean_noise);
}

TEST(WorkloadNoiseTest, DeterministicForSeed) {
  const auto cfg = make_stacked(ctx(), 2, ctx().base.tsv, 8);
  const auto a = sample_noise_distribution(
      ctx(), cfg, SchedulingPolicy::RandomMix, 10, 42);
  const auto b = sample_noise_distribution(
      ctx(), cfg, SchedulingPolicy::RandomMix, 10, 42);
  EXPECT_DOUBLE_EQ(a.mean_noise, b.mean_noise);
  EXPECT_DOUBLE_EQ(a.noise.max, b.noise.max);
}

TEST(WorkloadNoiseTest, AverageCaseBelowInterleavedWorstCase) {
  // Real workload draws are far gentler than the adversarial interleaved
  // pattern at the same mean imbalance.
  const auto cfg = make_stacked(ctx(), 8, ctx().base.tsv, 8);
  const auto avg = sample_noise_distribution(
      ctx(), cfg, SchedulingPolicy::RandomMix, 25, 3);
  pdn::PdnModel model(cfg, ctx().layer_floorplan);
  const auto worst = model.solve_activities(
      ctx().core_model, power::interleaved_layer_activities(8, 0.65));
  EXPECT_LT(avg.noise.max, worst.max_node_deviation_fraction);
}

}  // namespace
}  // namespace vstack::core
