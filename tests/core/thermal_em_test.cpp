#include <gtest/gtest.h>

#include "core/study.h"

namespace vstack::core {
namespace {

const StudyContext& ctx() {
  static const StudyContext c = [] {
    StudyContext c = StudyContext::paper_defaults();
    c.base.grid_nx = c.base.grid_ny = 16;
    return c;
  }();
  return c;
}

TEST(ThermalEmTest, ProducesTemperatureField) {
  const auto r = evaluate_scenario_with_thermal(
      ctx(), make_stacked(ctx(), 4, ctx().base.tsv, 8),
      std::vector<double>(4, 1.0));
  ASSERT_EQ(r.layer_mean_celsius.size(), 4u);
  for (double t : r.layer_mean_celsius) {
    EXPECT_GT(t, 45.0);   // above ambient
    EXPECT_LT(t, 120.0);  // physically sane
  }
  EXPECT_GT(r.thermal.max_celsius, r.layer_mean_celsius[3] - 1.0);
}

TEST(ThermalEmTest, BottomLayersRunHotter) {
  // Heat exits through the sink above the top layer.
  const auto r = evaluate_scenario_with_thermal(
      ctx(), make_stacked(ctx(), 8, ctx().base.tsv, 8),
      std::vector<double>(8, 1.0));
  EXPECT_GT(r.layer_mean_celsius.front(), r.layer_mean_celsius.back());
}

TEST(ThermalEmTest, CoolStacksGainLifetime) {
  // A 2-layer stack runs well below the 105 C isothermal stress reference,
  // so thermal coupling LENGTHENS its lifetime.
  const auto r = evaluate_scenario_with_thermal(
      ctx(), make_stacked(ctx(), 2, ctx().base.tsv, 8),
      std::vector<double>(2, 1.0));
  EXPECT_GT(r.tsv_mttf_thermal, r.isothermal.tsv_mttf);
  EXPECT_GT(r.c4_mttf_thermal, r.isothermal.c4_mttf);
}

TEST(ThermalEmTest, DeepStacksLoseRelativeToShallow) {
  // Thermal coupling widens the 2-layer vs 8-layer lifetime gap: the
  // 8-layer stack runs hotter everywhere.
  const auto r2 = evaluate_scenario_with_thermal(
      ctx(), make_regular(ctx(), 2, ctx().base.tsv, 0.25),
      std::vector<double>(2, 1.0));
  const auto r8 = evaluate_scenario_with_thermal(
      ctx(), make_regular(ctx(), 8, ctx().base.tsv, 0.25),
      std::vector<double>(8, 1.0));
  const double iso_ratio = r8.isothermal.tsv_mttf / r2.isothermal.tsv_mttf;
  const double thermal_ratio = r8.tsv_mttf_thermal / r2.tsv_mttf_thermal;
  EXPECT_LT(thermal_ratio, iso_ratio);
}

TEST(ThermalEmTest, StackedKeepsAdvantageUnderCoupling) {
  const auto reg = evaluate_scenario_with_thermal(
      ctx(), make_regular(ctx(), 8, ctx().base.tsv, 0.25),
      std::vector<double>(8, 1.0));
  const auto vs = evaluate_scenario_with_thermal(
      ctx(), make_stacked(ctx(), 8, ctx().base.tsv, 8),
      std::vector<double>(8, 1.0));
  EXPECT_GT(vs.tsv_mttf_thermal / reg.tsv_mttf_thermal, 3.0);
}

TEST(ThermalEmTest, InterfaceTagsConsistent) {
  const auto r = evaluate_scenario_with_thermal(
      ctx(), make_stacked(ctx(), 4, ctx().base.tsv, 8),
      std::vector<double>(4, 1.0));
  const auto& sol = r.isothermal.solution;
  ASSERT_EQ(sol.tsv_interface_of.size(), sol.tsv_currents.size());
  for (unsigned i : sol.tsv_interface_of) {
    EXPECT_LT(i, 3u);  // interfaces 0..layers-2
  }
}

}  // namespace
}  // namespace vstack::core
