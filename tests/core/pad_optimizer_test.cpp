#include "core/pad_optimizer.h"

#include <gtest/gtest.h>

namespace vstack::core {
namespace {

const StudyContext& ctx() {
  static const StudyContext c = [] {
    StudyContext c = StudyContext::paper_defaults();
    c.base.grid_nx = c.base.grid_ny = 16;
    return c;
  }();
  return c;
}

TEST(PadOptimizerTest, TotalSitesMatchPitch) {
  // 6.64 mm die at 200 um pitch: 33 x 33 sites.
  EXPECT_EQ(total_pad_sites(ctx()), 33u * 33u);
}

TEST(PadOptimizerTest, LooseRequirementNeedsFewPads) {
  PadRequirement loose;
  loose.min_c4_mttf = 0.0;
  loose.max_noise_fraction = 0.5;
  const auto r = minimize_regular_power_pads(ctx(), 2, loose);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.knob, 0.05 + 1e-12);
  EXPECT_EQ(r.power_pads + r.io_pads, total_pad_sites(ctx()));
}

TEST(PadOptimizerTest, TighterLifetimeNeedsMorePads) {
  const auto ref = evaluate_scenario(
      ctx(), make_regular(ctx(), 2, ctx().base.tsv, 1.0),
      std::vector<double>(2, 1.0));
  PadRequirement loose, tight;
  loose.min_c4_mttf = ref.c4_mttf / 100.0;
  tight.min_c4_mttf = ref.c4_mttf / 1.5;
  const auto r_loose = minimize_regular_power_pads(ctx(), 2, loose);
  const auto r_tight = minimize_regular_power_pads(ctx(), 2, tight);
  ASSERT_TRUE(r_loose.feasible);
  ASSERT_TRUE(r_tight.feasible);
  EXPECT_GE(r_tight.power_pads, r_loose.power_pads);
}

TEST(PadOptimizerTest, RegularBecomesInfeasibleAtDepth) {
  // Demand the 2-layer V-S C4 lifetime: the deep regular PDN cannot reach
  // it with any allocation (the paper's "not feasible" conclusion).
  const auto reference = evaluate_scenario(
      ctx(), make_stacked(ctx(), 2, ctx().base.tsv, 8),
      std::vector<double>(2, 1.0));
  PadRequirement req;
  req.min_c4_mttf = reference.c4_mttf;
  req.max_noise_fraction = 0.10;
  const auto reg = minimize_regular_power_pads(ctx(), 8, req);
  EXPECT_FALSE(reg.feasible);
  const auto vs = minimize_stacked_power_pads(ctx(), 8, req);
  EXPECT_TRUE(vs.feasible);
}

TEST(PadOptimizerTest, StackedNeedsFewerPowerPadsThanRegular) {
  const auto reference = evaluate_scenario(
      ctx(), make_stacked(ctx(), 2, ctx().base.tsv, 8),
      std::vector<double>(2, 1.0));
  PadRequirement req;
  req.min_c4_mttf = reference.c4_mttf / 4.0;
  req.max_noise_fraction = 0.04;
  const auto reg = minimize_regular_power_pads(ctx(), 4, req);
  const auto vs = minimize_stacked_power_pads(ctx(), 4, req);
  ASSERT_TRUE(vs.feasible);
  if (reg.feasible) {
    EXPECT_LT(vs.power_pads, reg.power_pads);
  }
  EXPECT_GT(vs.io_pads, total_pad_sites(ctx()) / 2);
}

TEST(PadOptimizerTest, ResultAccountingConsistent) {
  PadRequirement req;
  req.min_c4_mttf = 0.0;
  req.max_noise_fraction = 0.5;
  const auto vs = minimize_stacked_power_pads(ctx(), 2, req);
  ASSERT_TRUE(vs.feasible);
  EXPECT_EQ(vs.power_pads,
            2 * static_cast<std::size_t>(vs.knob) * 16u);
  EXPECT_EQ(vs.power_pads + vs.io_pads, total_pad_sites(ctx()));
  EXPECT_GT(vs.achieved_c4_mttf, 0.0);
}

}  // namespace
}  // namespace vstack::core
