// Deadline propagation through TaskPool (core/task_pool.h): run_ordered's
// committed-prefix contract when the policy deadline fires mid-run.
#include "core/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace vstack::core {
namespace {

TEST(TaskPoolDeadline, UnlimitedDeadlineCommitsEverything) {
  ExecutionPolicy policy;
  policy.jobs = 4;
  std::vector<int> out(100, 0);
  std::vector<std::size_t> committed;
  const std::size_t n = TaskPool(policy).run_ordered(
      100, [&](std::size_t i) { out[i] = static_cast<int>(i) + 1; },
      [&](std::size_t i) { committed.push_back(i); });
  EXPECT_EQ(n, 100u);
  ASSERT_EQ(committed.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(committed[i], i);
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

TEST(TaskPoolDeadline, PreExpiredDeadlineCommitsNothing) {
  for (const std::size_t jobs : {1u, 4u}) {
    ExecutionPolicy policy;
    policy.jobs = jobs;
    policy.deadline = Deadline::after(0.0);
    std::size_t worked = 0;
    const std::size_t n = TaskPool(policy).run_ordered(
        16, [&](std::size_t) { ++worked; }, [](std::size_t) {});
    EXPECT_EQ(n, 0u) << "jobs " << jobs;
    EXPECT_EQ(worked, 0u) << "jobs " << jobs;
  }
}

TEST(TaskPoolDeadline, SerialCancellationKeepsExactPrefix) {
  // Serial runs work in index order, so cancelling inside task 2 leaves
  // exactly tasks 0..2 committed: the check happens before each task.
  const Deadline token = Deadline::cancellable();
  ExecutionPolicy policy;
  policy.jobs = 1;
  policy.deadline = token;
  std::vector<std::size_t> committed;
  const std::size_t n = TaskPool(policy).run_ordered(
      10, [&](std::size_t i) {
        if (i == 2) token.cancel();
      },
      [&](std::size_t i) { committed.push_back(i); });
  EXPECT_EQ(n, 3u);
  ASSERT_EQ(committed.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(committed[i], i);
}

TEST(TaskPoolDeadline, ParallelCancellationCommitsContiguousPrefix) {
  // The exact prefix length depends on scheduling; the CONTRACT is that
  // whatever committed is a contiguous in-order prefix and nothing past
  // the cancellation keeps getting claimed.
  const Deadline token = Deadline::cancellable();
  ExecutionPolicy policy;
  policy.jobs = 4;
  policy.deadline = token;
  std::atomic<std::size_t> worked{0};
  std::vector<std::size_t> committed;
  const std::size_t n = TaskPool(policy).run_ordered(
      64, [&](std::size_t i) {
        worked.fetch_add(1, std::memory_order_relaxed);
        if (i == 5) token.cancel();
      },
      [&](std::size_t i) { committed.push_back(i); });
  EXPECT_LT(n, 64u);
  ASSERT_EQ(committed.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(committed[i], i);
  EXPECT_LE(worked.load(), 64u);
}

TEST(TaskPoolDeadline, ExpiryIsNotAnError) {
  ExecutionPolicy policy;
  policy.deadline = Deadline::after(0.0);
  EXPECT_NO_THROW(
      TaskPool(policy).run_ordered(4, [](std::size_t) {}, [](std::size_t) {}));
}

}  // namespace
}  // namespace vstack::core
