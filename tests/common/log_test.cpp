#include "common/log.h"

#include <gtest/gtest.h>

namespace vstack {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Warn); }
};

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST_F(LogTest, BelowThresholdIsDropped) {
  set_log_level(LogLevel::Error);
  // Captures stderr via gtest's capture facility.
  ::testing::internal::CaptureStderr();
  VS_LOG_WARN("should not appear");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LogTest, AtThresholdIsEmitted) {
  set_log_level(LogLevel::Info);
  ::testing::internal::CaptureStderr();
  VS_LOG_INFO("hello " << 42);
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("hello 42"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::Off);
  ::testing::internal::CaptureStderr();
  VS_LOG_ERROR("even errors");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace vstack
