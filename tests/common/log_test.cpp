#include "common/log.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace vstack {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Warn); }
};

TEST_F(LogTest, LevelRoundTrip) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST_F(LogTest, BelowThresholdIsDropped) {
  set_log_level(LogLevel::Error);
  // Captures stderr via gtest's capture facility.
  ::testing::internal::CaptureStderr();
  VS_LOG_WARN("should not appear");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LogTest, AtThresholdIsEmitted) {
  set_log_level(LogLevel::Info);
  ::testing::internal::CaptureStderr();
  VS_LOG_INFO("hello " << 42);
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("hello 42"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::Off);
  ::testing::internal::CaptureStderr();
  VS_LOG_ERROR("even errors");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LogTest, WorkerIdTagsTheLine) {
  set_log_level(LogLevel::Warn);
  set_log_worker_id(3);
  ::testing::internal::CaptureStderr();
  VS_LOG_WARN("from a worker");
  const std::string tagged = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(tagged.find("[vstack:WARN:w3] from a worker"),
            std::string::npos);

  // Resetting to -1 (the pool does this implicitly: tags are
  // thread_local and worker threads die with the pool) drops the tag.
  set_log_worker_id(-1);
  EXPECT_EQ(log_worker_id(), -1);
  ::testing::internal::CaptureStderr();
  VS_LOG_WARN("from the caller");
  const std::string untagged = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(untagged.find("[vstack:WARN] from the caller"),
            std::string::npos);
  EXPECT_EQ(untagged.find(":w"), std::string::npos);
}

// The thread-safety contract: concurrent writers may interleave LINES but
// never characters -- every captured line must be one intact message.
TEST_F(LogTest, ConcurrentWritersNeverInterleaveCharacters) {
  set_log_level(LogLevel::Info);
  constexpr int kThreads = 8;
  constexpr int kMessages = 50;

  ::testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_log_worker_id(t);
      for (int m = 0; m < kMessages; ++m) {
        VS_LOG_INFO("worker " << t << " message " << m << " payload "
                              << "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::string out = ::testing::internal::GetCapturedStderr();

  std::istringstream lines(out);
  std::string line;
  int intact = 0;
  while (std::getline(lines, line)) {
    // Each line: "[vstack:INFO:wT] worker T message M payload xxx...x"
    EXPECT_EQ(line.rfind("[vstack:INFO:w", 0), 0u) << line;
    EXPECT_NE(line.find("] worker "), std::string::npos) << line;
    ASSERT_GE(line.size(), 32u) << line;
    EXPECT_EQ(line.substr(line.size() - 32), std::string(32, 'x')) << line;
    ++intact;
  }
  EXPECT_EQ(intact, kThreads * kMessages);
}

}  // namespace
}  // namespace vstack
