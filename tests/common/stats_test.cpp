#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace vstack {
namespace {

TEST(StatsTest, MeanOfConstants) {
  EXPECT_DOUBLE_EQ(mean({4.0, 4.0, 4.0}), 4.0);
}

TEST(StatsTest, MeanSimple) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(StatsTest, MeanThrowsOnEmpty) {
  EXPECT_THROW(mean({}), Error);
}

TEST(StatsTest, StddevKnownValue) {
  // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is sqrt(32/7).
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, StddevZeroForSingleton) {
  EXPECT_DOUBLE_EQ(stddev({3.0}), 0.0);
}

TEST(StatsTest, PercentileEndpoints) {
  std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
}

TEST(StatsTest, PercentileInterpolates) {
  // Sorted: 10, 20, 30, 40. p50 halfway between 20 and 30.
  EXPECT_DOUBLE_EQ(percentile({40.0, 10.0, 30.0, 20.0}, 50.0), 25.0);
}

TEST(StatsTest, PercentileRejectsOutOfRangeQ) {
  EXPECT_THROW(percentile({1.0}, -1.0), Error);
  EXPECT_THROW(percentile({1.0}, 101.0), Error);
}

TEST(StatsTest, PercentileThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 50.0), Error);
}

TEST(StatsTest, BoxPlotOrdering) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(static_cast<double>(i));
  const auto s = box_plot_stats(xs);
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.max);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-12);
  EXPECT_NEAR(s.mean, 50.5, 1e-12);
}

TEST(StatsTest, RmsKnownValue) {
  EXPECT_DOUBLE_EQ(rms({3.0, 4.0}), std::sqrt(12.5));
}

TEST(StatsTest, RmsThrowsOnEmpty) {
  EXPECT_THROW(rms({}), Error);
}

}  // namespace
}  // namespace vstack
