// Cooperative cancellation token (common/deadline.h): the three shapes,
// parent chaining, and the process-wide shutdown token plumbing.
#include "common/deadline.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/shutdown.h"

namespace vstack {
namespace {

TEST(Deadline, DefaultIsUnlimited) {
  const Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(d.cancelled());
  EXPECT_EQ(d.remaining_seconds(), std::numeric_limits<double>::infinity());
  d.cancel();  // no-op by contract
  EXPECT_FALSE(d.expired());
}

TEST(Deadline, CancellableFiresOnCancel) {
  const Deadline d = Deadline::cancellable();
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.expired());
  d.cancel();
  EXPECT_TRUE(d.cancelled());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), 0.0);
}

TEST(Deadline, CopiesShareState) {
  const Deadline a = Deadline::cancellable();
  const Deadline b = a;  // value copy, shared state
  b.cancel();
  EXPECT_TRUE(a.expired());
}

TEST(Deadline, AfterZeroIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::after(0.0).expired());
  EXPECT_TRUE(Deadline::after(-1.0).expired());
}

TEST(Deadline, AfterFarFutureIsNotExpired) {
  const Deadline d = Deadline::after(3600.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 3000.0);
  d.cancel();
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, LimitedByMirrorsParent) {
  const Deadline parent = Deadline::cancellable();
  const Deadline child = Deadline::limited_by(parent, 3600.0);
  EXPECT_FALSE(child.expired());
  parent.cancel();
  EXPECT_TRUE(child.expired());
  // The parent is NOT expired by the child.
  const Deadline parent2 = Deadline::cancellable();
  const Deadline child2 = Deadline::limited_by(parent2, 0.0);
  EXPECT_FALSE(child2.expired()) << "seconds <= 0 means no own limit";
  child2.cancel();
  EXPECT_TRUE(child2.expired());
  EXPECT_FALSE(parent2.expired());
}

TEST(Deadline, LimitedByOwnTimeLimitStillApplies) {
  const Deadline parent = Deadline::cancellable();
  const Deadline child = Deadline::limited_by(parent, -0.5);
  EXPECT_FALSE(child.expired());
  const Deadline expired_child = Deadline::limited_by(parent, 1e-9);
  // A sub-nanosecond budget is gone by the time we check.
  EXPECT_TRUE(expired_child.expired());
  EXPECT_FALSE(parent.expired());
}

TEST(Shutdown, TokenIsSharedAndResettable) {
  reset_shutdown_for_tests();
  EXPECT_FALSE(shutdown_requested());
  EXPECT_EQ(shutdown_signal(), 0);
  const Deadline token = shutdown_token();
  EXPECT_FALSE(token.expired());
  token.cancel();  // what the signal handler does
  EXPECT_TRUE(shutdown_token().expired());
  reset_shutdown_for_tests();
  EXPECT_FALSE(shutdown_token().expired());
  // The pre-reset token stays fired; runners holding it just unwind.
  EXPECT_TRUE(token.expired());
}

TEST(Shutdown, ExitCodeIsDistinctFromExistingOnes) {
  EXPECT_EQ(kInterruptExitCode, 4);
}

}  // namespace
}  // namespace vstack
