#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/stats.h"

namespace vstack {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformRangeRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) {
    counts[rng.uniform_index(7)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);  // expected 1000 each; allow wide slack
    EXPECT_LT(c, 1300);
  }
}

TEST(RngTest, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(2.0, 0.5);
  EXPECT_NEAR(mean(xs), 2.0, 0.02);
  EXPECT_NEAR(stddev(xs), 0.5, 0.02);
}

TEST(RngTest, NormalRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

TEST(RngTest, LognormalMedianIsExpMu) {
  Rng rng(19);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.lognormal(1.0, 0.7);
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(1.0), 0.1);
}

TEST(RngTest, BetaStaysInUnitInterval) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.beta(2.0, 5.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(RngTest, BetaMeanMatches) {
  Rng rng(29);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.beta(2.0, 6.0);
  EXPECT_NEAR(mean(xs), 2.0 / 8.0, 0.01);
}

TEST(RngTest, BetaRejectsNonPositiveParams) {
  Rng rng(1);
  EXPECT_THROW(rng.beta(0.0, 1.0), Error);
  EXPECT_THROW(rng.beta(1.0, -2.0), Error);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace vstack
