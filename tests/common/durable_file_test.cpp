// Durable file primitives (common/durable_file.h): append-line persistence,
// atomic replacement, error behavior on bad paths, and -- via failpoint
// injection -- the I/O error paths no real filesystem reproduces on demand
// (EIO on fsync, ENOSPC mid-write, EINTR on every retried syscall).
#include "common/durable_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/failpoint.h"

namespace vstack {
namespace {

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "vstack_durable_" + tag + "_" +
         std::to_string(::getpid());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

TEST(DurableAppender, AppendsOneLinePerCall) {
  const std::string path = temp_path("append");
  std::remove(path.c_str());
  {
    DurableAppender a;
    EXPECT_FALSE(a.is_open());
    a.open(path);
    EXPECT_TRUE(a.is_open());
    a.append_line("alpha");
    a.append_line("beta");
    a.close();
    EXPECT_FALSE(a.is_open());
  }
  EXPECT_EQ(slurp(path), "alpha\nbeta\n");
  // Re-opening appends rather than truncating (the manifest contract).
  {
    DurableAppender a;
    a.open(path);
    a.append_line("gamma");
  }
  EXPECT_EQ(slurp(path), "alpha\nbeta\ngamma\n");
  std::remove(path.c_str());
}

TEST(DurableAppender, OpenFailureThrows) {
  DurableAppender a;
  EXPECT_THROW(a.open("/nonexistent-dir-zz/x.jsonl"), Error);
  EXPECT_FALSE(a.is_open());
}

TEST(AtomicWriteFile, ReplacesContentAtomically) {
  const std::string path = temp_path("atomic");
  atomic_write_file(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  atomic_write_file(path, "second\n");
  EXPECT_EQ(slurp(path), "second\n");
  std::remove(path.c_str());
}

TEST(AtomicWriteFile, BadDirectoryThrows) {
  EXPECT_THROW(atomic_write_file("/nonexistent-dir-zz/h.json", "x"), Error);
}

TEST(DurableAppender, RepairTornTailTerminatesTheFragment) {
  const std::string path = temp_path("torn");
  std::remove(path.c_str());
  // Simulate a kill -9 mid-append: the file ends in half a line.
  {
    std::ofstream out(path, std::ios::binary);
    out << "complete line\n{\"index\":3,\"half";
  }
  {
    DurableAppender a;
    a.open(path, /*repair_torn_tail=*/true);
    a.append_line("next record");
    a.close();
  }
  // Without the repair the fragment would swallow "next record" into one
  // garbage line; with it the fragment becomes its own (skippable) line.
  EXPECT_EQ(slurp(path), "complete line\n{\"index\":3,\"half\nnext record\n");
  std::remove(path.c_str());
}

TEST(DurableAppender, RepairTornTailNoOpOnCleanAndEmptyFiles) {
  const std::string path = temp_path("clean");
  std::remove(path.c_str());
  {
    DurableAppender a;
    a.open(path, /*repair_torn_tail=*/true);  // empty file: nothing to fix
    a.append_line("one");
    a.close();
  }
  {
    DurableAppender a;
    a.open(path, /*repair_torn_tail=*/true);  // ends in '\n': nothing to fix
    a.append_line("two");
    a.close();
  }
  EXPECT_EQ(slurp(path), "one\ntwo\n");
  std::remove(path.c_str());
}

TEST(ExclusiveFile, SingleWinnerAndContentDurability) {
  const std::string path = temp_path("excl");
  std::remove(path.c_str());
  EXPECT_TRUE(create_exclusive_file(path, "claimant-a\n"));
  EXPECT_FALSE(create_exclusive_file(path, "claimant-b\n"));  // lost the race
  EXPECT_EQ(slurp(path), "claimant-a\n");  // loser never scribbles
  EXPECT_TRUE(remove_file(path));
  EXPECT_FALSE(remove_file(path));  // already gone
  EXPECT_TRUE(create_exclusive_file(path, "claimant-b\n"));  // re-claimable
  std::remove(path.c_str());
}

TEST(FileAge, TouchResetsAgeAndMissingFilesReportFalse) {
  const std::string path = temp_path("age");
  std::remove(path.c_str());
  double age = -1.0;
  EXPECT_FALSE(file_age_seconds(path, age));
  EXPECT_FALSE(touch_file(path));

  atomic_write_file(path, "x\n");
  ASSERT_TRUE(file_age_seconds(path, age));
  EXPECT_GE(age, 0.0);
  EXPECT_LT(age, 60.0);
  EXPECT_TRUE(touch_file(path));
  ASSERT_TRUE(file_age_seconds(path, age));
  EXPECT_LT(age, 60.0);
  std::remove(path.c_str());
}

TEST(TryRename, MissingSourceIsFalseNotFatal) {
  const std::string from = temp_path("ren_from");
  const std::string to = temp_path("ren_to");
  std::remove(from.c_str());
  std::remove(to.c_str());
  EXPECT_FALSE(try_rename(from, to));  // ENOENT: lost the reclaim race
  atomic_write_file(from, "x\n");
  EXPECT_TRUE(try_rename(from, to));
  EXPECT_FALSE(try_rename(from, to));  // source consumed: single winner
  EXPECT_EQ(slurp(to), "x\n");
  std::remove(to.c_str());
}

#if VSTACK_FAILPOINTS_ENABLED
// I/O error paths driven by injection; under -DVSTACK_FAILPOINTS=OFF the
// hooks compile away and these scenarios are untestable by design.

/// Scoped failpoint activation: the registry is process-global, so every
/// injection test must leave it clean for its neighbors.
struct FailpointGuard {
  explicit FailpointGuard(const std::string& spec) {
    failpoint::clear();
    failpoint::configure(spec);
  }
  ~FailpointGuard() { failpoint::clear(); }
};

TEST(DurableFileInjection, AppendFsyncEIOSurfacesCleanDiagnostic) {
  const std::string path = temp_path("inj_fsync");
  std::remove(path.c_str());
  DurableAppender a;
  a.open(path);
  a.append_line("one");
  {
    FailpointGuard fp("durable_file.append.fsync=err:EIO");
    try {
      a.append_line("two");
      FAIL() << "expected injected EIO to surface";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("fsync"), std::string::npos);
      EXPECT_NE(what.find("Input/output error"), std::string::npos);
      EXPECT_NE(what.find(path), std::string::npos);
    }
  }
  // The failed durability barrier does not wedge the appender or the file:
  // a fresh open (with torn-tail repair) resumes appending cleanly.
  a.close();
  DurableAppender b;
  b.open(path, /*repair_torn_tail=*/true);
  b.append_line("three");
  b.close();
  const std::string content = slurp(path);
  EXPECT_NE(content.find("one\n"), std::string::npos);
  EXPECT_NE(content.find("three\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DurableFileInjection, AtomicWriteENOSPCLeavesTargetIntactNoOrphan) {
  const std::string path = temp_path("inj_enospc");
  std::remove(path.c_str());
  atomic_write_file(path, "committed\n");
  {
    FailpointGuard fp("durable_file.atomic.write=err:ENOSPC");
    try {
      atomic_write_file(path, "doomed\n");
      FAIL() << "expected injected ENOSPC to surface";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("No space left on device"),
                std::string::npos);
    }
  }
  // The target still holds the previous committed content and the failed
  // attempt's temp file was unlinked on the error path.
  EXPECT_EQ(slurp(path), "committed\n");
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  EXPECT_FALSE(std::filesystem::exists(tmp));
  std::remove(path.c_str());
}

TEST(DurableFileInjection, AtomicFsyncEIOAlsoCleansUp) {
  const std::string path = temp_path("inj_afsync");
  std::remove(path.c_str());
  atomic_write_file(path, "committed\n");
  {
    FailpointGuard fp("durable_file.atomic.fsync=err:EIO");
    EXPECT_THROW(atomic_write_file(path, "doomed\n"), Error);
  }
  EXPECT_EQ(slurp(path), "committed\n");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp." +
                                       std::to_string(::getpid())));
  std::remove(path.c_str());
}

TEST(DurableFileInjection, EINTRFsyncIsRetriedToSuccess) {
  const std::string path = temp_path("inj_eintr_fsync");
  std::remove(path.c_str());
  DurableAppender a;
  a.open(path);
  {
    // One-shot EINTR inside the retry loop: the first fsync attempt is
    // interrupted, the retry succeeds, the caller never sees an error.
    FailpointGuard fp("durable_file.append.fsync=err:EINTR");
    EXPECT_NO_THROW(a.append_line("survived"));
  }
  a.close();
  EXPECT_EQ(slurp(path), "survived\n");
  std::remove(path.c_str());
}

TEST(DurableFileInjection, EINTRCloseIsSuccessNotRetried) {
  const std::string path = temp_path("inj_eintr_close");
  std::remove(path.c_str());
  DurableAppender a;
  a.open(path);
  a.append_line("x");
  {
    // Linux frees the descriptor even when close returns EINTR; retrying
    // could close a recycled fd, so the wrapper treats it as success.
    FailpointGuard fp("durable_file.close.close=err:EINTR");
    EXPECT_NO_THROW(a.close());
  }
  EXPECT_FALSE(a.is_open());
  EXPECT_EQ(slurp(path), "x\n");
  std::remove(path.c_str());
}

TEST(DurableFileInjection, OpenEIOSurfacesErrnoText) {
  const std::string path = temp_path("inj_open");
  std::remove(path.c_str());
  FailpointGuard fp("durable_file.open.open=err:EIO");
  DurableAppender a;
  try {
    a.open(path);
    FAIL() << "expected injected EIO to surface";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("Input/output error"),
              std::string::npos);
  }
  EXPECT_FALSE(a.is_open());
}

#endif  // VSTACK_FAILPOINTS_ENABLED

TEST(SweepStaleTempFiles, RemovesOnlyPidSuffixedOrphans) {
  namespace fs = std::filesystem;
  const fs::path dir = temp_path("sweep");
  fs::remove_all(dir);
  fs::create_directories(dir / "sub");
  const auto put = [](const fs::path& p) { std::ofstream(p) << "x"; };
  put(dir / "health.json.tmp.1234");   // orphan: swept
  put(dir / "b.tmp.999");              // orphan: swept
  put(dir / "keep.tmp.x12");           // non-numeric suffix: kept
  put(dir / "note.tmp.");              // empty suffix: kept
  put(dir / "plain.txt");              // kept
  put(dir / "sub" / "c.tmp.42");       // orphan, but nested

  EXPECT_EQ(sweep_stale_temp_files(dir.string(), /*recursive=*/false), 2u);
  EXPECT_FALSE(fs::exists(dir / "health.json.tmp.1234"));
  EXPECT_FALSE(fs::exists(dir / "b.tmp.999"));
  EXPECT_TRUE(fs::exists(dir / "keep.tmp.x12"));
  EXPECT_TRUE(fs::exists(dir / "note.tmp."));
  EXPECT_TRUE(fs::exists(dir / "plain.txt"));
  EXPECT_TRUE(fs::exists(dir / "sub" / "c.tmp.42"));  // non-recursive

  EXPECT_EQ(sweep_stale_temp_files(dir.string(), /*recursive=*/true), 1u);
  EXPECT_FALSE(fs::exists(dir / "sub" / "c.tmp.42"));

  // Missing directory: zero removed, no throw (best-effort contract).
  EXPECT_EQ(sweep_stale_temp_files((dir / "nope").string()), 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace vstack
