// Durable file primitives (common/durable_file.h): append-line persistence,
// atomic replacement, and error behavior on bad paths.
#include "common/durable_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"

namespace vstack {
namespace {

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "vstack_durable_" + tag + "_" +
         std::to_string(::getpid());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

TEST(DurableAppender, AppendsOneLinePerCall) {
  const std::string path = temp_path("append");
  std::remove(path.c_str());
  {
    DurableAppender a;
    EXPECT_FALSE(a.is_open());
    a.open(path);
    EXPECT_TRUE(a.is_open());
    a.append_line("alpha");
    a.append_line("beta");
    a.close();
    EXPECT_FALSE(a.is_open());
  }
  EXPECT_EQ(slurp(path), "alpha\nbeta\n");
  // Re-opening appends rather than truncating (the manifest contract).
  {
    DurableAppender a;
    a.open(path);
    a.append_line("gamma");
  }
  EXPECT_EQ(slurp(path), "alpha\nbeta\ngamma\n");
  std::remove(path.c_str());
}

TEST(DurableAppender, OpenFailureThrows) {
  DurableAppender a;
  EXPECT_THROW(a.open("/nonexistent-dir-zz/x.jsonl"), Error);
  EXPECT_FALSE(a.is_open());
}

TEST(AtomicWriteFile, ReplacesContentAtomically) {
  const std::string path = temp_path("atomic");
  atomic_write_file(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  atomic_write_file(path, "second\n");
  EXPECT_EQ(slurp(path), "second\n");
  std::remove(path.c_str());
}

TEST(AtomicWriteFile, BadDirectoryThrows) {
  EXPECT_THROW(atomic_write_file("/nonexistent-dir-zz/h.json", "x"), Error);
}

TEST(DurableAppender, RepairTornTailTerminatesTheFragment) {
  const std::string path = temp_path("torn");
  std::remove(path.c_str());
  // Simulate a kill -9 mid-append: the file ends in half a line.
  {
    std::ofstream out(path, std::ios::binary);
    out << "complete line\n{\"index\":3,\"half";
  }
  {
    DurableAppender a;
    a.open(path, /*repair_torn_tail=*/true);
    a.append_line("next record");
    a.close();
  }
  // Without the repair the fragment would swallow "next record" into one
  // garbage line; with it the fragment becomes its own (skippable) line.
  EXPECT_EQ(slurp(path), "complete line\n{\"index\":3,\"half\nnext record\n");
  std::remove(path.c_str());
}

TEST(DurableAppender, RepairTornTailNoOpOnCleanAndEmptyFiles) {
  const std::string path = temp_path("clean");
  std::remove(path.c_str());
  {
    DurableAppender a;
    a.open(path, /*repair_torn_tail=*/true);  // empty file: nothing to fix
    a.append_line("one");
    a.close();
  }
  {
    DurableAppender a;
    a.open(path, /*repair_torn_tail=*/true);  // ends in '\n': nothing to fix
    a.append_line("two");
    a.close();
  }
  EXPECT_EQ(slurp(path), "one\ntwo\n");
  std::remove(path.c_str());
}

TEST(ExclusiveFile, SingleWinnerAndContentDurability) {
  const std::string path = temp_path("excl");
  std::remove(path.c_str());
  EXPECT_TRUE(create_exclusive_file(path, "claimant-a\n"));
  EXPECT_FALSE(create_exclusive_file(path, "claimant-b\n"));  // lost the race
  EXPECT_EQ(slurp(path), "claimant-a\n");  // loser never scribbles
  EXPECT_TRUE(remove_file(path));
  EXPECT_FALSE(remove_file(path));  // already gone
  EXPECT_TRUE(create_exclusive_file(path, "claimant-b\n"));  // re-claimable
  std::remove(path.c_str());
}

TEST(FileAge, TouchResetsAgeAndMissingFilesReportFalse) {
  const std::string path = temp_path("age");
  std::remove(path.c_str());
  double age = -1.0;
  EXPECT_FALSE(file_age_seconds(path, age));
  EXPECT_FALSE(touch_file(path));

  atomic_write_file(path, "x\n");
  ASSERT_TRUE(file_age_seconds(path, age));
  EXPECT_GE(age, 0.0);
  EXPECT_LT(age, 60.0);
  EXPECT_TRUE(touch_file(path));
  ASSERT_TRUE(file_age_seconds(path, age));
  EXPECT_LT(age, 60.0);
  std::remove(path.c_str());
}

TEST(TryRename, MissingSourceIsFalseNotFatal) {
  const std::string from = temp_path("ren_from");
  const std::string to = temp_path("ren_to");
  std::remove(from.c_str());
  std::remove(to.c_str());
  EXPECT_FALSE(try_rename(from, to));  // ENOENT: lost the reclaim race
  atomic_write_file(from, "x\n");
  EXPECT_TRUE(try_rename(from, to));
  EXPECT_FALSE(try_rename(from, to));  // source consumed: single winner
  EXPECT_EQ(slurp(to), "x\n");
  std::remove(to.c_str());
}

}  // namespace
}  // namespace vstack
