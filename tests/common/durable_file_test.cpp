// Durable file primitives (common/durable_file.h): append-line persistence,
// atomic replacement, and error behavior on bad paths.
#include "common/durable_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"

namespace vstack {
namespace {

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "vstack_durable_" + tag + "_" +
         std::to_string(::getpid());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

TEST(DurableAppender, AppendsOneLinePerCall) {
  const std::string path = temp_path("append");
  std::remove(path.c_str());
  {
    DurableAppender a;
    EXPECT_FALSE(a.is_open());
    a.open(path);
    EXPECT_TRUE(a.is_open());
    a.append_line("alpha");
    a.append_line("beta");
    a.close();
    EXPECT_FALSE(a.is_open());
  }
  EXPECT_EQ(slurp(path), "alpha\nbeta\n");
  // Re-opening appends rather than truncating (the manifest contract).
  {
    DurableAppender a;
    a.open(path);
    a.append_line("gamma");
  }
  EXPECT_EQ(slurp(path), "alpha\nbeta\ngamma\n");
  std::remove(path.c_str());
}

TEST(DurableAppender, OpenFailureThrows) {
  DurableAppender a;
  EXPECT_THROW(a.open("/nonexistent-dir-zz/x.jsonl"), Error);
  EXPECT_FALSE(a.is_open());
}

TEST(AtomicWriteFile, ReplacesContentAtomically) {
  const std::string path = temp_path("atomic");
  atomic_write_file(path, "first\n");
  EXPECT_EQ(slurp(path), "first\n");
  atomic_write_file(path, "second\n");
  EXPECT_EQ(slurp(path), "second\n");
  std::remove(path.c_str());
}

TEST(AtomicWriteFile, BadDirectoryThrows) {
  EXPECT_THROW(atomic_write_file("/nonexistent-dir-zz/h.json", "x"), Error);
}

}  // namespace
}  // namespace vstack
