#include "common/cli.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack {
namespace {

CliArgs make(std::initializer_list<const char*> argv,
             std::vector<std::string> known = {}) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data(), std::move(known));
}

TEST(CliTest, SubcommandAndPositionals) {
  const auto args = make({"prog", "noise", "extra"});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.subcommand(), "noise");
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[1], "extra");
}

TEST(CliTest, EmptySubcommand) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.subcommand(), "");
}

TEST(CliTest, TypedGetters) {
  const auto args =
      make({"prog", "x", "--layers=8", "--imbalance=0.65", "--map"});
  EXPECT_EQ(args.get_size("layers", 2), 8u);
  EXPECT_DOUBLE_EQ(args.get_double("imbalance", 0.0), 0.65);
  EXPECT_TRUE(args.get_bool("map"));
  EXPECT_EQ(args.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_size("missing", 4), 4u);
}

TEST(CliTest, BooleanSpellings) {
  EXPECT_TRUE(make({"p", "--f=yes"}).get_bool("f"));
  EXPECT_FALSE(make({"p", "--f=0"}).get_bool("f", true));
  EXPECT_THROW(make({"p", "--f=maybe"}).get_bool("f"), Error);
}

TEST(CliTest, RejectsUnknownOptionWhenListed) {
  EXPECT_THROW(make({"p", "--bogus=1"}, {"layers"}), Error);
  EXPECT_NO_THROW(make({"p", "--layers=2"}, {"layers"}));
}

TEST(CliTest, RejectsDuplicatesAndMalformed) {
  EXPECT_THROW(make({"p", "--a=1", "--a=2"}), Error);
  EXPECT_THROW(make({"p", "--"}), Error);
  EXPECT_THROW(make({"p", "--n=abc"}).get_double("n", 0.0), Error);
  EXPECT_THROW(make({"p", "--n=1.5"}).get_size("n", 0), Error);
  EXPECT_THROW(make({"p", "--n=12x"}).get_double("n", 0.0), Error);
}

}  // namespace
}  // namespace vstack
