// Deterministic failpoint injection (common/failpoint.h): spec parsing,
// hit-index triggers, err/delay/crash actions, the census channel, and
// the cross-process once-marker gate.
#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "common/error.h"

namespace vstack {
namespace {

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "vstack_failpoint_" + tag + "_" +
         std::to_string(::getpid());
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Every test starts and ends with a clean registry: the state is
/// process-global, so leaking an action would poison later tests.
class FailpointTest : public testing::Test {
 protected:
  void SetUp() override { failpoint::clear(); }
  void TearDown() override { failpoint::clear(); }
};

TEST_F(FailpointTest, MacrosAreInertWhenInactive) {
  // Holds in every build: with nothing configured the marker macro does
  // nothing and the syscall wrapper evaluates to the bare call.
  VS_FAILPOINT("fp_test.inert");
  EXPECT_EQ(VS_FAILPOINT_SYSCALL("fp_test.inert", 11), 11);
}

#if VSTACK_FAILPOINTS_ENABLED
// Everything below needs live injection; under -DVSTACK_FAILPOINTS=OFF
// configure()/clear() are no-ops and the hooks compile away (that build's
// behavioral contract -- bit-identical output, inert env -- is asserted
// by the CI failpoints-off job instead).

TEST_F(FailpointTest, CompiledIn) {
  EXPECT_TRUE(failpoint::compiled_in());
}

TEST_F(FailpointTest, InactivePointsAreFreeAndUncounted) {
  VS_FAILPOINT("fp_test.inactive");
  EXPECT_EQ(failpoint::hit_count("fp_test.inactive"), 0u);
  const int rc = VS_FAILPOINT_SYSCALL("fp_test.inactive", 42);
  EXPECT_EQ(rc, 42);
}

TEST_F(FailpointTest, MalformedSpecsThrow) {
  EXPECT_THROW(failpoint::configure("noequals"), Error);
  EXPECT_THROW(failpoint::configure("=crash"), Error);
  EXPECT_THROW(failpoint::configure("p=warp"), Error);
  EXPECT_THROW(failpoint::configure("p=err:EWHAT"), Error);
  EXPECT_THROW(failpoint::configure("p=err:-5"), Error);
  EXPECT_THROW(failpoint::configure("p=crash@0"), Error);
  EXPECT_THROW(failpoint::configure("p=crash@x"), Error);
  EXPECT_THROW(failpoint::configure("p=crash:now"), Error);
  EXPECT_THROW(failpoint::configure("p=delay:fast"), Error);
  // A malformed fragment anywhere in the list is rejected.
  EXPECT_THROW(failpoint::configure("a=crash;b=warp"), Error);
}

TEST_F(FailpointTest, ErrInjectionThrowsAtMarkerSites) {
  failpoint::configure("fp_test.marker=err:EIO");
  try {
    VS_FAILPOINT("fp_test.marker");
    FAIL() << "expected injected EIO";
  } catch (const Error& e) {
    // The diagnostic names the point, the label, and the strerror text.
    EXPECT_NE(std::string(e.what()).find("fp_test.marker"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("EIO"), std::string::npos);
  }
}

TEST_F(FailpointTest, ErrInjectionSkipsTheRealSyscall) {
  failpoint::configure("fp_test.syscall=err:ENOSPC");
  bool evaluated = false;
  auto probe = [&]() {
    evaluated = true;
    return 7;
  };
  errno = 0;
  const int rc = VS_FAILPOINT_SYSCALL("fp_test.syscall", probe());
  EXPECT_EQ(rc, -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_FALSE(evaluated) << "the wrapped call must not run when failing";
  // One-shot (@1 default): the second evaluation passes through.
  const int rc2 = VS_FAILPOINT_SYSCALL("fp_test.syscall", probe());
  EXPECT_EQ(rc2, 7);
  EXPECT_TRUE(evaluated);
}

TEST_F(FailpointTest, NumericErrnoFallback) {
  failpoint::configure("fp_test.num=err:" + std::to_string(EDOM));
  errno = 0;
  EXPECT_EQ(VS_FAILPOINT_SYSCALL("fp_test.num", 0), -1);
  EXPECT_EQ(errno, EDOM);
}

TEST_F(FailpointTest, NthHitOneShotFiresExactlyOnce) {
  failpoint::configure("fp_test.nth=err:EIO@3");
  int failures = 0;
  for (int i = 0; i < 6; ++i) {
    if (VS_FAILPOINT_SYSCALL("fp_test.nth", 0) != 0) ++failures;
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(failpoint::hit_count("fp_test.nth"), 6u);
}

TEST_F(FailpointTest, PersistentFiresFromNOnward) {
  failpoint::configure("fp_test.persist=err:EIO@3+");
  int failures = 0;
  for (int i = 0; i < 6; ++i) {
    if (VS_FAILPOINT_SYSCALL("fp_test.persist", 0) != 0) ++failures;
  }
  EXPECT_EQ(failures, 4);  // hits 3, 4, 5, 6
}

TEST_F(FailpointTest, ReconfigurePreservesCountersDropsOldActions) {
  failpoint::configure("fp_test.a=err:EIO@1+");
  EXPECT_EQ(VS_FAILPOINT_SYSCALL("fp_test.a", 0), -1);
  // New spec without fp_test.a: the action is gone, the counter is not.
  failpoint::configure("fp_test.b=err:EIO@1");
  EXPECT_EQ(VS_FAILPOINT_SYSCALL("fp_test.a", 0), 0);
  EXPECT_EQ(failpoint::hit_count("fp_test.a"), 2u);
}

TEST_F(FailpointTest, DelayActionSleeps) {
  failpoint::configure("fp_test.delay=delay:30");
  const auto t0 = std::chrono::steady_clock::now();
  VS_FAILPOINT("fp_test.delay");
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_GE(elapsed, 25.0);
}

TEST_F(FailpointTest, CrashActionExits137) {
  EXPECT_EXIT(
      {
        failpoint::configure("fp_test.crash=crash");
        VS_FAILPOINT("fp_test.crash");
      },
      testing::ExitedWithCode(137), "");
}

TEST_F(FailpointTest, CensusRecordsEveryEvaluation) {
  const std::string census = temp_path("census");
  std::remove(census.c_str());
  failpoint::configure_census(census);
  VS_FAILPOINT("fp_test.census.a");
  VS_FAILPOINT("fp_test.census.a");
  (void)VS_FAILPOINT_SYSCALL("fp_test.census.b", 0);
  failpoint::clear();  // closes the census fd

  const auto lines = read_lines(census);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "fp_test.census.a");
  EXPECT_EQ(lines[1], "fp_test.census.a");
  EXPECT_EQ(lines[2], "fp_test.census.b");
  std::remove(census.c_str());
}

TEST_F(FailpointTest, OnceMarkerSuppressesAlreadyFiredSchedules) {
  const std::string dir = temp_path("once");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  // Another process already claimed (taken, hit 1): simulate the restarted
  // worker the once-dir exists for by pre-creating its marker.
  {
    std::ofstream marker(dir + "/fp_test.once.taken@1.fired");
  }
  failpoint::configure_once_dir(dir);
  failpoint::configure(
      "fp_test.once.taken=err:EIO@1;fp_test.once.free=err:EIO@1");

  // Marker taken: armed but suppressed -- the action must NOT fire.
  EXPECT_EQ(VS_FAILPOINT_SYSCALL("fp_test.once.taken", 0), 0);
  // Fresh point: fires and leaves its own marker behind.
  EXPECT_EQ(VS_FAILPOINT_SYSCALL("fp_test.once.free", 0), -1);
  EXPECT_EQ(::access((dir + "/fp_test.once.free@1.fired").c_str(), F_OK), 0);

  failpoint::clear();
  std::remove((dir + "/fp_test.once.taken@1.fired").c_str());
  std::remove((dir + "/fp_test.once.free@1.fired").c_str());
  ::rmdir(dir.c_str());
}

TEST_F(FailpointTest, StatusReportsHitsAndFired) {
  failpoint::configure("fp_test.status=err:EIO@2");
  (void)VS_FAILPOINT_SYSCALL("fp_test.status", 0);
  (void)VS_FAILPOINT_SYSCALL("fp_test.status", 0);
  bool found = false;
  for (const auto& s : failpoint::status()) {
    if (s.name != "fp_test.status") continue;
    found = true;
    EXPECT_EQ(s.action, "err:EIO@2");
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.fired, 1u);
  }
  EXPECT_TRUE(found);
}

TEST_F(FailpointTest, ClearDeactivatesEverything) {
  failpoint::configure("fp_test.cleared=err:EIO@1+");
  EXPECT_EQ(VS_FAILPOINT_SYSCALL("fp_test.cleared", 0), -1);
  failpoint::clear();
  EXPECT_EQ(VS_FAILPOINT_SYSCALL("fp_test.cleared", 0), 0);
  EXPECT_EQ(failpoint::hit_count("fp_test.cleared"), 0u);
}

#endif  // VSTACK_FAILPOINTS_ENABLED

}  // namespace
}  // namespace vstack
