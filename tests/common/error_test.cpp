#include "common/error.h"

#include <gtest/gtest.h>

namespace vstack {
namespace {

TEST(ErrorTest, RequirePassesOnTrue) {
  EXPECT_NO_THROW(VS_REQUIRE(1 + 1 == 2, "arithmetic works"));
}

TEST(ErrorTest, RequireThrowsOnFalse) {
  EXPECT_THROW(VS_REQUIRE(false, "must fail"), Error);
}

TEST(ErrorTest, MessageContainsContext) {
  try {
    VS_REQUIRE(2 > 3, "two is not greater than three");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("two is not greater than three"), std::string::npos);
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, FailAlwaysThrows) {
  EXPECT_THROW(VS_FAIL("unconditional"), Error);
}

TEST(ErrorTest, ErrorIsRuntimeError) {
  // Callers that only know std::exception still catch library errors.
  EXPECT_THROW(VS_FAIL("generic"), std::runtime_error);
}

}  // namespace
}  // namespace vstack
