#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace vstack {
namespace {

TEST(TableTest, FormatsNumbers) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TableTest, FormatsPercent) {
  EXPECT_EQ(TextTable::percent(0.242, 1), "24.2%");
  EXPECT_EQ(TextTable::percent(0.004, 1), "0.4%");
}

TEST(TableTest, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TableTest, PrintsAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace vstack
