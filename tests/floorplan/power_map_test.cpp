#include "floorplan/power_map.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::floorplan {
namespace {

Floorplan single_block_plan() {
  Floorplan fp;
  fp.width = 4.0;
  fp.height = 4.0;
  fp.cores_x = 1;
  fp.cores_y = 1;
  fp.blocks.push_back(PlacedBlock{"b", 0, 0, Rect{0.0, 0.0, 4.0, 4.0}});
  return fp;
}

TEST(PowerMapTest, TotalPowerConserved) {
  const Floorplan fp = single_block_plan();
  const GridMap map = rasterize_power(fp, {10.0}, 8, 8);
  EXPECT_NEAR(map.total(), 10.0, 1e-12);
}

TEST(PowerMapTest, UniformBlockSpreadsEvenly) {
  const Floorplan fp = single_block_plan();
  const GridMap map = rasterize_power(fp, {16.0}, 4, 4);
  for (std::size_t iy = 0; iy < 4; ++iy) {
    for (std::size_t ix = 0; ix < 4; ++ix) {
      EXPECT_NEAR(map.at(ix, iy), 1.0, 1e-12);
    }
  }
}

TEST(PowerMapTest, PartialOverlapWeighted) {
  Floorplan fp;
  fp.width = 2.0;
  fp.height = 1.0;
  fp.cores_x = fp.cores_y = 1;
  // Block covers the left half plus a quarter of the right half.
  fp.blocks.push_back(PlacedBlock{"b", 0, 0, Rect{0.0, 0.0, 1.25, 1.0}});
  const GridMap map = rasterize_power(fp, {5.0}, 2, 1);
  EXPECT_NEAR(map.at(0, 0), 5.0 * (1.0 / 1.25), 1e-12);
  EXPECT_NEAR(map.at(1, 0), 5.0 * (0.25 / 1.25), 1e-12);
}

TEST(PowerMapTest, LayerMapConservesCorePower) {
  const auto model = power::CorePowerModel::cortex_a9_like();
  const Floorplan fp = paper_layer_floorplan();
  const std::vector<double> acts(16, 0.8);
  const GridMap map = layer_power_map(fp, model, acts, 32, 32);
  EXPECT_NEAR(map.total(), 16.0 * model.total_power(0.8), 1e-9);
}

TEST(PowerMapTest, HeterogeneousActivitiesLocalize) {
  const auto model = power::CorePowerModel::cortex_a9_like();
  const Floorplan fp = paper_layer_floorplan();
  std::vector<double> acts(16, 0.0);
  acts[0] = 1.0;  // only core 0 active (lower-left tile)
  const GridMap map = layer_power_map(fp, model, acts, 8, 8);
  // Core 0 occupies the lower-left 2x2 cells of an 8x8 grid.
  double corner = 0.0;
  for (std::size_t iy = 0; iy < 2; ++iy) {
    for (std::size_t ix = 0; ix < 2; ++ix) corner += map.at(ix, iy);
  }
  const double active_total = model.total_power(1.0);
  const double idle_total = 15.0 * model.total_power(0.0);
  EXPECT_NEAR(map.total(), active_total + idle_total, 1e-9);
  // Core tiles align with the 8x8 grid (2x2 cells per tile), so the corner
  // contains exactly core 0's power and nothing else.
  EXPECT_NEAR(corner, active_total, 1e-9);
}

TEST(PowerMapTest, ZeroPowerBlocksSkipped) {
  const Floorplan fp = single_block_plan();
  const GridMap map = rasterize_power(fp, {0.0}, 4, 4);
  EXPECT_DOUBLE_EQ(map.total(), 0.0);
}

TEST(PowerMapTest, CellOfLocatesPoints) {
  const Floorplan fp = single_block_plan();  // 4x4 die
  EXPECT_EQ(cell_of(fp, 4, 4, 0.5, 0.5), 0u);
  EXPECT_EQ(cell_of(fp, 4, 4, 3.5, 0.5), 3u);
  EXPECT_EQ(cell_of(fp, 4, 4, 0.5, 3.5), 12u);
  // Boundary points clamp into the last cell.
  EXPECT_EQ(cell_of(fp, 4, 4, 4.0, 4.0), 15u);
}

TEST(PowerMapTest, CellOfRejectsOutsidePoints) {
  const Floorplan fp = single_block_plan();
  EXPECT_THROW(cell_of(fp, 4, 4, -0.1, 0.0), Error);
  EXPECT_THROW(cell_of(fp, 4, 4, 0.0, 4.1), Error);
}

TEST(PowerMapTest, RejectsMismatchedPowerVector) {
  const Floorplan fp = single_block_plan();
  EXPECT_THROW(rasterize_power(fp, {1.0, 2.0}, 4, 4), Error);
}

TEST(PowerMapTest, GridIndexBoundsChecked) {
  GridMap map;
  map.nx = map.ny = 2;
  map.values.assign(4, 0.0);
  EXPECT_THROW(map.at(2, 0), Error);
}

}  // namespace
}  // namespace vstack::floorplan
