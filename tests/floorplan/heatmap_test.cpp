#include "floorplan/heatmap.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace vstack::floorplan {
namespace {

GridMap ramp_map() {
  GridMap m;
  m.nx = 4;
  m.ny = 2;
  m.values = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  return m;
}

TEST(HeatmapTest, ShadeEndpoints) {
  const std::string ramp = " .:#";
  EXPECT_EQ(shade_of(0.0, 0.0, 1.0, ramp), ' ');
  EXPECT_EQ(shade_of(1.0, 0.0, 1.0, ramp), '#');
  EXPECT_EQ(shade_of(0.5, 0.0, 1.0, ramp), ':');
}

TEST(HeatmapTest, ShadeClampsOutOfRange) {
  const std::string ramp = " @";
  EXPECT_EQ(shade_of(-5.0, 0.0, 1.0, ramp), ' ');
  EXPECT_EQ(shade_of(99.0, 0.0, 1.0, ramp), '@');
}

TEST(HeatmapTest, DegenerateRangeUsesFirstShade) {
  EXPECT_EQ(shade_of(3.0, 2.0, 2.0, "ab"), 'a');
}

TEST(HeatmapTest, RendersRowMajorBottomUp) {
  std::ostringstream oss;
  HeatmapOptions opts;
  opts.ramp = "01";
  opts.legend = false;
  GridMap m;
  m.nx = 2;
  m.ny = 2;
  m.values = {0.0, 0.0, 1.0, 1.0};  // bottom row low, top row high
  render_heatmap(m, oss, opts);
  // Top row printed first -> "11" then "00".
  EXPECT_EQ(oss.str(), "  11\n  00\n");
}

TEST(HeatmapTest, LegendShowsScaledRange) {
  std::ostringstream oss;
  HeatmapOptions opts;
  opts.legend_scale = 1e3;
  opts.legend_unit = "mV";
  render_heatmap(ramp_map(), oss, opts);
  const std::string out = oss.str();
  EXPECT_NE(out.find("mV"), std::string::npos);
  EXPECT_NE(out.find("7e+03"), std::string::npos);
}

TEST(HeatmapTest, RejectsEmptyMap) {
  GridMap empty;
  std::ostringstream oss;
  EXPECT_THROW(render_heatmap(empty, oss), Error);
}

TEST(HeatmapTest, RejectsEmptyRamp) {
  EXPECT_THROW(shade_of(0.5, 0.0, 1.0, ""), Error);
}

}  // namespace
}  // namespace vstack::floorplan
