#include "floorplan/floorplan.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace vstack::floorplan {
namespace {

TEST(GeometryTest, RectBasics) {
  const Rect r{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.right(), 4.0);
  EXPECT_DOUBLE_EQ(r.top(), 6.0);
  EXPECT_TRUE(r.contains(2.0, 3.0));
  EXPECT_FALSE(r.contains(4.0, 3.0));  // right edge exclusive
}

TEST(GeometryTest, IntersectionArea) {
  const Rect a{0.0, 0.0, 2.0, 2.0};
  const Rect b{1.0, 1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(a.intersection_area(b), 1.0);
  const Rect c{5.0, 5.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(a.intersection_area(c), 0.0);
}

TEST(FloorplanTest, PaperLayerDimensions) {
  const Floorplan fp = paper_layer_floorplan();
  EXPECT_EQ(fp.core_count(), 16u);
  EXPECT_NEAR(fp.width * fp.height / units::mm2, 44.12, 1e-6);
  // Square 4x4 grid of square-ish tiles.
  EXPECT_NEAR(fp.width, fp.height, 1e-12);
}

TEST(FloorplanTest, EveryBlockInsideItsCoreTile) {
  const Floorplan fp = paper_layer_floorplan();
  for (const auto& b : fp.blocks) {
    const Rect tile = fp.core_rect(b.core_index);
    EXPECT_GE(b.rect.x, tile.x - 1e-12);
    EXPECT_GE(b.rect.y, tile.y - 1e-12);
    EXPECT_LE(b.rect.right(), tile.right() + 1e-12);
    EXPECT_LE(b.rect.top(), tile.top() + 1e-12);
  }
}

TEST(FloorplanTest, PlacedAreaFillsDie) {
  const Floorplan fp = paper_layer_floorplan();
  EXPECT_NEAR(fp.placed_area(), fp.width * fp.height,
              1e-9 * fp.width * fp.height);
}

TEST(FloorplanTest, BlocksDoNotOverlap) {
  const Floorplan fp = paper_layer_floorplan();
  // Check within one tile (all tiles are identical translations).
  std::vector<const PlacedBlock*> first_core;
  for (const auto& b : fp.blocks) {
    if (b.core_index == 0) first_core.push_back(&b);
  }
  for (std::size_t i = 0; i < first_core.size(); ++i) {
    for (std::size_t j = i + 1; j < first_core.size(); ++j) {
      EXPECT_NEAR(first_core[i]->rect.intersection_area(first_core[j]->rect),
                  0.0, 1e-15);
    }
  }
}

TEST(FloorplanTest, BlockAreasProportionalToModel) {
  const auto model = power::CorePowerModel::cortex_a9_like();
  const Floorplan fp = make_layer_floorplan(model, 1, 1);
  ASSERT_EQ(fp.blocks.size(), model.blocks().size());
  for (std::size_t b = 0; b < fp.blocks.size(); ++b) {
    EXPECT_NEAR(fp.blocks[b].rect.area(), model.blocks()[b].area,
                1e-9 * model.area())
        << model.blocks()[b].name;
  }
}

TEST(FloorplanTest, BlockNamesEncodeCoreAndBlock) {
  const Floorplan fp = paper_layer_floorplan();
  EXPECT_EQ(fp.blocks.front().name, "core0.fetch_l1i");
}

TEST(FloorplanTest, NonSquareGrids) {
  const auto model = power::CorePowerModel::cortex_a9_like();
  const Floorplan fp = make_layer_floorplan(model, 8, 2);
  EXPECT_EQ(fp.core_count(), 16u);
  EXPECT_NEAR(fp.width / fp.height, 4.0, 1e-9);
  EXPECT_NEAR(fp.width * fp.height, 16.0 * model.area(), 1e-12);
}

TEST(FloorplanTest, CoreRectRejectsOutOfRange) {
  const Floorplan fp = paper_layer_floorplan();
  EXPECT_THROW(fp.core_rect(16), Error);
}

}  // namespace
}  // namespace vstack::floorplan
