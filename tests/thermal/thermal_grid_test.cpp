#include "thermal/thermal_grid.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "floorplan/floorplan.h"
#include "power/core_power_model.h"

namespace vstack::thermal {
namespace {

floorplan::GridMap uniform_map(std::size_t nx, std::size_t ny, double total) {
  floorplan::GridMap m;
  m.nx = nx;
  m.ny = ny;
  m.values.assign(nx * ny, total / static_cast<double>(nx * ny));
  return m;
}

constexpr double kDie = 6.642e-3;  // ~sqrt(44.12 mm^2)

TEST(ThermalTest, ZeroPowerSitsAtAmbient) {
  ThermalConfig cfg;
  const auto r = solve_stack_temperature(cfg, kDie, kDie,
                                         {uniform_map(cfg.nx, cfg.ny, 0.0)});
  EXPECT_NEAR(r.max_celsius, cfg.ambient_celsius, 1e-9);
  EXPECT_NEAR(r.mean_celsius, cfg.ambient_celsius, 1e-9);
}

TEST(ThermalTest, SingleLayerRiseMatchesSinkResistance) {
  // With a uniform 10 W layer, nearly all heat leaves through the sink
  // (board path is 20 K/W vs 0.45 K/W): rise ~ P * R_parallel.
  ThermalConfig cfg;
  const double p = 10.0;
  const auto r = solve_stack_temperature(cfg, kDie, kDie,
                                         {uniform_map(cfg.nx, cfg.ny, p)});
  const double r_parallel = 1.0 / (1.0 / cfg.sink_resistance +
                                   1.0 / cfg.board_resistance);
  EXPECT_NEAR(r.mean_celsius - cfg.ambient_celsius, p * r_parallel,
              0.05 * p * r_parallel);
}

TEST(ThermalTest, MoreLayersRunHotter) {
  ThermalConfig cfg;
  const auto one = solve_stack_temperature(
      cfg, kDie, kDie, {uniform_map(cfg.nx, cfg.ny, 7.6)});
  std::vector<floorplan::GridMap> four(4, uniform_map(cfg.nx, cfg.ny, 7.6));
  const auto stacked = solve_stack_temperature(cfg, kDie, kDie, four);
  EXPECT_GT(stacked.max_celsius, one.max_celsius);
}

TEST(ThermalTest, EightLayerPaperStackStaysBelow100C) {
  // Paper Sec. 4.1: up to 8 layers of the 7.6 W processor remain below
  // 100 C with conventional air cooling.
  ThermalConfig cfg;
  std::vector<floorplan::GridMap> stack(8, uniform_map(cfg.nx, cfg.ny, 7.6));
  const auto r = solve_stack_temperature(cfg, kDie, kDie, stack);
  EXPECT_LT(r.max_celsius, 100.0);
  EXPECT_GT(r.max_celsius, 60.0);  // but clearly stressed
}

TEST(ThermalTest, TwelveLayersExceed100C) {
  ThermalConfig cfg;
  std::vector<floorplan::GridMap> stack(12, uniform_map(cfg.nx, cfg.ny, 7.6));
  const auto r = solve_stack_temperature(cfg, kDie, kDie, stack);
  EXPECT_GT(r.max_celsius, 100.0);
}

TEST(ThermalTest, MaxFeasibleLayersIsEightForPaperStack) {
  ThermalConfig cfg;
  const std::size_t n = max_feasible_layers(
      cfg, kDie, kDie, uniform_map(cfg.nx, cfg.ny, 7.6), 100.0, 16);
  EXPECT_GE(n, 7u);
  EXPECT_LE(n, 9u);
}

TEST(ThermalTest, HotspotFollowsPower) {
  ThermalConfig cfg;
  auto map = uniform_map(cfg.nx, cfg.ny, 2.0);
  map.at(2, 3) += 5.0;  // concentrated heater
  const auto r = solve_stack_temperature(cfg, kDie, kDie, {map});
  const auto& t = r.layer_temperature[0];
  double max_t = 0.0;
  std::size_t max_ix = 0, max_iy = 0;
  for (std::size_t iy = 0; iy < cfg.ny; ++iy) {
    for (std::size_t ix = 0; ix < cfg.nx; ++ix) {
      if (t.at(ix, iy) > max_t) {
        max_t = t.at(ix, iy);
        max_ix = ix;
        max_iy = iy;
      }
    }
  }
  EXPECT_EQ(max_ix, 2u);
  EXPECT_EQ(max_iy, 3u);
}

TEST(ThermalTest, BottomLayerIsHottestUnderTopSink) {
  // Heat flows up to the sink, so the package-side layer runs hottest.
  ThermalConfig cfg;
  std::vector<floorplan::GridMap> stack(4, uniform_map(cfg.nx, cfg.ny, 7.6));
  const auto r = solve_stack_temperature(cfg, kDie, kDie, stack);
  EXPECT_EQ(r.hottest_layer, 0u);
}

TEST(ThermalTest, BetterSinkCoolsStack) {
  ThermalConfig air;
  ThermalConfig liquid = air;
  liquid.sink_resistance = 0.05;
  std::vector<floorplan::GridMap> stack(8, uniform_map(air.nx, air.ny, 7.6));
  const auto r_air = solve_stack_temperature(air, kDie, kDie, stack);
  const auto r_liq = solve_stack_temperature(liquid, kDie, kDie, stack);
  EXPECT_LT(r_liq.max_celsius, r_air.max_celsius);
}

TEST(ThermalTest, RejectsMismatchedGrids) {
  ThermalConfig cfg;
  EXPECT_THROW(
      solve_stack_temperature(cfg, kDie, kDie, {uniform_map(4, 4, 1.0)}),
      Error);
}

TEST(ThermalTest, ConfigValidation) {
  ThermalConfig cfg;
  cfg.sink_resistance = 0.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = ThermalConfig{};
  cfg.nx = 1;
  EXPECT_THROW(cfg.validate(), Error);
}

}  // namespace
}  // namespace vstack::thermal
