// Spool server (service/server.h): terminal statuses, admission, graceful
// degradation, timeout classification, crash recovery, and interruption --
// all against a real temp spool with tiny stacks so each request is fast.
#include "service/server.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/study.h"
#include "service/request.h"

namespace fs = std::filesystem;

namespace vstack::service {
namespace {

const core::StudyContext& ctx() {
  static const core::StudyContext c = core::StudyContext::paper_defaults();
  return c;
}

class ServerTest : public testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(testing::TempDir()) /
            ("vstack_spool_" +
             std::string(
                 testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(root_);
    fs::create_directories(root_ / "incoming");
  }

  void TearDown() override { fs::remove_all(root_); }

  /// Small-but-real contingency request: ~tens of milliseconds.
  std::string small_request(const std::string& id,
                            const std::string& extra = "") {
    return "id = " + id +
           "\nkind = contingency\ntopology = stacked\nlayers = 2\n"
           "grid = 4\ntrials = 2\nfaults = 1\nseed = 11\n" +
           extra;
  }

  void submit(const std::string& id, const std::string& text) {
    std::ofstream(root_ / "incoming" / (id + ".req")) << text;
  }

  ServerOptions fast_options() {
    ServerOptions o;
    o.root = root_.string();
    o.poll_interval_s = 0.01;
    o.health_interval_s = 0.0;  // startup/shutdown snapshots only
    o.idle_exit_s = 0.05;
    o.execution.jobs = 1;
    o.retry.initial_backoff_s = 0.0;  // failures re-try immediately
    o.retry.jitter_fraction = 0.0;
    return o;
  }

  std::vector<std::string> responses() {
    std::vector<std::string> lines;
    std::ifstream in(root_ / "results" / "responses.jsonl");
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  static bool has_field(const std::string& line, const std::string& fragment) {
    return line.find(fragment) != std::string::npos;
  }

  fs::path root_;
};

TEST_F(ServerTest, RunsARequestToDone) {
  submit("job1", small_request("job1"));
  const ServerStats stats = SpoolServer(ctx(), fast_options()).run();
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_FALSE(stats.interrupted);
  EXPECT_TRUE(fs::exists(root_ / "done" / "job1.req"));
  EXPECT_TRUE(fs::exists(root_ / "health.json"));
  const auto lines = responses();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(has_field(lines[0], "\"id\":\"job1\"")) << lines[0];
  EXPECT_TRUE(has_field(lines[0], "\"status\":\"ok\"")) << lines[0];
  EXPECT_TRUE(has_field(lines[0], "\"survivable\":")) << lines[0];
}

TEST_F(ServerTest, InvalidRequestAnswersInvalid) {
  submit("badjob", "kind = campaign\nbogus = 1\n");
  const ServerStats stats = SpoolServer(ctx(), fast_options()).run();
  EXPECT_EQ(stats.invalid, 1u);
  EXPECT_TRUE(fs::exists(root_ / "failed" / "badjob.req"));
  const auto lines = responses();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(has_field(lines[0], "\"status\":\"invalid\"")) << lines[0];
  EXPECT_TRUE(has_field(lines[0], "line 2")) << lines[0];
}

TEST_F(ServerTest, QueueOverflowIsShedAsRejectedOverload) {
  ServerOptions o = fast_options();
  o.admission.max_queue_depth = 2;
  o.admission.degrade_trial_divisor = 1;  // isolate the overflow path
  for (int i = 0; i < 4; ++i) {
    std::string id = "q";
    id += std::to_string(i);
    submit(id, small_request(id));
  }
  const ServerStats stats = SpoolServer(ctx(), o).run();
  // Positions 2..3 shed on the first poll; the first two run normally.
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.served, 4u);
  EXPECT_TRUE(fs::exists(root_ / "failed" / "q2.req"));
  EXPECT_TRUE(fs::exists(root_ / "failed" / "q3.req"));
}

TEST_F(ServerTest, BackpressureDegradesTrialCounts) {
  ServerOptions o = fast_options();
  o.admission.max_queue_depth = 2;
  o.admission.degrade_depth_fraction = 1.0;  // degrade only at full depth
  o.admission.degrade_trial_divisor = 2;
  submit("d0", small_request("d0"));
  submit("d1", small_request("d1"));
  const ServerStats stats = SpoolServer(ctx(), o).run();
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_GE(stats.degraded, 1u) << "queue was at depth 2 for the first run";
  const auto lines = responses();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(has_field(lines[0], "\"degraded\":1")) << lines[0];
  // Degraded contingency runs half the trials' cases (plus N-1 planning is
  // unaffected); the response still reports what actually ran.
  EXPECT_TRUE(has_field(lines[1], "\"degraded\":0")) << lines[1];
}

TEST_F(ServerTest, RejectsOversizedRequest) {
  ServerOptions o = fast_options();
  o.admission.max_request_bytes = 1 << 20;
  submit("huge",
         "id = huge\nkind = contingency\ntopology = stacked\nlayers = 8\n"
         "grid = 64\ntrials = 2\nfaults = 1\nseed = 11\njobs = 8\n");
  const ServerStats stats = SpoolServer(ctx(), o).run();
  EXPECT_EQ(stats.rejected, 1u);
  const auto lines = responses();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(has_field(lines[0], "rejected-overload")) << lines[0];
}

TEST_F(ServerTest, ExpiredRequestDeadlineAnswersTimeout) {
  // A pre-expired per-request deadline cancels every chunk before it
  // commits: deterministic timeout, zero cases, still a terminal response.
  submit("slow", small_request("slow", "deadline_s = 1e-9\n"));
  const ServerStats stats = SpoolServer(ctx(), fast_options()).run();
  EXPECT_EQ(stats.timeout, 1u);
  EXPECT_TRUE(fs::exists(root_ / "done" / "slow.req"));
  const auto lines = responses();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(has_field(lines[0], "\"status\":\"timeout\"")) << lines[0];
}

TEST_F(ServerTest, RecoversUnansweredActiveRequest) {
  // Simulate a crash mid-run: the request was claimed into active/ but no
  // response was written.  Restart must adopt and finish it.
  fs::create_directories(root_ / "active");
  std::ofstream(root_ / "active" / "orphan.req") << small_request("orphan");
  const ServerStats stats = SpoolServer(ctx(), fast_options()).run();
  EXPECT_EQ(stats.recovered, 1u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_TRUE(fs::exists(root_ / "done" / "orphan.req"));
}

TEST_F(ServerTest, FinishesMoveForAnsweredActiveRequest) {
  // Crash between response-append and rename: the answer is durable, the
  // request file is still in active/.  Restart just completes the move --
  // no re-run, no duplicate response.
  fs::create_directories(root_ / "active");
  fs::create_directories(root_ / "results");
  std::ofstream(root_ / "active" / "dup.req") << small_request("dup");
  std::ofstream(root_ / "results" / "responses.jsonl")
      << "{\"kind\":\"vstack-response\",\"id\":\"dup\",\"status\":\"ok\"}\n";
  const ServerStats stats = SpoolServer(ctx(), fast_options()).run();
  EXPECT_EQ(stats.served, 0u) << "no re-run of an answered request";
  EXPECT_TRUE(fs::exists(root_ / "done" / "dup.req"));
  EXPECT_EQ(responses().size(), 1u) << "no duplicate response line";
}

TEST_F(ServerTest, PreCancelledStopTokenInterruptsImmediately) {
  ServerOptions o = fast_options();
  const Deadline stop = Deadline::cancellable();
  stop.cancel();
  o.stop = stop;
  submit("later", small_request("later"));
  const ServerStats stats = SpoolServer(ctx(), o).run();
  EXPECT_TRUE(stats.interrupted);
  EXPECT_EQ(stats.served, 0u);
  EXPECT_TRUE(fs::exists(root_ / "incoming" / "later.req"))
      << "unclaimed work stays queued for the next start";
}

TEST_F(ServerTest, MaxRequestsBoundsTheRun) {
  ServerOptions o = fast_options();
  o.max_requests = 1;
  o.idle_exit_s = 0.0;  // must exit via the request bound, not idleness
  submit("a1", small_request("a1"));
  submit("a2", small_request("a2"));
  const ServerStats stats = SpoolServer(ctx(), o).run();
  EXPECT_EQ(stats.served, 1u);
  EXPECT_TRUE(fs::exists(root_ / "incoming" / "a2.req"));
}

}  // namespace
}  // namespace vstack::service
