// Retry with capped exponential backoff + deterministic jitter
// (service/retry.h), driven entirely through the injected sleep hook --
// no real clock, no real sleeping.
#include "service/retry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/error.h"

namespace vstack::service {
namespace {

RetryPolicy no_jitter() {
  RetryPolicy p;
  p.max_attempts = 4;
  p.initial_backoff_s = 0.5;
  p.backoff_multiplier = 2.0;
  p.max_backoff_s = 10.0;
  p.jitter_fraction = 0.0;
  return p;
}

TEST(RetryPolicy, BackoffScheduleIsExponentialAndCapped) {
  RetryPolicy p = no_jitter();
  p.max_attempts = 16;
  EXPECT_DOUBLE_EQ(p.backoff_before(1, 7), 0.0);  // first try never waits
  EXPECT_DOUBLE_EQ(p.backoff_before(2, 7), 0.5);
  EXPECT_DOUBLE_EQ(p.backoff_before(3, 7), 1.0);
  EXPECT_DOUBLE_EQ(p.backoff_before(4, 7), 2.0);
  EXPECT_DOUBLE_EQ(p.backoff_before(5, 7), 4.0);
  EXPECT_DOUBLE_EQ(p.backoff_before(6, 7), 8.0);
  EXPECT_DOUBLE_EQ(p.backoff_before(7, 7), 10.0);  // cap
  EXPECT_DOUBLE_EQ(p.backoff_before(12, 7), 10.0);
}

TEST(RetryPolicy, JitterIsBoundedAndDeterministic) {
  RetryPolicy p = no_jitter();
  p.jitter_fraction = 0.2;
  for (std::uint64_t salt = 0; salt < 50; ++salt) {
    const double b = p.backoff_before(3, salt);
    EXPECT_GE(b, 1.0 * (1.0 - 0.2)) << "salt " << salt;
    EXPECT_LE(b, 1.0 * (1.0 + 0.2)) << "salt " << salt;
    EXPECT_DOUBLE_EQ(b, p.backoff_before(3, salt)) << "same inputs";
  }
  // Different salts decorrelate: the schedule is not constant.
  EXPECT_NE(p.backoff_before(3, 1), p.backoff_before(3, 2));
}

TEST(RetryPolicy, ValidateRejectsBadShapes) {
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_THROW(p.validate(), Error);
  p = RetryPolicy{};
  p.max_attempts = 17;
  EXPECT_THROW(p.validate(), Error);
  p = RetryPolicy{};
  p.jitter_fraction = 1.0;
  EXPECT_THROW(p.validate(), Error);
  p = RetryPolicy{};
  p.max_backoff_s = p.initial_backoff_s / 2.0;
  EXPECT_THROW(p.validate(), Error);
}

TEST(RunWithRetry, FirstSuccessSleepsNever) {
  std::vector<double> sleeps;
  const RetryRun run = run_with_retry(
      no_jitter(), Deadline(), 1, [](std::size_t) {},
      [&](double s) { sleeps.push_back(s); });
  EXPECT_TRUE(run.ok);
  EXPECT_EQ(run.attempts, 1u);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_DOUBLE_EQ(run.backoff_total_s, 0.0);
}

TEST(RunWithRetry, RecoversAfterTransientFailures) {
  std::vector<double> sleeps;
  std::size_t calls = 0;
  const RetryRun run = run_with_retry(
      no_jitter(), Deadline(), 1,
      [&](std::size_t attempt) {
        EXPECT_EQ(attempt, calls + 1);
        if (++calls < 3) throw std::runtime_error("transient");
      },
      [&](double s) { sleeps.push_back(s); });
  EXPECT_TRUE(run.ok);
  EXPECT_EQ(run.attempts, 3u);
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_DOUBLE_EQ(sleeps[0], 0.5);
  EXPECT_DOUBLE_EQ(sleeps[1], 1.0);
  EXPECT_DOUBLE_EQ(run.backoff_total_s, 1.5);
}

TEST(RunWithRetry, GivesUpAfterMaxAttempts) {
  std::size_t calls = 0;
  const RetryRun run = run_with_retry(
      no_jitter(), Deadline(), 1,
      [&](std::size_t) {
        ++calls;
        throw std::runtime_error("persistent failure");
      },
      [](double) {});
  EXPECT_FALSE(run.ok);
  EXPECT_EQ(run.attempts, 4u);
  EXPECT_EQ(calls, 4u);
  EXPECT_NE(run.last_error.find("persistent failure"), std::string::npos);
}

TEST(RunWithRetry, ExpiredStopTokenPreventsAnyAttempt) {
  const Deadline stop = Deadline::cancellable();
  stop.cancel();
  std::size_t calls = 0;
  const RetryRun run = run_with_retry(
      no_jitter(), stop, 1, [&](std::size_t) { ++calls; }, [](double) {});
  EXPECT_FALSE(run.ok);
  EXPECT_EQ(run.attempts, 0u);
  EXPECT_EQ(calls, 0u);
}

TEST(RunWithRetry, StopDuringBackoffCancelsTheRetry) {
  const Deadline stop = Deadline::cancellable();
  std::size_t calls = 0;
  const RetryRun run = run_with_retry(
      no_jitter(), stop, 1,
      [&](std::size_t) {
        ++calls;
        throw std::runtime_error("fails once");
      },
      [&](double) { stop.cancel(); });  // signal arrives mid-sleep
  EXPECT_FALSE(run.ok);
  EXPECT_EQ(calls, 1u) << "no second attempt after the interrupted sleep";
}

TEST(RetrySalt, StableAndDistinct) {
  EXPECT_EQ(retry_salt("job1"), retry_salt("job1"));
  EXPECT_NE(retry_salt("job1"), retry_salt("job2"));
}

}  // namespace
}  // namespace vstack::service
