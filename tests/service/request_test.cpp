// Service request parsing (service/request.h): the config_io grammar with
// line-numbered strictness, id agreement, validation, and round-tripping.
#include "service/request.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"

namespace vstack::service {
namespace {

std::string error_of(const std::string& text, const std::string& id = "r1") {
  try {
    parse_request(text, id, "r1.req");
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

TEST(RequestParse, MinimalCampaign) {
  const RequestSpec spec = parse_request("kind = campaign\n", "r1", "r1.req");
  EXPECT_EQ(spec.id, "r1");
  EXPECT_EQ(spec.kind, RequestKind::Campaign);
  EXPECT_TRUE(spec.stacked);
  EXPECT_EQ(spec.layers, 4u);
  EXPECT_EQ(spec.trials, 8u);
}

TEST(RequestParse, FullRequest) {
  const std::string text =
      "# a comment\n"
      "id = job7\n"
      "kind = contingency\n"
      "topology = regular\n"
      "layers = 6\n"
      "grid = 10\n"
      "imbalance = 0.25\n"
      "trials = 12\n"
      "faults = 3\n"
      "seed = 99\n"
      "mode = n-1\n"
      "deadline_s = 30\n"
      "jobs = 2\n";
  const RequestSpec spec = parse_request(text, "job7", "job7.req");
  EXPECT_EQ(spec.kind, RequestKind::Contingency);
  EXPECT_FALSE(spec.stacked);
  EXPECT_EQ(spec.layers, 6u);
  EXPECT_EQ(spec.grid, 10u);
  EXPECT_DOUBLE_EQ(spec.imbalance, 0.25);
  EXPECT_EQ(spec.trials, 12u);
  EXPECT_EQ(spec.faults_per_trial, 3u);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_FALSE(spec.monte_carlo);
  EXPECT_DOUBLE_EQ(spec.deadline_s, 30.0);
  EXPECT_EQ(spec.jobs, 2u);
}

TEST(RequestParse, ErrorsCarrySourceAndLineNumber) {
  const std::string err = error_of("kind = campaign\nbogus = 1\n");
  EXPECT_NE(err.find("r1.req"), std::string::npos) << err;
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("bogus"), std::string::npos) << err;
}

TEST(RequestParse, MissingKindRejected) {
  EXPECT_NE(error_of("layers = 4\n").find("kind"), std::string::npos);
}

TEST(RequestParse, UnknownKindNamesTheLine) {
  const std::string err = error_of("kind = warp\n");
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
}

TEST(RequestParse, DuplicateKeyRejected) {
  const std::string err = error_of("kind = campaign\nlayers = 4\nlayers = 6\n");
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
  EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
}

TEST(RequestParse, IdMismatchRejected) {
  const std::string err = error_of("id = other\nkind = campaign\n");
  EXPECT_NE(err.find("line 1"), std::string::npos) << err;
  EXPECT_NE(err.find("other"), std::string::npos) << err;
}

TEST(RequestParse, BadNumberNamesTheLine) {
  const std::string err = error_of("kind = campaign\nimbalance = fast\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(RequestParse, CommentsAndBlanksIgnored) {
  const RequestSpec spec = parse_request(
      "\n# comment\n; also a comment\nkind = sweep\nfigure = 8\n", "r1",
      "r1.req");
  EXPECT_EQ(spec.kind, RequestKind::Sweep);
  EXPECT_EQ(spec.figure, "8");
}

TEST(RequestParse, RoundTrips) {
  RequestSpec spec;
  spec.id = "rt9";
  spec.kind = RequestKind::RideThrough;
  spec.stacked = true;
  spec.layers = 8;
  spec.keep = 16;
  spec.fault_level = 3;
  spec.deadline_s = 12.5;
  const RequestSpec back =
      parse_request(write_request(spec), "rt9", "rt9.req");
  EXPECT_EQ(back.kind, RequestKind::RideThrough);
  EXPECT_EQ(back.layers, 8u);
  EXPECT_EQ(back.keep, 16u);
  EXPECT_EQ(back.fault_level, 3u);
  EXPECT_DOUBLE_EQ(back.deadline_s, 12.5);
}

TEST(RequestSpecValidate, RejectsBadShapes) {
  RequestSpec spec;
  spec.id = "v";
  spec.layers = 0;
  EXPECT_THROW(spec.validate(), Error);
  spec = RequestSpec{};
  spec.id = "v";
  spec.imbalance = 1.5;
  EXPECT_THROW(spec.validate(), Error);
  spec = RequestSpec{};
  spec.id = "v";
  spec.trials = 0;
  EXPECT_THROW(spec.validate(), Error);
}

TEST(RequestSpec, EstimatedBytesScalesWithJobs) {
  RequestSpec spec;
  spec.id = "e";
  EXPECT_GT(spec.estimated_bytes(1), 0u);
  EXPECT_EQ(spec.estimated_bytes(4), 4 * spec.estimated_bytes(1));
  RequestSpec big = spec;
  big.grid = 32;
  big.layers = 8;
  EXPECT_GT(big.estimated_bytes(1), spec.estimated_bytes(1));
}

}  // namespace
}  // namespace vstack::service
