// Admission control and graceful degradation (service/admission.h): the
// accept / degrade / reject decision as a pure function of queue pressure.
#include "service/admission.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::service {
namespace {

AdmissionOptions default_options() {
  AdmissionOptions o;  // depth 16, 512 MiB, degrade at 50%, divisor 4
  return o;
}

TEST(AdmissionOptions, DegradeThresholdCeilsTheFraction) {
  AdmissionOptions o = default_options();
  EXPECT_EQ(o.degrade_threshold(), 8u);
  o.max_queue_depth = 5;
  o.degrade_depth_fraction = 0.5;
  EXPECT_EQ(o.degrade_threshold(), 3u);  // ceil(2.5)
  o.degrade_depth_fraction = 0.01;
  EXPECT_EQ(o.degrade_threshold(), 1u);  // floor of one
}

TEST(AdmissionOptions, ValidateRejectsBadShapes) {
  AdmissionOptions o = default_options();
  o.max_queue_depth = 0;
  EXPECT_THROW(o.validate(), Error);
  o = default_options();
  o.max_request_bytes = 1024;
  EXPECT_THROW(o.validate(), Error);
  o = default_options();
  o.degrade_depth_fraction = 0.0;
  EXPECT_THROW(o.validate(), Error);
  o = default_options();
  o.degrade_trial_divisor = 0;
  EXPECT_THROW(o.validate(), Error);
}

TEST(AdmissionController, AcceptsLightLoad) {
  const AdmissionController c(default_options());
  const AdmissionVerdict v = c.decide(1, 1 << 20);
  EXPECT_EQ(v.decision, AdmissionDecision::Accept);
  EXPECT_TRUE(v.reason.empty());
}

TEST(AdmissionController, DegradesAtTheThreshold) {
  const AdmissionController c(default_options());
  EXPECT_EQ(c.decide(7, 1 << 20).decision, AdmissionDecision::Accept);
  const AdmissionVerdict v = c.decide(8, 1 << 20);
  EXPECT_EQ(v.decision, AdmissionDecision::Degrade);
  EXPECT_FALSE(v.reason.empty());
}

TEST(AdmissionController, RejectsQueueOverflow) {
  const AdmissionController c(default_options());
  EXPECT_EQ(c.decide(16, 1 << 20).decision, AdmissionDecision::Degrade);
  const AdmissionVerdict v = c.decide(17, 1 << 20);
  EXPECT_EQ(v.decision, AdmissionDecision::Reject);
  EXPECT_NE(v.reason.find("queue depth"), std::string::npos);
}

TEST(AdmissionController, RejectsOversizedRequestRegardlessOfQueue) {
  const AdmissionController c(default_options());
  const AdmissionVerdict v = c.decide(1, (513ull << 20));
  EXPECT_EQ(v.decision, AdmissionDecision::Reject);
  EXPECT_NE(v.reason.find("MiB"), std::string::npos);
}

TEST(AdmissionController, DivisorOneDisablesDegradation) {
  AdmissionOptions o = default_options();
  o.degrade_trial_divisor = 1;
  const AdmissionController c(o);
  EXPECT_EQ(c.decide(12, 1 << 20).decision, AdmissionDecision::Accept);
  EXPECT_EQ(c.degraded_trials(8), 8u);
}

TEST(AdmissionController, OverflowsByPosition) {
  const AdmissionController c(default_options());
  EXPECT_FALSE(c.overflows(0));
  EXPECT_FALSE(c.overflows(15));
  EXPECT_TRUE(c.overflows(16));
}

TEST(AdmissionController, DegradedTrialsFloorAtOne) {
  const AdmissionController c(default_options());
  EXPECT_EQ(c.degraded_trials(16), 4u);
  EXPECT_EQ(c.degraded_trials(8), 2u);
  EXPECT_EQ(c.degraded_trials(2), 1u);
  EXPECT_EQ(c.degraded_trials(0), 1u);
}

TEST(AdmissionDecision, ToString) {
  EXPECT_STREQ(to_string(AdmissionDecision::Accept), "accept");
  EXPECT_STREQ(to_string(AdmissionDecision::Degrade), "degrade");
  EXPECT_STREQ(to_string(AdmissionDecision::Reject), "reject");
}

}  // namespace
}  // namespace vstack::service
