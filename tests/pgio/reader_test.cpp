// Happy-path reader coverage: value suffixes, card bucketing, the via-short
// idioms, ground aliases, pad sign conventions, and the golden-solution
// parser.  Malformed inputs live in malformed_test.cpp.
#include "pgio/reader.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::pgio {
namespace {

TEST(ParseGridValue, SpiceSuffixes) {
  EXPECT_DOUBLE_EQ(parse_grid_value("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(parse_grid_value("1.5e-2"), 0.015);
  EXPECT_DOUBLE_EQ(parse_grid_value("100f"), 100e-15);
  EXPECT_DOUBLE_EQ(parse_grid_value("5p"), 5e-12);
  EXPECT_DOUBLE_EQ(parse_grid_value("4.7n"), 4.7e-9);
  EXPECT_DOUBLE_EQ(parse_grid_value("3u"), 3e-6);
  EXPECT_DOUBLE_EQ(parse_grid_value("2m"), 2e-3);
  EXPECT_DOUBLE_EQ(parse_grid_value("1k"), 1e3);
  EXPECT_DOUBLE_EQ(parse_grid_value("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parse_grid_value("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_grid_value("2t"), 2e12);
  EXPECT_DOUBLE_EQ(parse_grid_value("-0.5"), -0.5);
}

TEST(ParseGridValue, Rejections) {
  EXPECT_THROW(parse_grid_value(""), Error);
  EXPECT_THROW(parse_grid_value("abc"), Error);
  EXPECT_THROW(parse_grid_value("1x"), Error);
  EXPECT_THROW(parse_grid_value("1kk"), Error);
  EXPECT_THROW(parse_grid_value("1e400"), Error);  // overflows to inf
}

TEST(ReadNetlist, BucketsCardsByRole) {
  const PgNetlist n = read_netlist_text(
      "* header comment\n"
      ".title demo grid\n"
      "R1 a b 0.1    ; trailing comment\n"
      "R2 b 0 0.2\n"
      "Rvia a c 0\n"
      "Vmeter c d 0\n"
      "V1 a 0 1.0\n"
      "I1 b 0 0.5\n"
      "C1 b gnd 10p\n"
      ".shorts d e\n"
      ".op\n"
      ".end\n");
  EXPECT_EQ(n.title, "demo grid");
  EXPECT_EQ(n.resistors.size(), 2u);
  EXPECT_EQ(n.shorts.size(), 3u);  // 0-ohm R, 0 V "ammeter", .shorts
  EXPECT_EQ(n.pads.size(), 1u);
  EXPECT_EQ(n.loads.size(), 1u);
  EXPECT_EQ(n.caps.size(), 1u);
  EXPECT_EQ(n.node_count(), 5u);  // a b c d e; ground never interned
  EXPECT_EQ(n.line_count, 12u);
  EXPECT_EQ(n.element_count(), 8u);
}

TEST(ReadNetlist, GroundAliasesAreOneNet) {
  const PgNetlist n = read_netlist_text(
      "R1 a 0 1\n"
      "R2 b gnd 1\n"
      "R3 c GND 1\n"
      "R4 d G 1\n"
      "R5 e Gnd 1\n"
      ".end\n");
  EXPECT_EQ(n.node_count(), 5u);
  for (const auto& r : n.resistors) EXPECT_EQ(r.b, kGroundNode);
}

TEST(ReadNetlist, PadSignConvention) {
  // V n+ n- val fixes V(n+) - V(n-) = val; with n+ = ground the pad node
  // sits at -val.
  const PgNetlist n = read_netlist_text(
      "Vp a 0 1.8\n"
      "Vn 0 b 0.9\n"
      ".end\n");
  ASSERT_EQ(n.pads.size(), 2u);
  EXPECT_DOUBLE_EQ(n.pads[0].value, 1.8);
  EXPECT_DOUBLE_EQ(n.pads[1].value, -0.9);
  const auto nets = n.net_potentials();
  ASSERT_EQ(nets.size(), 2u);
  EXPECT_DOUBLE_EQ(nets[0], 1.8);
  EXPECT_DOUBLE_EQ(nets[1], -0.9);
}

TEST(ReadNetlist, ElementCarriesSourceLine) {
  const PgNetlist n = read_netlist_text("* one\n\nR1 a b 2k\n");
  ASSERT_EQ(n.resistors.size(), 1u);
  EXPECT_EQ(n.resistors[0].line, 3u);
  EXPECT_DOUBLE_EQ(n.resistors[0].value, 2000.0);
}

TEST(LayerNames, BenchmarkGrammar) {
  EXPECT_EQ(layer_of_node_name("n3_140_8126"), 3);
  EXPECT_EQ(layer_of_node_name("n1_0_0"), 1);
  EXPECT_EQ(layer_of_node_name("foo"), -1);
  EXPECT_EQ(layer_of_node_name("n_1_2"), -1);
  EXPECT_EQ(layer_of_node_name("n1001_0_0"), -1);  // beyond the sane range

  const PgNetlist n = read_netlist_text(
      "R1 n1_0_0 n1_1_0 1\n"
      "R2 n3_0_0 other 1\n"
      ".end\n");
  const auto hist = layer_histogram(n);
  EXPECT_EQ(hist[0], 1u);  // "other"
  EXPECT_EQ(hist[2], 2u);  // layer 1
  EXPECT_EQ(hist[4], 1u);  // layer 3
}

TEST(NodeTable, InternSurvivesRehash) {
  NodeTable t;
  for (int i = 0; i < 5000; ++i) {
    const std::string name = "n1_" + std::to_string(i) + "_7";
    EXPECT_EQ(t.intern(name), static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(t.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    const std::string name = "n1_" + std::to_string(i) + "_7";
    EXPECT_EQ(t.find(name), static_cast<std::uint32_t>(i));
    EXPECT_EQ(t.name(static_cast<std::uint32_t>(i)), name);
  }
  EXPECT_EQ(t.find("absent"), NodeTable::kNotFound);
}

TEST(ReadSolution, ParsesAndLooksUp) {
  const GoldenSolution s = read_solution_text(
      "* golden voltages\n"
      "n1_0_0 1.0\n"
      "n1_1_0 0.95   ; almost\n"
      "G 0\n");
  EXPECT_EQ(s.size(), 2u);  // ground entries are validated, not stored
  double v = -1.0;
  ASSERT_TRUE(s.lookup("n1_1_0", &v));
  EXPECT_DOUBLE_EQ(v, 0.95);
  ASSERT_TRUE(s.lookup("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_FALSE(s.lookup("absent", &v));
}

}  // namespace
}  // namespace vstack::pgio
