// Benchmark-format writer: normalized-form round-trip bit identity, value
// fidelity through %.17g, and the pdn::PdnModel bridge (including the
// converter linearization that requires a solved operating point).
#include "pgio/export.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "floorplan/floorplan.h"
#include "pgio/grid.h"
#include "pgio/reader.h"

namespace vstack::pgio {
namespace {

std::string fixture(const std::string& name) {
  return std::string(VSTACK_PGIO_TEST_DATA) + "/" + name;
}

TEST(ExportNetlist, RoundTripIsBitIdentical) {
  for (const char* name : {"ladder4", "mesh3x3", "twonet_vias"}) {
    const PgNetlist original =
        read_netlist_file(fixture(std::string(name) + ".spice"));
    const std::string first = write_netlist(original);
    const PgNetlist reparsed = read_netlist_text(first, "round-trip");
    const std::string second = write_netlist(reparsed);
    EXPECT_EQ(first, second) << name;
    EXPECT_EQ(reparsed.node_count(), original.node_count()) << name;
    EXPECT_EQ(reparsed.element_count(), original.element_count()) << name;
  }
}

TEST(ExportNetlist, ValuesSurviveExactly) {
  PgNetlist n;
  n.source = "values";
  const std::uint32_t a = n.nodes.intern("a");
  const std::uint32_t b = n.nodes.intern("b");
  // Doubles that do not have short decimal forms.
  n.resistors.push_back({a, b, 1, 0.1});
  n.resistors.push_back({a, kGroundNode, 2, 1.0 / 3.0});
  n.loads.push_back({b, kGroundNode, 3, 2.5e-13});
  n.pads.push_back({a, kGroundNode, 4, 0.9999999999999999});
  const PgNetlist back = read_netlist_text(write_netlist(n), "back");
  ASSERT_EQ(back.resistors.size(), 2u);
  EXPECT_EQ(back.resistors[0].value, 0.1);
  EXPECT_EQ(back.resistors[1].value, 1.0 / 3.0);
  EXPECT_EQ(back.loads[0].value, 2.5e-13);
  EXPECT_EQ(back.pads[0].value, 0.9999999999999999);
}

TEST(ExportNetlist, SolutionIsPreservedThroughExport) {
  // An exported grid must solve to the same voltages as the original.
  const PgNetlist original = read_netlist_file(fixture("mesh3x3.spice"));
  const ImportedGrid grid_a(original);
  const PgNetlist reparsed =
      read_netlist_text(write_netlist(original), "re-export");
  const ImportedGrid grid_b(reparsed);
  const GridSolution sa = grid_a.solve();
  const GridSolution sb = grid_b.solve();
  ASSERT_TRUE(sa.solve_ok && sb.solve_ok);
  for (std::uint32_t id = 0; id < original.node_count(); ++id) {
    const std::string name(original.nodes.name(id));
    double va = 0.0, vb = 0.0;
    ASSERT_TRUE(grid_a.node_voltage(sa, name, &va));
    ASSERT_TRUE(grid_b.node_voltage(sb, name, &vb));
    EXPECT_NEAR(va, vb, 1e-12) << name;
  }
}

TEST(FromPdnModel, RegularStackExportsAndResolves) {
  pdn::StackupConfig cfg;
  cfg.layer_count = 2;
  cfg.grid_nx = cfg.grid_ny = 4;
  const pdn::PdnModel model(cfg, floorplan::paper_layer_floorplan());
  std::vector<pdn::LoadInjection> loads;
  for (std::size_t layer = 0; layer < cfg.layer_count; ++layer) {
    loads.push_back({model.network().vdd_node(layer, 5),
                     model.network().gnd_node(layer, 5), 0.2});
  }
  const pdn::PdnSolution reference = model.solve(loads);
  ASSERT_TRUE(reference.solve_ok) << reference.diagnostic;

  const PgNetlist exported = from_pdn_model(model, loads);
  const ImportedGrid grid(exported);
  const GridSolution sol = grid.solve();
  ASSERT_TRUE(sol.solve_ok) << sol.diagnostic;

  for (std::size_t layer = 0; layer < cfg.layer_count; ++layer) {
    for (std::size_t cell : {std::size_t{0}, std::size_t{5}}) {
      const std::string name = "n" + std::to_string(2 * layer + 2) + "_" +
                               std::to_string(cell % cfg.grid_nx) + "_" +
                               std::to_string(cell / cfg.grid_nx);
      double v = 0.0;
      ASSERT_TRUE(grid.node_voltage(sol, name, &v)) << name;
      EXPECT_NEAR(
          v, reference.node_voltages[model.network().vdd_node(layer, cell)],
          1e-6)
          << name;
    }
  }
}

TEST(FromPdnModel, ConvertersRequireAnOperatingPoint) {
  pdn::StackupConfig cfg;
  cfg.topology = pdn::PdnTopology::VoltageStacked;
  cfg.layer_count = 2;
  cfg.grid_nx = cfg.grid_ny = 4;
  const pdn::PdnModel model(cfg, floorplan::paper_layer_floorplan());
  ASSERT_FALSE(model.network().converters().empty());
  std::vector<pdn::LoadInjection> loads;
  for (std::size_t layer = 0; layer < cfg.layer_count; ++layer) {
    loads.push_back({model.network().vdd_node(layer, 0),
                     model.network().gnd_node(layer, 0), 0.1});
  }
  EXPECT_THROW(from_pdn_model(model, loads), Error);

  const pdn::PdnSolution op = model.solve(loads);
  ASSERT_TRUE(op.solve_ok) << op.diagnostic;
  const PgNetlist exported = from_pdn_model(model, loads, &op);
  // Converters become paired current injections, never R/V cards.
  EXPECT_FALSE(exported.loads.empty());
  const ImportedGrid grid(exported);
  const GridSolution sol = grid.solve();
  ASSERT_TRUE(sol.solve_ok) << sol.diagnostic;
  // The linearized netlist reproduces the operating point: spot-check the
  // stacked rail potentials on layer 1.
  for (std::size_t cell : {std::size_t{0}, std::size_t{7}}) {
    const std::string name =
        "n4_" + std::to_string(cell % cfg.grid_nx) + "_" +
        std::to_string(cell / cfg.grid_nx);
    double v = 0.0;
    ASSERT_TRUE(grid.node_voltage(sol, name, &v)) << name;
    EXPECT_NEAR(v, op.node_voltages[model.network().vdd_node(1, cell)], 1e-5)
        << name;
  }
}

}  // namespace
}  // namespace vstack::pgio
