// ImportedGrid semantics: short collapse, slot numbering, exact DC solves
// against the hand-solved fixtures, floating-island handling, fault
// mutators, and the cached-system/warm-start machinery.
#include "pgio/grid.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/error.h"
#include "pgio/reader.h"

namespace vstack::pgio {
namespace {

std::string fixture(const std::string& name) {
  return std::string(VSTACK_PGIO_TEST_DATA) + "/" + name;
}

double volts(const ImportedGrid& grid, const GridSolution& sol,
             const std::string& node) {
  double v = 0.0;
  EXPECT_TRUE(grid.node_voltage(sol, node, &v)) << node;
  return v;
}

TEST(ImportedGrid, LadderSolvesExactly) {
  const PgNetlist n = read_netlist_file(fixture("ladder4.spice"));
  const ImportedGrid grid(n);
  EXPECT_EQ(grid.unknown_count(), 3u);
  EXPECT_EQ(grid.fixed_count(), 2u);  // the pad and the ground net

  const GridSolution sol = grid.solve();
  ASSERT_TRUE(sol.solve_ok) << sol.diagnostic;
  EXPECT_NEAR(volts(grid, sol, "n1_0_0"), 1.0, 1e-12);
  EXPECT_NEAR(volts(grid, sol, "n1_1_0"), 0.7, 1e-9);
  EXPECT_NEAR(volts(grid, sol, "n1_2_0"), 0.5, 1e-9);
  EXPECT_NEAR(volts(grid, sol, "n1_3_0"), 0.4, 1e-9);
  EXPECT_NEAR(volts(grid, sol, "0"), 0.0, 0.0);
  EXPECT_NEAR(sol.max_deviation_v, 0.6, 1e-9);
  EXPECT_NEAR(sol.max_deviation_fraction, 0.6, 1e-9);
  EXPECT_EQ(sol.worst_node, "n1_3_0");
  EXPECT_NEAR(sol.supply_current_a, 3.0, 1e-8);
  EXPECT_NEAR(sol.load_current_a, 3.0, 1e-12);
  EXPECT_EQ(sol.floating_islands, 0u);
}

TEST(ImportedGrid, ShortsCollapseToOneSlot) {
  const PgNetlist n = read_netlist_file(fixture("twonet_vias.spice"));
  const ImportedGrid grid(n);
  // All three short spellings (0-ohm R, 0 V V card, .shorts) collapse.
  EXPECT_EQ(grid.slot_of("n1_0_0"), grid.slot_of("n2_0_0"));
  EXPECT_EQ(grid.slot_of("n1_1_0"), grid.slot_of("n2_1_0"));
  EXPECT_EQ(grid.slot_of("n1_2_0"), grid.slot_of("n2_2_0"));
  EXPECT_NE(grid.slot_of("n1_1_0"), grid.slot_of("n1_2_0"));
  EXPECT_EQ(grid.slot_of("absent"), kNoSlot);

  const GridSolution sol = grid.solve();
  ASSERT_TRUE(sol.solve_ok) << sol.diagnostic;
  EXPECT_NEAR(volts(grid, sol, "n1_1_0"), 0.95, 1e-9);
  EXPECT_NEAR(volts(grid, sol, "n2_2_0"), 0.90, 1e-9);
  EXPECT_NEAR(volts(grid, sol, "m1_1_0"), 1.70, 1e-9);
  EXPECT_NEAR(volts(grid, sol, "m1_2_0"), 1.60, 1e-9);
  // Deviation is normalized by the largest pad magnitude (1.8 V here).
  EXPECT_NEAR(sol.max_deviation_fraction, 0.2 / 1.8, 1e-9);
}

TEST(ImportedGrid, PadConflictsDetectedAfterCollapse) {
  // The reader only sees per-name duplicates; shorting two pads at
  // different potentials is a post-collapse conflict the grid must catch.
  const PgNetlist merged = read_netlist_text(
      "V1 a 0 1.0\nV2 b 0 1.2\nR1 a b 0\n.end\n");
  try {
    const ImportedGrid grid(merged);
    FAIL() << "conflicting shorted pads accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shorted to pad node"), std::string::npos) << what;
    EXPECT_NE(what.find("<netlist>:"), std::string::npos) << what;
  }

  const PgNetlist grounded =
      read_netlist_text("V1 a 0 1.0\n.shorts a gnd\n.end\n");
  EXPECT_THROW(ImportedGrid{grounded}, Error);

  // Equal-potential pads shorted together are fine (parallel pins).
  const PgNetlist dual =
      read_netlist_text("V1 a 0 1.0\nV2 b 0 1.0\nR1 a b 0\nR2 a c 1\n.end\n");
  const ImportedGrid grid(dual);
  EXPECT_EQ(grid.slot_of("a"), grid.slot_of("b"));
}

TEST(ImportedGrid, FloatingIslandIsPinnedAndReported) {
  const PgNetlist n = read_netlist_text(
      "V1 a 0 1.0\n"
      "R1 a b 1\n"
      "R2 c d 1\n"     // disconnected pair ...
      "I1 c 0 0.1\n"   // ... carrying load current
      ".end\n");
  const ImportedGrid grid(n);
  EXPECT_FALSE(grid.is_floating(grid.slot_of("b")));
  EXPECT_TRUE(grid.is_floating(grid.slot_of("c")));
  EXPECT_TRUE(grid.is_floating(grid.slot_of("d")));

  const GridSolution sol = grid.solve();
  ASSERT_TRUE(sol.solve_ok) << sol.diagnostic;  // weak pin keeps it regular
  EXPECT_EQ(sol.floating_islands, 1u);
  EXPECT_EQ(sol.floating_nodes, 2u);
  EXPECT_NEAR(sol.floating_load_current_a, 0.1, 1e-12);
  // The anchored part is unloaded: b sits at the pad potential, and the
  // deviation metric ignores the floating slots' weak-pin artifacts.
  EXPECT_NEAR(volts(grid, sol, "b"), 1.0, 1e-9);
  EXPECT_NEAR(sol.max_deviation_v, 0.0, 1e-9);
}

TEST(ImportedGrid, OpenConductorStrandsDownstreamLoads) {
  const PgNetlist n = read_netlist_file(fixture("ladder4.spice"));
  ImportedGrid grid(n);
  const std::size_t epoch = grid.topology_epoch();
  grid.remove_conductor_units(1, 1);  // open n1_1_0 -- n1_2_0
  EXPECT_GT(grid.topology_epoch(), epoch);

  const GridSolution sol = grid.solve();
  ASSERT_TRUE(sol.solve_ok) << sol.diagnostic;
  // n1_2_0 and n1_3_0 are now an orphaned island with 2 A stranded.
  EXPECT_EQ(sol.floating_islands, 1u);
  EXPECT_EQ(sol.floating_nodes, 2u);
  EXPECT_NEAR(sol.floating_load_current_a, 2.0, 1e-12);
  // The surviving segment still feeds its 1 A load exactly.
  EXPECT_NEAR(volts(grid, sol, "n1_1_0"), 0.9, 1e-9);
}

TEST(ImportedGrid, DegradeAndLeakageMutators) {
  const PgNetlist n = read_netlist_file(fixture("ladder4.spice"));
  ImportedGrid grid(n);
  grid.scale_conductor_resistance(0, 2.0);  // first segment: 0.1 -> 0.2
  GridSolution sol = grid.solve();
  ASSERT_TRUE(sol.solve_ok) << sol.diagnostic;
  // Drops become 0.6/0.2/0.1: n1_1_0 = 0.4.
  EXPECT_NEAR(volts(grid, sol, "n1_1_0"), 0.4, 1e-9);

  // A hard leakage short drags its node toward ground.
  ImportedGrid leaky(n);
  const double before = volts(leaky, leaky.solve(), "n1_3_0");
  leaky.add_leakage_to_ground(leaky.slot_of("n1_3_0"), 0.05);
  sol = leaky.solve();
  ASSERT_TRUE(sol.solve_ok) << sol.diagnostic;
  EXPECT_LT(volts(leaky, sol, "n1_3_0"), before);
}

TEST(ImportedGrid, LoadScalingIsLinear) {
  const PgNetlist n = read_netlist_file(fixture("ladder4.spice"));
  const ImportedGrid grid(n);
  const GridSolution s1 = grid.solve();
  const GridSolution s2 = grid.solve_scaled(2.0);
  ASSERT_TRUE(s1.solve_ok && s2.solve_ok);
  EXPECT_NEAR(s2.max_deviation_v, 2.0 * s1.max_deviation_v, 1e-8);
  EXPECT_NEAR(s2.load_current_a, 2.0 * s1.load_current_a, 1e-12);
  EXPECT_NEAR(volts(grid, s2, "n1_3_0"), 1.0 - 1.2, 1e-8);
}

TEST(ImportedGrid, AllFixedGridIsTrivial) {
  const PgNetlist n = read_netlist_text("V1 a 0 1.0\nR1 a 0 10\n.end\n");
  const ImportedGrid grid(n);
  EXPECT_EQ(grid.unknown_count(), 0u);
  const GridSolution sol = grid.solve();
  ASSERT_TRUE(sol.solve_ok);
  EXPECT_NEAR(sol.supply_current_a, 0.1, 1e-12);
}

TEST(ImportedGrid, CopyIsIndependent) {
  const PgNetlist n = read_netlist_file(fixture("ladder4.spice"));
  const ImportedGrid base(n);
  ImportedGrid copy(base);
  copy.remove_conductor_units(0, 1);
  EXPECT_EQ(base.conductors()[0].count, 1u);
  EXPECT_EQ(copy.conductors()[0].count, 0u);
  const GridSolution sol = base.solve();
  ASSERT_TRUE(sol.solve_ok);
  EXPECT_EQ(sol.floating_islands, 0u);
}

TEST(ImportedGrid, BackendsAgree) {
  const PgNetlist n = read_netlist_file(fixture("mesh3x3.spice"));
  const ImportedGrid grid(n);
  GridSolveOptions ref, opt;
  ref.backend = la::BackendChoice::Reference;
  opt.backend = la::BackendChoice::Optimized;
  const GridSolution a = grid.solve(ref);
  const GridSolution b = grid.solve(opt);
  ASSERT_TRUE(a.solve_ok && b.solve_ok);
  ASSERT_EQ(a.voltages.size(), b.voltages.size());
  for (std::size_t i = 0; i < a.voltages.size(); ++i) {
    EXPECT_NEAR(a.voltages[i], b.voltages[i], 1e-12) << i;
  }
}

}  // namespace
}  // namespace vstack::pgio
