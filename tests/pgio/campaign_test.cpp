// Imported-grid campaigns: stress ranking, N-1 and Monte Carlo determinism
// (including jobs=N bit-identity), load-scale sweeps, and the load-step
// ride-through transient.
#include "pgio/campaign.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/error.h"
#include "pgio/reader.h"

namespace vstack::pgio {
namespace {

std::string fixture(const std::string& name) {
  return std::string(VSTACK_PGIO_TEST_DATA) + "/" + name;
}

PgNetlist ladder() { return read_netlist_file(fixture("ladder4.spice")); }

TEST(RankByStress, OrdersByCurrentShare) {
  const PgNetlist n = ladder();
  const ImportedGrid grid(n);
  const GridSolution baseline = grid.solve();
  ASSERT_TRUE(baseline.solve_ok);
  GridCampaignOptions opts;
  opts.exhaustive = true;
  const auto ranking = rank_by_stress(grid, baseline, opts);
  ASSERT_EQ(ranking.size(), 3u);
  // Segment currents 3/2/1 A: shares 1/2, 1/3, 1/6, descending.
  EXPECT_EQ(ranking[0].conductor_index, 0u);
  EXPECT_EQ(ranking[1].conductor_index, 1u);
  EXPECT_EQ(ranking[2].conductor_index, 2u);
  EXPECT_NEAR(ranking[0].unit_current, 3.0, 1e-8);
  EXPECT_NEAR(ranking[0].failure_probability, 0.5, 1e-9);
  EXPECT_NEAR(ranking[1].failure_probability, 1.0 / 3.0, 1e-9);
  double total = 0.0;
  for (const auto& e : ranking) total += e.failure_probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NMinusOne, RadialLadderStrandsEveryCase) {
  const PgNetlist n = ladder();
  const ImportedGrid grid(n);
  GridCampaignOptions opts;
  opts.exhaustive = true;
  const auto report = run_n_minus_1(grid, opts);
  EXPECT_EQ(report.planned, 3u);
  ASSERT_EQ(report.cases.size(), 3u);
  EXPECT_NEAR(report.base_max_node_deviation_fraction, 0.6, 1e-9);
  // Every segment of a radial ladder is a single point of failure.
  EXPECT_EQ(report.infeasible, 3u);
  for (const auto& c : report.cases) {
    EXPECT_EQ(c.outcome, core::CaseOutcome::Infeasible);
    EXPECT_TRUE(c.solved);  // the solve succeeds; the loads are stranded
    EXPECT_NE(c.diagnostic.find("stranded"), std::string::npos)
        << c.diagnostic;
  }
}

TEST(NMinusOne, MeshedGridSurvivesSingleOpens) {
  // The 3x3 mesh has redundant paths: opening one edge must not strand
  // anything, and the deviation stays within a generous budget.
  const PgNetlist n = read_netlist_file(fixture("mesh3x3.spice"));
  const ImportedGrid grid(n);
  GridCampaignOptions opts;
  opts.exhaustive = true;
  opts.noise_budget_fraction = 0.5;
  const auto report = run_n_minus_1(grid, opts);
  EXPECT_EQ(report.cases.size(), grid.conductors().size());
  EXPECT_EQ(report.infeasible, 0u);
  EXPECT_EQ(report.survivable + report.degraded, report.cases.size());
  EXPECT_GT(report.worst_post_fault_deviation,
            report.base_max_node_deviation_fraction);
}

TEST(Campaigns, ParallelRunsAreBitIdentical) {
  const PgNetlist n = read_netlist_file(fixture("mesh3x3.spice"));
  const ImportedGrid grid(n);
  GridCampaignOptions serial;
  serial.exhaustive = true;
  serial.trials = 12;
  serial.leakage_faults_per_trial = 1;
  GridCampaignOptions parallel = serial;
  parallel.execution.jobs = 4;

  for (const bool monte_carlo : {false, true}) {
    const auto a = monte_carlo ? run_monte_carlo(grid, serial)
                               : run_n_minus_1(grid, serial);
    const auto b = monte_carlo ? run_monte_carlo(grid, parallel)
                               : run_n_minus_1(grid, parallel);
    ASSERT_EQ(a.cases.size(), b.cases.size());
    for (std::size_t i = 0; i < a.cases.size(); ++i) {
      EXPECT_EQ(a.cases[i].label, b.cases[i].label);
      EXPECT_EQ(a.cases[i].outcome, b.cases[i].outcome);
      // Bitwise: same plan, same fresh-copy evaluation, ordered commit.
      EXPECT_EQ(a.cases[i].max_node_deviation_fraction,
                b.cases[i].max_node_deviation_fraction);
    }
    EXPECT_EQ(a.worst_post_fault_deviation, b.worst_post_fault_deviation);
  }
}

std::string fault_signature(const pdn::FaultSet& set) {
  std::string out;
  for (const auto& f : set.faults()) {
    out += std::to_string(static_cast<int>(f.kind)) + ":" +
           std::to_string(f.index) + ":" + std::to_string(f.units) + ":" +
           std::to_string(f.severity) + ";";
  }
  return out;
}

TEST(MonteCarlo, SeedReproducesAndVaries) {
  const PgNetlist n = read_netlist_file(fixture("mesh3x3.spice"));
  const ImportedGrid grid(n);
  GridCampaignOptions opts;
  opts.trials = 10;
  const auto a = run_monte_carlo(grid, opts);
  const auto b = run_monte_carlo(grid, opts);
  ASSERT_EQ(a.cases.size(), 10u);
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    EXPECT_EQ(fault_signature(a.cases[i].faults),
              fault_signature(b.cases[i].faults));
  }

  GridCampaignOptions other = opts;
  other.seed = 1234;
  const auto c = run_monte_carlo(grid, other);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.cases.size(); ++i) {
    any_difference |= fault_signature(a.cases[i].faults) !=
                      fault_signature(c.cases[i].faults);
  }
  EXPECT_TRUE(any_difference);
}

TEST(EvaluateCase, ConverterFaultsAreRejected) {
  const PgNetlist n = ladder();
  const ImportedGrid grid(n);
  EXPECT_THROW(
      evaluate_case(grid, pdn::FaultSet().converter_stuck_off(0), {}, "bad"),
      Error);
}

TEST(EvaluateCase, LeakageFaultSolves) {
  const PgNetlist n = ladder();
  const ImportedGrid grid(n);
  const auto kase = evaluate_case(
      grid, pdn::FaultSet().leakage_to_ground(grid.slot_of("n1_3_0"), 0.05),
      {}, "leak");
  EXPECT_TRUE(kase.solved);
  EXPECT_GT(kase.max_node_deviation_fraction, 0.6);  // worse than baseline
}

TEST(SweepLoadScale, DeviationScalesLinearly) {
  const PgNetlist n = ladder();
  const ImportedGrid grid(n);
  const auto sols = sweep_load_scale(grid, {0.5, 1.0, 2.0}, {});
  ASSERT_EQ(sols.size(), 3u);
  for (const auto& s : sols) ASSERT_TRUE(s.solve_ok) << s.diagnostic;
  EXPECT_NEAR(sols[0].max_deviation_v, 0.3, 1e-8);
  EXPECT_NEAR(sols[1].max_deviation_v, 0.6, 1e-8);
  EXPECT_NEAR(sols[2].max_deviation_v, 1.2, 1e-8);
}

TEST(LoadStep, TransientRecoversToTheNewOperatingPoint) {
  const PgNetlist n = read_netlist_file(fixture("mesh3x3.spice"));
  const ImportedGrid grid(n);
  LoadStepOptions opt;
  opt.step_scale = 2.0;
  opt.duration_s = 200e-9;
  opt.dt_s = 5e-9;
  const LoadStepReport r = simulate_load_step(grid, opt);
  ASSERT_TRUE(r.solve_ok) << r.diagnostic;
  EXPECT_EQ(r.steps, 40u);
  EXPECT_TRUE(r.recovered);
  EXPECT_GE(r.recovery_time_s, 0.0);
  EXPECT_LE(r.recovery_time_s, opt.duration_s);
  // Doubling the load roughly doubles the settled deviation, and the
  // transient can never undershoot the settled endpoint metrics.
  EXPECT_NEAR(r.post_step_deviation_v, 2.0 * r.pre_step_deviation_v, 1e-6);
  EXPECT_GE(r.worst_deviation_v, r.post_step_deviation_v - 1e-12);
  EXPECT_GT(r.worst_droop_v, 0.0);
  EXPECT_LT(r.final_error_v, 1e-6);
}

TEST(LoadStep, TrivialGridIsImmediatelyRecovered) {
  const PgNetlist n = read_netlist_text("V1 a 0 1.0\nR1 a 0 10\n.end\n");
  const ImportedGrid grid(n);
  const LoadStepReport r = simulate_load_step(grid, {});
  EXPECT_TRUE(r.solve_ok);
  EXPECT_TRUE(r.recovered);
}

}  // namespace
}  // namespace vstack::pgio
