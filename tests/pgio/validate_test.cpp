// Golden-voltage cross-validation: every shipped fixture must pass under
// every backend at machine precision; doctored goldens must fail with the
// worst node named.
#include "pgio/validate.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "pgio/reader.h"

namespace vstack::pgio {
namespace {

std::string fixture(const std::string& name) {
  return std::string(VSTACK_PGIO_TEST_DATA) + "/" + name;
}

TEST(Validate, FixturesPassUnderEveryBackend) {
  for (const char* name : {"ladder4", "mesh3x3", "twonet_vias"}) {
    const PgNetlist netlist =
        read_netlist_file(fixture(std::string(name) + ".spice"));
    const GoldenSolution golden =
        read_solution_file(fixture(std::string(name) + ".solution"));
    const ImportedGrid grid(netlist);
    const ValidationReport report = validate(grid, golden);
    EXPECT_TRUE(report.pass()) << name << ":\n" << report.format();
    ASSERT_EQ(report.backends.size(), 2u);
    for (const auto& b : report.backends) {
      EXPECT_TRUE(b.solve_ok) << b.diagnostic;
      EXPECT_EQ(b.missing, 0u);
      EXPECT_LT(b.max_abs_error_v, 1e-9) << name << " " << b.backend;
      EXPECT_LE(b.rms_error_v, b.max_abs_error_v);
      EXPECT_GT(b.compared, 0u);
    }
  }
}

TEST(Validate, DoctoredGoldenFailsAndNamesWorstNode) {
  const PgNetlist netlist = read_netlist_file(fixture("ladder4.spice"));
  const ImportedGrid grid(netlist);
  const GoldenSolution golden = read_solution_text(
      "n1_0_0 1.0\n"
      "n1_1_0 0.7\n"
      "n1_2_0 0.5\n"
      "n1_3_0 0.3\n");  // truth is 0.4: off by 100 mV
  const ValidationReport report = validate(grid, golden);
  EXPECT_FALSE(report.pass());
  for (const auto& b : report.backends) {
    EXPECT_TRUE(b.solve_ok);
    EXPECT_FALSE(b.pass());
    EXPECT_NEAR(b.max_abs_error_v, 0.1, 1e-6);
    EXPECT_EQ(b.worst_node, "n1_3_0");
  }

  // ... but a loose tolerance turns the same comparison into a pass.
  ValidateOptions loose;
  loose.tolerance_v = 0.2;
  EXPECT_TRUE(validate(grid, golden, loose).pass());
}

TEST(Validate, MissingGoldenNodesFailValidation) {
  const PgNetlist netlist = read_netlist_file(fixture("ladder4.spice"));
  const ImportedGrid grid(netlist);
  const GoldenSolution golden = read_solution_text(
      "n1_0_0 1.0\n"
      "n1_1_0 0.7\n");  // n1_2_0 / n1_3_0 absent
  const ValidationReport report = validate(grid, golden);
  EXPECT_FALSE(report.pass());
  for (const auto& b : report.backends) {
    EXPECT_EQ(b.missing, 2u);
    EXPECT_EQ(b.compared, 2u);
  }
}

TEST(Validate, FloatingNodesAreSkippedNotCompared) {
  const PgNetlist netlist = read_netlist_text(
      "V1 a 0 1.0\n"
      "R1 a b 1\n"
      "R2 c d 1\n"  // floating pair: no golden entry needed
      ".end\n");
  const ImportedGrid grid(netlist);
  const GoldenSolution golden = read_solution_text("a 1.0\nb 1.0\n");
  const ValidationReport report = validate(grid, golden);
  EXPECT_TRUE(report.pass()) << report.format();
  for (const auto& b : report.backends) {
    EXPECT_EQ(b.skipped_floating, 2u);
    EXPECT_EQ(b.missing, 0u);
  }
}

TEST(Validate, UnknownBackendNameThrows) {
  const PgNetlist netlist = read_netlist_file(fixture("ladder4.spice"));
  const ImportedGrid grid(netlist);
  const GoldenSolution golden =
      read_solution_file(fixture("ladder4.solution"));
  ValidateOptions options;
  options.backends = {"simd-of-the-future"};
  EXPECT_THROW(validate(grid, golden, options), Error);
}

TEST(Validate, EmptyBackendListNeverPasses) {
  ValidationReport report;
  EXPECT_FALSE(report.pass());
}

}  // namespace
}  // namespace vstack::pgio
