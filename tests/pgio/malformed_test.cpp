// Malformed-input corpus: every rejection must carry a "<source>:<line>:"
// prefix and an actionable message.  These run under ASan/UBSan in CI (the
// pgio ingestion job), so they double as memory-safety probes of the
// error paths.
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "pgio/reader.h"

namespace vstack::pgio {
namespace {

void expect_netlist_fail(const std::string& text, const std::string& where,
                         const std::string& needle,
                         const ReadOptions& options = {}) {
  try {
    read_netlist_text(text, "<netlist>", options);
    FAIL() << "accepted malformed netlist: " << text;
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(where), std::string::npos) << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

void expect_solution_fail(const std::string& text, const std::string& where,
                          const std::string& needle,
                          const ReadOptions& options = {}) {
  try {
    read_solution_text(text, "<solution>", options);
    FAIL() << "accepted malformed solution: " << text;
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(where), std::string::npos) << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

TEST(MalformedNetlist, CardArity) {
  expect_netlist_fail("R1 a b\n", "<netlist>:1:", "R card");
  expect_netlist_fail("R1 a b 1 extra\n", "<netlist>:1:", "R card");
  expect_netlist_fail("V1 a 0\n", "<netlist>:1:", "V card");
  expect_netlist_fail("I1 a\n", "<netlist>:1:", "I card");
  expect_netlist_fail("C1 a b\n", "<netlist>:1:", "C card");
  expect_netlist_fail(".shorts a\n", "<netlist>:1:", ".shorts");
}

TEST(MalformedNetlist, SelfLoopsAndValues) {
  expect_netlist_fail("R1 a a 1\n", "<netlist>:1:", "connects a node to itself");
  expect_netlist_fail("R1 a gnd -1\n", "<netlist>:1:", "resistance must be");
  expect_netlist_fail("* ok\nC1 a 0 0\n", "<netlist>:2:",
                      "capacitance must be positive");
  expect_netlist_fail("R1 a b 1x\n", "<netlist>:1:", "1x");
  expect_netlist_fail("R1 a b 1e400\n", "<netlist>:1:", "");
  expect_netlist_fail(".shorts a a\n", "<netlist>:1:", "itself");
  expect_netlist_fail("V1 a a 1\n", "<netlist>:1:", "itself");
}

TEST(MalformedNetlist, PadRules) {
  // Both terminals internal: not a pad the subset can express.
  expect_netlist_fail("V1 a b 1.0\n", "<netlist>:1:",
                      "must reference ground on one terminal");
  // Conflicting redefinition names the first definition's line.
  expect_netlist_fail("V1 a 0 1.0\nV2 a 0 1.2\n", "<netlist>:2:",
                      "conflicting pad definition for node 'a' (first "
                      "defined at line 1)");
  expect_netlist_fail("V1 a 0 1.0\nV2 a 0 1.0\n", "<netlist>:2:",
                      "duplicate pad definition");
}

TEST(MalformedNetlist, UnknownCardsAndDirectives) {
  expect_netlist_fail("X1 a b 1\n", "<netlist>:1:", "unknown element card");
  expect_netlist_fail(".tran 1u\n", "<netlist>:1:", "unknown directive");
  expect_netlist_fail("L1 a b 1n\n", "<netlist>:1:",
                      "outside the supported subset");
  expect_netlist_fail(".end extra\n", "<netlist>:1:", ".end takes no");
  expect_netlist_fail(".end\nR1 a b 1\n", "<netlist>:2:",
                      "content after .end");
}

TEST(MalformedNetlist, DuplicateElementNames) {
  expect_netlist_fail("R1 a b 1\nR1 b c 1\n", "<netlist>:2:",
                      "duplicate element name 'R1'");
  // The check spans card kinds: one namespace, like the benchmarks assume.
  expect_netlist_fail("R1 a b 1\nI1 a 0 1\nI1 b 0 1\n", "<netlist>:3:",
                      "duplicate element name");
}

TEST(MalformedNetlist, ResourceBudgets) {
  ReadOptions tight;
  tight.max_nodes = 2;
  expect_netlist_fail("R1 a b 1\nR2 c d 1\n", "<netlist>:2:",
                      "node budget exceeded", tight);

  ReadOptions few_elements;
  few_elements.max_elements = 1;
  expect_netlist_fail("R1 a b 1\nR2 b c 1\n", "<netlist>:2:",
                      "element budget exceeded", few_elements);

  ReadOptions short_lines;
  short_lines.max_line_length = 8;
  expect_netlist_fail("R1 node_with_a_long_name b 1\n", "<netlist>:1:",
                      "line longer than 8", short_lines);

  ReadOptions tiny_names;
  tiny_names.max_name_bytes = 4;
  expect_netlist_fail("R1 abcdef ghijkl 1\n", "<netlist>:1:",
                      "name budget exceeded", tiny_names);
}

TEST(MalformedSolution, Rejections) {
  expect_solution_fail("a 1.0 extra\n", "<solution>:1:",
                       "expected '<node> <volts>'");
  expect_solution_fail("a\n", "<solution>:1:", "expected '<node> <volts>'");
  expect_solution_fail("a xyz\n", "<solution>:1:", "xyz");
  expect_solution_fail("a 1.0\na 1.0\n", "<solution>:2:",
                       "duplicate solution entry");
  expect_solution_fail("0 0.5\n", "<solution>:1:", "ground listed at");

  ReadOptions tight;
  tight.max_nodes = 1;
  expect_solution_fail("a 1\nb 2\n", "<solution>:2:", "node budget exceeded",
                       tight);
}

}  // namespace
}  // namespace vstack::pgio
