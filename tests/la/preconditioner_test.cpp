#include "la/preconditioner.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "la/dense_lu.h"

namespace vstack::la {
namespace {

TEST(JacobiTest, InvertsDiagonalMatrixExactly) {
  CooBuilder b(3);
  b.add(0, 0, 2.0);
  b.add(1, 1, 4.0);
  b.add(2, 2, 8.0);
  JacobiPreconditioner p(b.build());
  Vector z;
  p.apply({2.0, 4.0, 8.0}, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 1.0);
  EXPECT_DOUBLE_EQ(z[2], 1.0);
}

TEST(JacobiTest, ZeroDiagonalPassesThrough) {
  CooBuilder b(2);
  b.add(0, 0, 2.0);
  b.add(1, 0, 1.0);  // row 1 has no diagonal entry
  b.add(1, 1, 0.0);
  JacobiPreconditioner p(b.build());
  Vector z;
  p.apply({4.0, 3.0}, z);
  EXPECT_DOUBLE_EQ(z[0], 2.0);
  EXPECT_DOUBLE_EQ(z[1], 3.0);
}

TEST(Ilu0Test, ExactForTriangularPattern) {
  // For a matrix whose LU factors fit inside its own sparsity pattern
  // (e.g. tridiagonal), ILU(0) is a complete factorization: applying it
  // solves the system exactly.
  const std::size_t n = 12;
  CooBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  const CsrMatrix a = b.build();
  Ilu0Preconditioner p(a);

  Vector rhs(n, 1.0);
  Vector z;
  p.apply(rhs, z);

  const Vector reference = DenseLu(DenseMatrix::from_csr(a)).solve(rhs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(z[i], reference[i], 1e-12);
  }
}

TEST(Ilu0Test, RejectsMissingDiagonal) {
  CooBuilder b(2);
  b.add(0, 1, 1.0);
  b.add(1, 0, 1.0);
  EXPECT_THROW(Ilu0Preconditioner{b.build()}, Error);
}

TEST(IdentityTest, CopiesInput) {
  IdentityPreconditioner p;
  Vector z;
  p.apply({1.0, -2.0, 3.0}, z);
  EXPECT_EQ(z, (Vector{1.0, -2.0, 3.0}));
}

TEST(Ilu0Test, ApplyRejectsWrongSize) {
  CooBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  Ilu0Preconditioner p(b.build());
  Vector z;
  EXPECT_THROW(p.apply({1.0, 2.0, 3.0}, z), Error);
}

}  // namespace
}  // namespace vstack::la
