#include "la/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace vstack::la {
namespace {

TEST(VectorOpsTest, DotProduct) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, -5.0, 6.0}), 12.0);
  EXPECT_DOUBLE_EQ(dot({}, {}), 0.0);
}

TEST(VectorOpsTest, DotRejectsMismatch) {
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), Error);
}

TEST(VectorOpsTest, Norms) {
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf({-7.0, 2.0, 5.0}), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf({}), 0.0);
}

TEST(VectorOpsTest, Axpy) {
  Vector y{1.0, 1.0};
  axpy(2.0, {3.0, -1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_THROW(axpy(1.0, {1.0}, y), Error);
}

TEST(VectorOpsTest, Xpby) {
  Vector y{10.0, 20.0};
  xpby({1.0, 2.0}, 0.5, y);  // y = x + 0.5 y
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
}

TEST(VectorOpsTest, SubtractAndFill) {
  const Vector d = subtract({5.0, 3.0}, {2.0, 4.0});
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], -1.0);
  Vector v{1.0, 2.0, 3.0};
  fill(v, 9.0);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 9.0);
}

}  // namespace
}  // namespace vstack::la
