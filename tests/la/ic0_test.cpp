// IC(0) incomplete Cholesky: exactness on fill-free patterns, breakdown on
// indefinite matrices, and the ladder's fallback to ILU(0).
#include "la/preconditioner.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "la/dense_lu.h"
#include "la/solver.h"

namespace vstack::la {
namespace {

CsrMatrix tridiagonal_spd(std::size_t n) {
  CooBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  return b.build();
}

CsrMatrix grid_laplacian(std::size_t m) {
  CooBuilder b(m * m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t i = r * m + c;
      b.add(i, i, 4.0);
      if (r > 0) b.add(i, i - m, -1.0);
      if (r + 1 < m) b.add(i, i + m, -1.0);
      if (c > 0) b.add(i, i - 1, -1.0);
      if (c + 1 < m) b.add(i, i + 1, -1.0);
    }
  }
  return b.build();
}

TEST(Ic0Test, ExactForTriangularPattern) {
  // A tridiagonal SPD matrix has a tridiagonal Cholesky factor, so the
  // zero-fill constraint never bites: IC(0) is a complete factorization
  // and applying it solves the system exactly.
  const std::size_t n = 12;
  const CsrMatrix a = tridiagonal_spd(n);
  Ic0Preconditioner p(a);

  Vector rhs(n, 1.0);
  Vector z;
  p.apply(rhs, z);

  const Vector reference = DenseLu(DenseMatrix::from_csr(a)).solve(rhs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(z[i], reference[i], 1e-12);
  }
}

TEST(Ic0Test, CgConvergesInOneIterationWhenExact) {
  const CsrMatrix a = tridiagonal_spd(24);
  const Vector b(a.size(), 1.0);
  Vector x;
  const auto report = conjugate_gradient(a, b, x, Ic0Preconditioner(a));
  EXPECT_TRUE(report.converged);
  EXPECT_LE(report.iterations, 2u);
}

TEST(Ic0Test, MatchesIlu0SolutionOnGridLaplacian) {
  const CsrMatrix a = grid_laplacian(12);
  const Vector b(a.size(), 1.0);
  Vector x_ic0, x_ilu0;
  const auto r_ic0 = conjugate_gradient(a, b, x_ic0, Ic0Preconditioner(a));
  const auto r_ilu0 = conjugate_gradient(a, b, x_ilu0, Ilu0Preconditioner(a));
  ASSERT_TRUE(r_ic0.converged);
  ASSERT_TRUE(r_ilu0.converged);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(x_ic0[i], x_ilu0[i], 1e-7);
  }
  // The SPD-only specialization must not cost iterations relative to the
  // general ILU(0) on the same pattern.
  EXPECT_LE(r_ic0.iterations, r_ilu0.iterations + 2);
}

TEST(Ic0Test, FactorReproducesLowerTriangleProduct) {
  // Sanity on the factor itself: for the fill-free tridiagonal case,
  // applying M^{-1} then multiplying by A must reproduce the input.
  const CsrMatrix a = tridiagonal_spd(9);
  Ic0Preconditioner p(a);
  const Vector r{1.0, -2.0, 3.0, 0.5, 0.0, 4.0, -1.0, 2.5, 1.0};
  Vector z;
  p.apply(r, z);
  const Vector back = a.multiply(z);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(back[i], r[i], 1e-10);
  }
}

TEST(Ic0Test, ThrowsOnIndefiniteMatrix) {
  // Symmetric but indefinite (eigenvalues 5 and -1): the second pivot goes
  // negative, which must surface as Error, not NaN factors.
  CooBuilder b(2);
  b.add(0, 0, 2.0);
  b.add(0, 1, 3.0);
  b.add(1, 0, 3.0);
  b.add(1, 1, 2.0);
  EXPECT_THROW(Ic0Preconditioner{b.build()}, Error);
}

TEST(Ic0Test, ThrowsOnMissingDiagonal) {
  CooBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(1, 0, 1.0);  // row 1 has no diagonal entry
  EXPECT_THROW(Ic0Preconditioner{b.build()}, Error);
}

TEST(Ic0LadderTest, BreakdownFallsBackToIlu0) {
  // Solver asked for IC(0) on an indefinite symmetric system: the bind
  // must degrade to ILU(0) (logged, not thrown) and the escalation ladder
  // must still deliver the solution.
  CooBuilder b(2);
  b.add(0, 0, 2.0);
  b.add(0, 1, 3.0);
  b.add(1, 0, 3.0);
  b.add(1, 1, 2.0);
  const CsrMatrix a = b.build();

  SolveOptions options;
  options.preconditioner = PrecondKind::Ic0;
  Solver solver(a, options);
  EXPECT_EQ(solver.preconditioner_label(), "ilu0");

  const Vector rhs{1.0, 2.0};
  Vector x;
  const auto report = solver.solve(rhs, x);
  ASSERT_TRUE(report.converged);
  const Vector residual = subtract(rhs, a.multiply(x));
  EXPECT_LT(norm2(residual), 1e-8);
}

TEST(Ic0LadderTest, NonSymmetricRequestDegradesToIlu0) {
  CooBuilder b(2);
  b.add(0, 0, 4.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, -2.0);  // asymmetric coupling
  b.add(1, 1, 5.0);
  const CsrMatrix a = b.build();

  SolveOptions options;
  options.preconditioner = PrecondKind::Ic0;
  Solver solver(a, options);
  EXPECT_EQ(solver.kind(), SolverKind::BiCgStab);
  EXPECT_EQ(solver.preconditioner_label(), "ilu0");

  const Vector rhs{1.0, 1.0};
  Vector x;
  EXPECT_TRUE(solver.solve(rhs, x).converged);
}

TEST(Ic0LadderTest, SolverUsesIc0OnSymmetricBind) {
  const CsrMatrix a = grid_laplacian(8);
  SolveOptions options;
  options.preconditioner = PrecondKind::Ic0;
  Solver solver(a, options);
  EXPECT_EQ(solver.kind(), SolverKind::Cg);
  EXPECT_EQ(solver.preconditioner_label(), "ic0");

  const Vector b(a.size(), 1.0);
  Vector x;
  const auto report = solver.solve(b, x);
  ASSERT_TRUE(report.converged);
  ASSERT_FALSE(report.attempts.empty());
  EXPECT_EQ(report.attempts[0].method, "cg+ic0");
}

}  // namespace
}  // namespace vstack::la
