// Kernel-backend registry and reference-vs-optimized cross-validation.
//
// The optimized backend reorders reductions, so agreement with the
// reference is to tolerance (kernels ~1e-12 relative, full solves to the
// solver tolerance), never bitwise -- the numerics policy of
// docs/linear_algebra.md stated as tests.
#include "la/backend.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "common/error.h"
#include "la/solve.h"
#include "la/solver.h"

namespace vstack::la {
namespace {

CsrMatrix grid_laplacian(std::size_t m) {
  CooBuilder b(m * m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t i = r * m + c;
      b.add(i, i, 4.0);
      if (r > 0) b.add(i, i - m, -1.0);
      if (r + 1 < m) b.add(i, i + m, -1.0);
      if (c > 0) b.add(i, i - 1, -1.0);
      if (c + 1 < m) b.add(i, i + 1, -1.0);
    }
  }
  return b.build();
}

/// Randomized SPD matrix: diagonally dominant with random symmetric
/// off-diagonal couplings on a ring-plus-chords pattern.
CsrMatrix random_spd(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> mag(0.1, 1.0);
  CooBuilder b(n);
  Vector row_sum(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t neighbors[] = {(i + 1) % n, (i + 7) % n};
    for (const std::size_t j : neighbors) {
      if (j <= i) continue;  // stamp each pair once, symmetrically
      const double w = mag(rng);
      b.add(i, j, -w);
      b.add(j, i, -w);
      row_sum[i] += w;
      row_sum[j] += w;
    }
  }
  for (std::size_t i = 0; i < n; ++i) b.add(i, i, row_sum[i] + mag(rng));
  return b.build();
}

Vector random_vector(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Vector v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

TEST(BackendRegistryTest, LookupAndFlags) {
  const Backend* ref = backend_by_name("reference");
  const Backend* opt = backend_by_name("optimized");
  ASSERT_NE(ref, nullptr);
  ASSERT_NE(opt, nullptr);
  EXPECT_STREQ(ref->name(), "reference");
  EXPECT_STREQ(opt->name(), "optimized");
  EXPECT_TRUE(ref->bit_identical());
  EXPECT_FALSE(opt->bit_identical());
  EXPECT_EQ(backend_by_name("vectorized"), nullptr);

  const auto all = all_backends();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], &reference_backend());
  EXPECT_EQ(all[1], &optimized_backend());
}

TEST(BackendRegistryTest, ResolveChoices) {
  EXPECT_EQ(&resolve_backend(BackendChoice::Reference), &reference_backend());
  EXPECT_EQ(&resolve_backend(BackendChoice::Optimized), &optimized_backend());
  // Auto defers to the process default, which in the test binary (no
  // --la-backend, VSTACK_LA_BACKEND unset or honored by CI) must be a
  // registered backend.
  const Backend& resolved = resolve_backend(BackendChoice::Auto);
  EXPECT_NE(backend_by_name(resolved.name()), nullptr);
}

TEST(BackendRegistryTest, SetDefaultBackendRejectsUnknown) {
  EXPECT_THROW(set_default_backend("no-such-backend"), Error);
}

TEST(BackendKernelTest, SpmvMatchesReference) {
  const CsrMatrix a = grid_laplacian(13);  // odd edge: rows of 3..5 nnz
  const Vector x = random_vector(a.size(), 42);
  const Backend& ref = reference_backend();
  const Backend& opt = optimized_backend();
  const auto pr = ref.prepare(a);
  const auto po = opt.prepare(a);
  Vector yr, yo;
  ref.spmv(*pr, x, yr);
  opt.spmv(*po, x, yo);
  ASSERT_EQ(yr.size(), yo.size());
  for (std::size_t i = 0; i < yr.size(); ++i) {
    EXPECT_NEAR(yo[i], yr[i], 1e-12 * (1.0 + std::abs(yr[i])));
  }
}

TEST(BackendKernelTest, ReductionsMatchReference) {
  const std::size_t n = 1021;  // not a multiple of the unroll width
  const Vector x = random_vector(n, 7);
  const Vector y = random_vector(n, 8);

  const Backend& ref = reference_backend();
  const Backend& opt = optimized_backend();

  const double dr = ref.dot(x, y);
  const double dopt = opt.dot(x, y);
  EXPECT_NEAR(dopt, dr, 1e-12 * (1.0 + std::abs(dr)));

  EXPECT_NEAR(opt.norm2(x), ref.norm2(x), 1e-12 * (1.0 + ref.norm2(x)));

  Vector yr = y, yo = y;
  const double nr = ref.axpy_norm2(0.37, x, yr);
  const double no = opt.axpy_norm2(0.37, x, yo);
  EXPECT_NEAR(no, nr, 1e-12 * (1.0 + nr));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(yo[i], yr[i], 1e-14 * (1.0 + std::abs(yr[i])));
  }
}

TEST(BackendKernelTest, FusedResidualMatchesReference) {
  const CsrMatrix a = grid_laplacian(9);
  const Vector x = random_vector(a.size(), 11);
  const Vector b = random_vector(a.size(), 12);
  const Backend& ref = reference_backend();
  const Backend& opt = optimized_backend();
  const auto pr = ref.prepare(a);
  const auto po = opt.prepare(a);
  Vector rr, ro;
  ref.residual(*pr, b, x, rr);
  opt.residual(*po, b, x, ro);
  ASSERT_EQ(rr.size(), ro.size());
  for (std::size_t i = 0; i < rr.size(); ++i) {
    EXPECT_NEAR(ro[i], rr[i], 1e-12 * (1.0 + std::abs(rr[i])));
  }
}

TEST(BackendKernelTest, ElementwiseOpsBitIdentical) {
  // axpy/xpby have a fixed elementwise order in every backend: the
  // optimized backend only reassociates reductions, so these must be
  // bitwise equal, not merely close.
  const std::size_t n = 257;
  const Vector x = random_vector(n, 21);
  const Vector base = random_vector(n, 22);
  const Backend& ref = reference_backend();
  const Backend& opt = optimized_backend();

  Vector yr = base, yo = base;
  ref.axpy(-1.75, x, yr);
  opt.axpy(-1.75, x, yo);
  EXPECT_EQ(yr, yo);

  Vector pr = base, po = base;
  ref.xpby(x, 0.61, pr);
  opt.xpby(x, 0.61, po);
  EXPECT_EQ(pr, po);
}

TEST(BackendSolveTest, RandomizedSpdCrossValidation) {
  // Full CG solves on randomized SPD systems must agree across backends to
  // well within the solver tolerance.
  for (const std::uint32_t seed : {1u, 2u, 3u}) {
    const CsrMatrix a = random_spd(300, seed);
    const Vector b = random_vector(a.size(), seed + 100);

    SolveOptions ref_opts, opt_opts;
    ref_opts.backend = BackendChoice::Reference;
    opt_opts.backend = BackendChoice::Optimized;

    Vector x_ref, x_opt;
    Solver ref_solver(a, ref_opts);
    Solver opt_solver(a, opt_opts);
    const auto rr = ref_solver.solve(b, x_ref);
    const auto ro = opt_solver.solve(b, x_opt);
    ASSERT_TRUE(rr.converged) << "seed " << seed;
    ASSERT_TRUE(ro.converged) << "seed " << seed;

    const double scale = norm2(x_ref);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(x_opt[i], x_ref[i], 1e-7 * (1.0 + scale))
          << "seed " << seed << " component " << i;
    }
  }
}

TEST(BackendSolveTest, FaultDamagedMatrixCrossValidation) {
  // Mimic a fault-damaged PDN system: take a grid Laplacian, then weaken a
  // band of couplings and pin a few nodes with strong grounds, producing
  // the badly-scaled-but-solvable systems the escalation ladder sees.
  const std::size_t m = 16;
  CooBuilder b(m * m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t i = r * m + c;
      const bool damaged_row = (r >= 6 && r <= 8);
      const double w = damaged_row ? 1e-4 : 1.0;
      double diag = 1e-9;  // weak ground keeps the system nonsingular
      if (r > 0) { b.add(i, i - m, -w); diag += w; }
      if (r + 1 < m) { b.add(i, i + m, -w); diag += w; }
      if (c > 0) { b.add(i, i - 1, -w); diag += w; }
      if (c + 1 < m) { b.add(i, i + 1, -w); diag += w; }
      if (i % 37 == 0) diag += 1e4;  // strong pin
      b.add(i, i, diag);
    }
  }
  const CsrMatrix a = b.build();
  const Vector rhs = random_vector(a.size(), 99);

  SolveOptions ref_opts, opt_opts;
  ref_opts.backend = BackendChoice::Reference;
  opt_opts.backend = BackendChoice::Optimized;

  Vector x_ref, x_opt;
  const auto rr = Solver(a, ref_opts).solve(rhs, x_ref);
  const auto ro = Solver(a, opt_opts).solve(rhs, x_opt);
  ASSERT_TRUE(rr.converged);
  ASSERT_TRUE(ro.converged);

  // Compare through the residual (the solution itself is ill-conditioned
  // along the weak modes, so backend-level rounding can move components
  // more than the residual tolerance implies).
  const Vector res_ref = subtract(rhs, a.multiply(x_ref));
  const Vector res_opt = subtract(rhs, a.multiply(x_opt));
  const double b_norm = norm2(rhs);
  EXPECT_LT(norm2(res_ref) / b_norm, 1e-8);
  EXPECT_LT(norm2(res_opt) / b_norm, 1e-8);
}

TEST(BackendSolveTest, ReferenceBackendBitIdenticalToLegacyPath) {
  // BackendChoice::Reference through the Solver must reproduce the
  // historic free-function arithmetic exactly: same matrix, same RHS,
  // bitwise-equal solution.
  const CsrMatrix a = grid_laplacian(10);
  const Vector b(a.size(), 1.0);

  SolveOptions opts;
  opts.backend = BackendChoice::Reference;  // pin both sides against the env
  Vector x_shim;
  const auto r_shim = solve(a, b, x_shim, opts);

  Vector x_handle;
  const auto r_handle = Solver(a, opts).solve(b, x_handle);

  ASSERT_TRUE(r_shim.converged);
  ASSERT_TRUE(r_handle.converged);
  EXPECT_EQ(r_shim.iterations, r_handle.iterations);
  EXPECT_EQ(x_shim, x_handle);
}

}  // namespace
}  // namespace vstack::la
