#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/bicgstab.h"
#include "la/cg.h"
#include "la/solve.h"

namespace vstack::la {
namespace {

/// 1-D resistor-chain Laplacian with grounded endpoints: SPD, well-known
/// solution structure.
CsrMatrix laplacian_1d(std::size_t n) {
  CooBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  return b.build();
}

/// 2-D five-point Laplacian on an m x m grid (Dirichlet boundary), the same
/// structure the PDN grids produce.
CsrMatrix laplacian_2d(std::size_t m) {
  const std::size_t n = m * m;
  CooBuilder b(n);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t i = r * m + c;
      b.add(i, i, 4.0);
      if (r > 0) b.add(i, i - m, -1.0);
      if (r + 1 < m) b.add(i, i + m, -1.0);
      if (c > 0) b.add(i, i - 1, -1.0);
      if (c + 1 < m) b.add(i, i + 1, -1.0);
    }
  }
  return b.build();
}

double residual(const CsrMatrix& a, const Vector& x, const Vector& b) {
  return norm2(subtract(b, a.multiply(x))) / norm2(b);
}

TEST(CgTest, SolvesSmallSpdSystem) {
  const CsrMatrix a = laplacian_1d(10);
  const Vector b(10, 1.0);
  Vector x;
  const auto precond = make_jacobi(a);
  const auto report = conjugate_gradient(a, b, x, *precond);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(a, x, b), 1e-9);
}

TEST(CgTest, SolvesLargeGridWithIlu0) {
  const CsrMatrix a = laplacian_2d(40);
  Vector b(a.size(), 0.0);
  Rng rng(5);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  Vector x;
  const auto precond = make_ilu0(a);
  const auto report = conjugate_gradient(a, b, x, *precond);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(a, x, b), 1e-9);
}

TEST(CgTest, Ilu0ConvergesFasterThanJacobi) {
  const CsrMatrix a = laplacian_2d(30);
  Vector b(a.size(), 1.0);
  Vector x1, x2;
  const auto r_jacobi = conjugate_gradient(a, b, x1, *make_jacobi(a));
  const auto r_ilu = conjugate_gradient(a, b, x2, *make_ilu0(a));
  ASSERT_TRUE(r_jacobi.converged);
  ASSERT_TRUE(r_ilu.converged);
  EXPECT_LT(r_ilu.iterations, r_jacobi.iterations);
}

TEST(CgTest, ZeroRhsGivesZeroSolution) {
  const CsrMatrix a = laplacian_1d(5);
  const Vector b(5, 0.0);
  Vector x(5, 3.0);  // nonzero initial guess must be overwritten
  const auto report = conjugate_gradient(a, b, x, IdentityPreconditioner{});
  EXPECT_TRUE(report.converged);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(BiCgStabTest, SolvesNonSymmetricSystem) {
  // Convection-diffusion-like: Laplacian plus a skew term.
  const std::size_t n = 50;
  CooBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, 3.0);
    if (i > 0) builder.add(i, i - 1, -1.5);
    if (i + 1 < n) builder.add(i, i + 1, -0.5);
  }
  const CsrMatrix a = builder.build();
  ASSERT_FALSE(a.is_symmetric());

  Vector b(n, 1.0);
  Vector x;
  const auto precond = make_ilu0(a);
  const auto report = bicgstab(a, b, x, *precond);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(a, x, b), 1e-9);
}

TEST(BiCgStabTest, MatchesCgOnSpdSystem) {
  const CsrMatrix a = laplacian_2d(12);
  Vector b(a.size(), 1.0);
  Vector x_cg, x_bi;
  conjugate_gradient(a, b, x_cg, *make_ilu0(a));
  bicgstab(a, b, x_bi, *make_ilu0(a));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(x_cg[i], x_bi[i], 1e-7);
  }
}

TEST(SolveTest, AutoPicksCgForSymmetric) {
  const CsrMatrix a = laplacian_1d(20);
  const Vector b(20, 1.0);
  Vector x;
  const auto report = solve(a, b, x);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(a, x, b), 1e-9);
}

TEST(SolveTest, AutoHandlesNonSymmetric) {
  CooBuilder builder(3);
  builder.add(0, 0, 2.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 1, 2.0);
  builder.add(1, 2, 0.5);
  builder.add(2, 0, -0.5);
  builder.add(2, 2, 2.0);
  const CsrMatrix a = builder.build();
  const Vector b{1.0, 2.0, 3.0};
  Vector x;
  const auto report = solve(a, b, x);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(a, x, b), 1e-8);
}

TEST(SolveTest, DenseLuKindSolvesExactly) {
  const CsrMatrix a = laplacian_1d(8);
  const Vector b(8, 2.0);
  Vector x;
  SolveOptions opts;
  opts.kind = SolverKind::DenseLu;
  const auto report = solve(a, b, x, opts);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(residual(a, x, b), 1e-12);
}

// Property-style sweep: CG solves grids of increasing size with bounded
// iteration growth and always reaches the tolerance.
class CgGridSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CgGridSweep, ConvergesOnGrid) {
  const std::size_t m = GetParam();
  const CsrMatrix a = laplacian_2d(m);
  Vector b(a.size(), 1.0);
  Vector x;
  const auto report = conjugate_gradient(a, b, x, *make_ilu0(a));
  EXPECT_TRUE(report.converged) << "grid " << m << "x" << m;
  EXPECT_LT(residual(a, x, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgGridSweep,
                         ::testing::Values(4, 8, 16, 24, 32, 48));

}  // namespace
}  // namespace vstack::la
