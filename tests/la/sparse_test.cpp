#include "la/sparse.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::la {
namespace {

TEST(CooBuilderTest, AccumulatesDuplicates) {
  CooBuilder b(3);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 2, -1.0);
  const CsrMatrix a = b.build();
  EXPECT_EQ(a.nnz(), 2u);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(a.at(1, 2), -1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 0.0);
}

TEST(CooBuilderTest, RejectsOutOfRangeStamp) {
  CooBuilder b(2);
  EXPECT_THROW(b.add(2, 0, 1.0), Error);
  EXPECT_THROW(b.add(0, 5, 1.0), Error);
}

TEST(CooBuilderTest, RejectsZeroDimension) {
  EXPECT_THROW(CooBuilder(0), Error);
}

TEST(CsrMatrixTest, MultiplyIdentity) {
  CooBuilder b(4);
  for (std::size_t i = 0; i < 4; ++i) b.add(i, i, 1.0);
  const CsrMatrix a = b.build();
  const Vector x{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(a.multiply(x), x);
}

TEST(CsrMatrixTest, MultiplyGeneral) {
  // [1 2; 3 4] * [5; 6] = [17; 39]
  CooBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 3.0);
  b.add(1, 1, 4.0);
  const CsrMatrix a = b.build();
  const Vector y = a.multiply({5.0, 6.0});
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(CsrMatrixTest, ColumnsSortedWithinRows) {
  CooBuilder b(3);
  b.add(0, 2, 1.0);
  b.add(0, 0, 1.0);
  b.add(0, 1, 1.0);
  const CsrMatrix a = b.build();
  ASSERT_EQ(a.nnz(), 3u);
  EXPECT_EQ(a.col_idx()[0], 0u);
  EXPECT_EQ(a.col_idx()[1], 1u);
  EXPECT_EQ(a.col_idx()[2], 2u);
}

TEST(CsrMatrixTest, DiagonalExtraction) {
  CooBuilder b(3);
  b.add(0, 0, 2.0);
  b.add(1, 2, 5.0);  // off-diagonal only in row 1
  b.add(2, 2, -7.0);
  const Vector d = b.build().diagonal();
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], -7.0);
}

TEST(CsrMatrixTest, SymmetryDetection) {
  CooBuilder sym(3);
  sym.add(0, 0, 2.0);
  sym.add(0, 1, -1.0);
  sym.add(1, 0, -1.0);
  sym.add(1, 1, 2.0);
  sym.add(2, 2, 1.0);
  EXPECT_TRUE(sym.build().is_symmetric());

  CooBuilder asym(2);
  asym.add(0, 0, 1.0);
  asym.add(0, 1, 0.5);
  asym.add(1, 0, -0.5);
  asym.add(1, 1, 1.0);
  EXPECT_FALSE(asym.build().is_symmetric());
}

TEST(CsrMatrixTest, StructuralAsymmetryDetected) {
  CooBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 1.0);  // (1,0) missing entirely
  b.add(1, 1, 1.0);
  EXPECT_FALSE(b.build().is_symmetric());
}

TEST(CsrMatrixTest, SymmetryMemoIsStableAcrossRepeatsAndCopies) {
  // is_symmetric(default tol) is memoized after the first scan; repeated
  // queries and copies/moves must keep answering consistently for both
  // polarities.
  CooBuilder sym(3);
  sym.add(0, 0, 2.0);
  sym.add(0, 1, -1.0);
  sym.add(1, 0, -1.0);
  sym.add(1, 1, 2.0);
  sym.add(2, 2, 1.0);
  const CsrMatrix a = sym.build();
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_TRUE(a.is_symmetric());  // memoized path

  CsrMatrix copied = a;  // memo travels with the copy
  EXPECT_TRUE(copied.is_symmetric());
  const CsrMatrix moved = std::move(copied);
  EXPECT_TRUE(moved.is_symmetric());

  CooBuilder asym(2);
  asym.add(0, 0, 1.0);
  asym.add(0, 1, 0.5);
  asym.add(1, 0, -0.5);
  asym.add(1, 1, 1.0);
  const CsrMatrix b = asym.build();
  EXPECT_FALSE(b.is_symmetric());
  EXPECT_FALSE(b.is_symmetric());
  const CsrMatrix b_copy = b;
  EXPECT_FALSE(b_copy.is_symmetric());
}

TEST(CsrMatrixTest, NonDefaultToleranceBypassesMemo) {
  // Nearly-symmetric matrix: asymmetric at 1e-12 (the memoized default)
  // but symmetric under a loose tolerance.  Mixing the two query kinds
  // must not cross-contaminate.
  CooBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 0.5);
  b.add(1, 0, 0.5 + 1e-9);
  b.add(1, 1, 1.0);
  const CsrMatrix a = b.build();
  EXPECT_FALSE(a.is_symmetric());        // default tol, memoized as "no"
  EXPECT_TRUE(a.is_symmetric(1e-6));     // loose tol, fresh scan
  EXPECT_FALSE(a.is_symmetric());        // memo still says "no"
  EXPECT_TRUE(a.is_symmetric(1e-6));
}

TEST(CsrMatrixTest, MultiplyRejectsWrongSize) {
  CooBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(1, 1, 1.0);
  const CsrMatrix a = b.build();
  Vector y;
  EXPECT_THROW(a.multiply({1.0, 2.0, 3.0}, y), Error);
}

}  // namespace
}  // namespace vstack::la
