// la::Solver handle semantics: shim equivalence, workspace reuse,
// solve_many batching, iterate_once, and per-call option overrides.
#include "la/solver.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "la/solve.h"

namespace vstack::la {
namespace {

CsrMatrix grid_laplacian(std::size_t m) {
  CooBuilder b(m * m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t i = r * m + c;
      b.add(i, i, 4.0);
      if (r > 0) b.add(i, i - m, -1.0);
      if (r + 1 < m) b.add(i, i + m, -1.0);
      if (c > 0) b.add(i, i - 1, -1.0);
      if (c + 1 < m) b.add(i, i + 1, -1.0);
    }
  }
  return b.build();
}

CsrMatrix asymmetric_system() {
  CooBuilder b(4);
  for (std::size_t i = 0; i < 4; ++i) b.add(i, i, 4.0);
  b.add(0, 1, -1.0);
  b.add(1, 0, -0.5);  // breaks symmetry
  b.add(1, 2, -1.0);
  b.add(2, 1, -1.0);
  b.add(2, 3, -1.0);
  b.add(3, 2, -1.0);
  return b.build();
}

TEST(SolverHandleTest, ShimIsBehaviorallyIdentical) {
  // The deprecated free function is a thin wrapper over a temporary
  // Solver: identical solution bits, iterations, and attempt labels.
  const CsrMatrix a = grid_laplacian(12);
  Vector b(a.size());
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0 + 0.01 * double(i);

  Vector x_shim, x_handle;
  const auto r_shim = solve(a, b, x_shim);
  Solver solver(a);
  const auto r_handle = solver.solve(b, x_handle);

  ASSERT_TRUE(r_shim.converged);
  ASSERT_TRUE(r_handle.converged);
  EXPECT_EQ(x_shim, x_handle);
  EXPECT_EQ(r_shim.iterations, r_handle.iterations);
  ASSERT_EQ(r_shim.attempts.size(), r_handle.attempts.size());
  for (std::size_t i = 0; i < r_shim.attempts.size(); ++i) {
    EXPECT_EQ(r_shim.attempts[i].method, r_handle.attempts[i].method);
  }
}

TEST(SolverHandleTest, AutoResolvesKindAtBind) {
  Solver sym(grid_laplacian(4));
  EXPECT_EQ(sym.kind(), SolverKind::Cg);
  EXPECT_EQ(sym.preconditioner_label(), "ilu0");  // PrecondKind::Auto

  const CsrMatrix asym = asymmetric_system();
  Solver gen(asym);
  EXPECT_EQ(gen.kind(), SolverKind::BiCgStab);
}

TEST(SolverHandleTest, RepeatedSolvesAreIdentical) {
  // The reused workspace must not leak state between solves: solving the
  // same system twice from the same guess gives bitwise-equal results,
  // and an interleaved different RHS does not perturb that.
  const CsrMatrix a = grid_laplacian(10);
  const Vector b1(a.size(), 1.0);
  Vector b2(a.size(), 0.0);
  b2[0] = 5.0;
  b2[a.size() - 1] = -3.0;

  Solver solver(a);
  Vector x_first;
  const auto r_first = solver.solve(b1, x_first);

  Vector x_other;
  solver.solve(b2, x_other);  // dirty the workspace

  Vector x_second;
  const auto r_second = solver.solve(b1, x_second);

  ASSERT_TRUE(r_first.converged);
  ASSERT_TRUE(r_second.converged);
  EXPECT_EQ(x_first, x_second);
  EXPECT_EQ(r_first.iterations, r_second.iterations);
}

TEST(SolverHandleTest, SolveManyMatchesLoopedSolve) {
  const CsrMatrix a = grid_laplacian(8);
  std::vector<Vector> bs;
  for (int k = 0; k < 3; ++k) {
    Vector b(a.size(), 0.0);
    b[static_cast<std::size_t>(k) * 7] = 1.0 + k;
    bs.push_back(std::move(b));
  }

  Solver batched(a);
  std::vector<Vector> xs_batched;
  const auto reports = batched.solve_many(bs, xs_batched);

  Solver looped(a);
  ASSERT_EQ(reports.size(), bs.size());
  ASSERT_EQ(xs_batched.size(), bs.size());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    Vector x;
    const auto r = looped.solve(bs[i], x);
    ASSERT_TRUE(reports[i].converged);
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(xs_batched[i], x) << "rhs " << i;
    EXPECT_EQ(reports[i].iterations, r.iterations) << "rhs " << i;
  }
}

TEST(SolverHandleTest, SolveManyUsesGuessesAndResizesMissing) {
  const CsrMatrix a = grid_laplacian(6);
  const std::vector<Vector> bs(2, Vector(a.size(), 1.0));

  Solver solver(a);
  Vector reference_x;
  const auto cold = solver.solve(bs[0], reference_x);
  ASSERT_TRUE(cold.converged);

  // xs[0] warm-started at the solution, xs[1] absent (zero guess).
  std::vector<Vector> xs;
  xs.push_back(reference_x);
  const auto reports = solver.solve_many(bs, xs);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].converged);
  EXPECT_TRUE(reports[1].converged);
  EXPECT_LE(reports[0].iterations, 1u);           // warm start
  EXPECT_EQ(reports[1].iterations, cold.iterations);  // cold start
}

TEST(SolverHandleTest, PerCallIterativeOverride) {
  const CsrMatrix a = grid_laplacian(16);
  const Vector b(a.size(), 1.0);

  SolveOptions options;
  options.escalate = false;
  Solver solver(a, options);

  IterativeOptions starved;
  starved.max_iterations = 1;
  starved.relative_tolerance = 1e-12;
  Vector x_starved;
  const auto r_starved = solver.solve(b, x_starved, starved);
  EXPECT_FALSE(r_starved.converged);

  // The bind-time options are untouched: a plain solve still converges.
  Vector x;
  EXPECT_TRUE(solver.solve(b, x).converged);
}

TEST(SolverHandleTest, IterateOnceIsSingleAttempt) {
  const CsrMatrix a = grid_laplacian(12);
  const Vector b(a.size(), 1.0);
  Solver solver(a);

  IterativeOptions iterative;
  Vector x(a.size(), 0.0);
  const auto warm = solver.iterate_once(b, x, iterative);
  ASSERT_TRUE(warm.converged);
  // Raw primary-method report: no escalation trail is recorded.
  EXPECT_TRUE(warm.attempts.empty());

  // Starved iterate_once just fails -- no ladder behind it.
  IterativeOptions starved;
  starved.max_iterations = 1;
  starved.relative_tolerance = 1e-12;
  Vector x2(a.size(), 0.0);
  const auto stalled = solver.iterate_once(b, x2, starved);
  EXPECT_FALSE(stalled.converged);
  EXPECT_TRUE(stalled.attempts.empty());
}

TEST(SolverHandleTest, EscalationLadderStillRunsThroughHandle) {
  // A starved per-call budget with escalation enabled must walk past the
  // primary CG attempt, matching the historic la::solve ladder.
  const CsrMatrix a = grid_laplacian(16);
  const Vector b(a.size(), 1.0);
  Solver solver(a);

  IterativeOptions starved;
  starved.max_iterations = 2;
  starved.relative_tolerance = 1e-12;
  Vector x;
  const auto report = solver.solve(b, x, starved);
  // The dense-LU rung catches it (256 unknowns < dense_fallback_max_size).
  ASSERT_TRUE(report.converged);
  EXPECT_GT(report.attempts.size(), 1u);
  EXPECT_EQ(report.attempts.back().method, "dense-lu");
}

TEST(SolverHandleTest, RejectsSizeMismatch) {
  const CsrMatrix a = grid_laplacian(4);
  Solver solver(a);
  Vector x;
  EXPECT_THROW(solver.solve(Vector(3, 1.0), x), Error);
}

TEST(SolverHandleTest, MoveTransfersBinding) {
  const CsrMatrix a = grid_laplacian(8);
  Solver first(a);
  const Vector b(a.size(), 1.0);
  Vector x_before;
  const auto r_before = first.solve(b, x_before);

  Solver second = std::move(first);
  EXPECT_EQ(&second.matrix(), &a);
  Vector x_after;
  const auto r_after = second.solve(b, x_after);
  ASSERT_TRUE(r_before.converged);
  ASSERT_TRUE(r_after.converged);
  EXPECT_EQ(x_before, x_after);
}

TEST(SolverHandleTest, ExplicitBackendChoiceSticks) {
  const CsrMatrix a = grid_laplacian(6);
  SolveOptions opts;
  opts.backend = BackendChoice::Optimized;
  Solver solver(a, opts);
  EXPECT_STREQ(solver.backend().name(), "optimized");

  const Vector b(a.size(), 1.0);
  Vector x;
  EXPECT_TRUE(solver.solve(b, x).converged);
}

}  // namespace
}  // namespace vstack::la
