// The la::solve graceful-degradation ladder: fault-damaged PDNs hand the
// solver indefinite, non-symmetric, and outright singular systems, and the
// contract is that solve() NEVER throws and NEVER returns NaN -- it either
// converges (with the attempt trail showing which rung succeeded) or comes
// back with a structured diagnostic and the caller's initial guess intact.
#include <gtest/gtest.h>

#include <cmath>

#include "la/solve.h"

namespace vstack::la {
namespace {

CsrMatrix from_dense(const std::vector<std::vector<double>>& rows) {
  CooBuilder b(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < rows[i].size(); ++j) {
      if (rows[i][j] != 0.0) b.add(i, j, rows[i][j]);
    }
  }
  return b.build();
}

double residual(const CsrMatrix& a, const Vector& x, const Vector& b) {
  return norm2(subtract(b, a.multiply(x))) / norm2(b);
}

bool all_finite(const Vector& x) {
  for (const double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

TEST(SolveEscalationTest, HealthySpdSolvesOnFirstAttempt) {
  CooBuilder builder(10);
  for (std::size_t i = 0; i < 10; ++i) {
    builder.add(i, i, 2.0);
    if (i > 0) builder.add(i, i - 1, -1.0);
    if (i + 1 < 10) builder.add(i, i + 1, -1.0);
  }
  const CsrMatrix a = builder.build();
  const Vector b(10, 1.0);
  Vector x;
  const auto report = solve(a, b, x);
  EXPECT_TRUE(report.converged);
  ASSERT_EQ(report.attempts.size(), 1u);
  EXPECT_TRUE(report.attempts[0].converged);
  EXPECT_EQ(report.attempts[0].method.substr(0, 2), "cg");
  EXPECT_TRUE(report.diagnostic.empty());
  EXPECT_LT(residual(a, x, b), 1e-8);
}

TEST(SolveEscalationTest, SymmetricIndefiniteEscalatesPastCg) {
  // Eigenvalues 3 and -1; b = (1, 0) mixes both eigenvectors, so CG's very
  // first search direction has negative curvature (b^T A^-1 b = -1/3) and
  // the curvature check rejects it.  A later rung must still deliver.
  const CsrMatrix a = from_dense({{1.0, 2.0}, {2.0, 1.0}});
  ASSERT_TRUE(a.is_symmetric());
  const Vector b{1.0, 0.0};
  Vector x;
  const auto report = solve(a, b, x);
  EXPECT_TRUE(report.converged);
  ASSERT_GE(report.attempts.size(), 2u);
  EXPECT_FALSE(report.attempts.front().converged);  // CG rejected it
  EXPECT_TRUE(report.attempts.back().converged);
  EXPECT_NEAR(x[0], -1.0 / 3.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0 / 3.0, 1e-9);
}

TEST(SolveEscalationTest, SkewSystemRecoversThroughTheLadder) {
  // [[0,1],[-1,0]]: structurally zero diagonal (ILU(0) unavailable, Jacobi
  // useless), p^T A p = 0 everywhere -- the primary Krylov rungs break
  // down, and a deeper rung (shifted-ILU rebuild or dense LU) recovers.
  const CsrMatrix a = from_dense({{0.0, 1.0}, {-1.0, 0.0}});
  const Vector b{1.0, 1.0};
  Vector x;
  const auto report = solve(a, b, x);
  EXPECT_TRUE(report.converged);
  ASSERT_GE(report.attempts.size(), 2u);
  EXPECT_FALSE(report.attempts.front().converged);
  EXPECT_TRUE(report.attempts.back().converged);
  EXPECT_NEAR(x[0], -1.0, 1e-9);
  EXPECT_NEAR(x[1], 1.0, 1e-9);
}

TEST(SolveEscalationTest, SkewSystemReachesDenseLuWhenRebuildNeutered) {
  // With a zero rebuild shift the third rung sees the same zero-diagonal
  // matrix (Jacobi again, same breakdown), so only dense LU can finish.
  const CsrMatrix a = from_dense({{0.0, 1.0}, {-1.0, 0.0}});
  const Vector b{1.0, 1.0};
  Vector x;
  SolveOptions opts;
  opts.ilu_rebuild_shift = 0.0;
  const auto report = solve(a, b, x, opts);
  EXPECT_TRUE(report.converged);
  ASSERT_FALSE(report.attempts.empty());
  EXPECT_EQ(report.attempts.back().method, "dense-lu");
  EXPECT_TRUE(report.attempts.back().converged);
  EXPECT_NEAR(x[0], -1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveEscalationTest, SingularSystemFailsCleanlyWithoutNan) {
  // Rank-1 matrix with an inconsistent RHS: every rung must fail, the
  // report must carry a diagnostic, and x must come back as the caller's
  // initial guess -- finite, untouched.
  const CsrMatrix a = from_dense({{1.0, 1.0}, {1.0, 1.0}});
  const Vector b{1.0, 0.0};
  Vector x{7.0, -7.0};
  const auto report = solve(a, b, x);
  EXPECT_FALSE(report.converged);
  EXPECT_FALSE(report.diagnostic.empty());
  EXPECT_GE(report.attempts.size(), 2u);  // the whole ladder ran
  for (const auto& attempt : report.attempts) {
    EXPECT_FALSE(attempt.converged) << attempt.method;
  }
  EXPECT_TRUE(all_finite(x));
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], -7.0);
}

TEST(SolveEscalationTest, EscalationOffRunsExactlyOneAttempt) {
  const CsrMatrix a = from_dense({{1.0, 2.0}, {2.0, 1.0}});  // indefinite
  const Vector b{1.0, 0.0};  // negative-curvature direction: CG rejects
  Vector x;
  SolveOptions opts;
  opts.escalate = false;
  const auto report = solve(a, b, x, opts);
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.attempts.size(), 1u);
  EXPECT_FALSE(report.diagnostic.empty());
  EXPECT_TRUE(all_finite(x));
}

TEST(SolveEscalationTest, DenseFallbackRespectsSizeCap) {
  // With the dense rung capped below the system size, the singular system
  // has no recovery path at all -- still no throw, still finite.
  const CsrMatrix a = from_dense({{1.0, 1.0}, {1.0, 1.0}});
  const Vector b{1.0, 0.0};
  Vector x;
  SolveOptions opts;
  opts.dense_fallback_max_size = 1;
  const auto report = solve(a, b, x, opts);
  EXPECT_FALSE(report.converged);
  for (const auto& attempt : report.attempts) {
    EXPECT_NE(attempt.method, "dense-lu");
  }
  EXPECT_TRUE(all_finite(x));
}

TEST(SolveEscalationTest, StagnationDetectionTerminatesEarly) {
  // A stagnation factor no iteration can meet makes every step count as
  // "no progress": CG on a grid that normally needs dozens of iterations
  // must give up after the one-iteration window instead of burning the
  // full budget.
  CooBuilder builder(400);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 20; ++c) {
      const std::size_t i = r * 20 + c;
      builder.add(i, i, 4.0);
      if (r > 0) builder.add(i, i - 20, -1.0);
      if (r + 1 < 20) builder.add(i, i + 20, -1.0);
      if (c > 0) builder.add(i, i - 1, -1.0);
      if (c + 1 < 20) builder.add(i, i + 1, -1.0);
    }
  }
  const CsrMatrix a = builder.build();
  const Vector b(400, 1.0);

  Vector x_ok;
  SolveOptions healthy;
  healthy.kind = SolverKind::Cg;
  healthy.escalate = false;
  ASSERT_TRUE(solve(a, b, x_ok, healthy).converged);

  Vector x;
  SolveOptions opts = healthy;
  opts.iterative.stagnation_window = 1;
  opts.iterative.stagnation_factor = 1e-30;  // unreachable improvement
  const auto report = solve(a, b, x, opts);
  EXPECT_FALSE(report.converged);
  EXPECT_LE(report.attempts[0].iterations, 3u);
  EXPECT_TRUE(all_finite(x));
}

TEST(SolveEscalationTest, IllConditionedSystemStillConverges) {
  // Diagonal spread of 1e12: brutal for unpreconditioned Krylov, routine
  // for the ladder.  The final answer must be accurate, whatever rung wins.
  const std::size_t n = 6;
  CooBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) {
    builder.add(i, i, std::pow(10.0, 2.0 * static_cast<double>(i)));
  }
  const CsrMatrix a = builder.build();
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = std::pow(10.0, 2.0 * static_cast<double>(i));
  }
  Vector x;
  const auto report = solve(a, b, x);
  EXPECT_TRUE(report.converged);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], 1.0, 1e-6);
  }
}

}  // namespace
}  // namespace vstack::la
