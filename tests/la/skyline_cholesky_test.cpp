#include "la/skyline_cholesky.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "la/cg.h"

namespace vstack::la {
namespace {

CsrMatrix laplacian_2d(std::size_t m) {
  const std::size_t n = m * m;
  CooBuilder b(n);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t i = r * m + c;
      b.add(i, i, 4.0);
      if (r > 0) b.add(i, i - m, -1.0);
      if (r + 1 < m) b.add(i, i + m, -1.0);
      if (c > 0) b.add(i, i - 1, -1.0);
      if (c + 1 < m) b.add(i, i + 1, -1.0);
    }
  }
  return b.build();
}

TEST(RcmTest, ProducesValidPermutation) {
  const auto a = laplacian_2d(10);
  const auto perm = reverse_cuthill_mckee(a);
  std::vector<bool> seen(a.size(), false);
  for (const std::size_t p : perm) {
    ASSERT_LT(p, a.size());
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(RcmTest, ReducesBandwidthOfShuffledGrid) {
  // Shuffle a grid matrix, then check RCM restores a small bandwidth.
  const auto a = laplacian_2d(12);
  Rng rng(5);
  std::vector<std::size_t> shuffle(a.size());
  for (std::size_t i = 0; i < shuffle.size(); ++i) shuffle[i] = i;
  rng.shuffle(shuffle);
  const auto shuffled = permute_symmetric(a, shuffle);
  const auto rcm = reverse_cuthill_mckee(shuffled);
  const auto restored = permute_symmetric(shuffled, rcm);
  EXPECT_LT(half_bandwidth(restored), half_bandwidth(shuffled) / 2);
}

TEST(RcmTest, PermuteRejectsBadPermutation) {
  const auto a = laplacian_2d(3);
  std::vector<std::size_t> bad(a.size(), 0);  // not a bijection
  EXPECT_THROW(permute_symmetric(a, bad), Error);
}

TEST(SkylineCholeskyTest, SolvesGridSystem) {
  const auto a = laplacian_2d(15);
  Vector b(a.size());
  Rng rng(7);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  SkylineCholesky chol(a);
  const Vector x = chol.solve(b);
  const Vector r = subtract(b, a.multiply(x));
  EXPECT_LT(norm2(r) / norm2(b), 1e-12);
}

TEST(SkylineCholeskyTest, MatchesCg) {
  const auto a = laplacian_2d(12);
  const Vector b(a.size(), 1.0);
  SkylineCholesky chol(a);
  const Vector x_direct = chol.solve(b);
  Vector x_cg;
  conjugate_gradient(a, b, x_cg, *make_ilu0(a));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(x_direct[i], x_cg[i], 1e-7);
  }
}

TEST(SkylineCholeskyTest, RejectsIndefiniteMatrix) {
  CooBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 2.0);
  b.add(1, 1, 1.0);  // eigenvalues 3 and -1
  EXPECT_THROW(SkylineCholesky{b.build()}, Error);
}

TEST(SkylineCholeskyTest, RejectsWrongRhs) {
  const auto a = laplacian_2d(3);
  SkylineCholesky chol(a);
  EXPECT_THROW(chol.solve(Vector(4, 1.0)), Error);
}

TEST(ReorderedCholeskyTest, SolvesInOriginalNumbering) {
  // Shuffle the grid so the raw envelope would be huge; the reordered
  // factorization must still return the answer in the caller's indices.
  const auto a = laplacian_2d(12);
  Rng rng(11);
  std::vector<std::size_t> shuffle(a.size());
  for (std::size_t i = 0; i < shuffle.size(); ++i) shuffle[i] = i;
  rng.shuffle(shuffle);
  const auto shuffled = permute_symmetric(a, shuffle);

  Vector b(a.size());
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  ReorderedCholesky chol(shuffled);
  const Vector x = chol.solve(b);
  const Vector r = subtract(b, shuffled.multiply(x));
  EXPECT_LT(norm2(r) / norm2(b), 1e-12);
  EXPECT_LT(chol.bandwidth_after(), chol.bandwidth_before());
}

TEST(ReorderedCholeskyTest, RepeatedSolvesAreConsistent) {
  const auto a = laplacian_2d(8);
  ReorderedCholesky chol(a);
  const Vector x1 = chol.solve(Vector(a.size(), 1.0));
  const Vector x2 = chol.solve(Vector(a.size(), 2.0));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(x2[i], 2.0 * x1[i], 1e-12);
  }
}

}  // namespace
}  // namespace vstack::la
