#include "la/dense_lu.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace vstack::la {
namespace {

TEST(DenseLuTest, SolvesKnownSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  DenseLu lu(a);
  const Vector x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLuTest, RequiresPivoting) {
  // Zero leading entry forces a row swap.
  DenseMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  DenseLu lu(a);
  const Vector x = lu.solve({3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLuTest, ThrowsOnSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(DenseLu{a}, Error);
}

TEST(DenseLuTest, RandomRoundTrip) {
  Rng rng(3);
  const std::size_t n = 25;
  DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += 5.0;  // diagonally dominant => nonsingular
  }
  Vector x_true(n);
  for (auto& v : x_true) v = rng.uniform(-2.0, 2.0);
  const Vector b = a.multiply(x_true);
  const Vector x = DenseLu(a).solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-10);
  }
}

TEST(DenseLuTest, FromCsrPreservesEntries) {
  CooBuilder b(2);
  b.add(0, 0, 1.5);
  b.add(1, 0, -2.0);
  b.add(1, 1, 4.0);
  const DenseMatrix d = DenseMatrix::from_csr(b.build());
  EXPECT_DOUBLE_EQ(d(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(d(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 4.0);
}

TEST(DenseLuTest, SolveRejectsWrongRhsSize) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  DenseLu lu(a);
  EXPECT_THROW(lu.solve({1.0, 2.0, 3.0}), Error);
}

}  // namespace
}  // namespace vstack::la
