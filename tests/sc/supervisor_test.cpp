#include "sc/supervisor.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/error.h"

namespace vstack::sc {
namespace {

SupervisorConfig fast_config() {
  SupervisorConfig cfg;
  cfg.trip_fraction = 0.10;
  cfg.recovery_fraction = 0.05;
  cfg.detection_latency = 20e-9;
  cfg.sense_interval = 10e-9;
  cfg.action_dwell = 50e-9;
  cfg.watchdog_timeout = 1e-6;
  return cfg;
}

/// Drive the supervisor at its sense cadence with a uniform droop on layer
/// `hot` (zero elsewhere) from t_begin (inclusive) to t_end (exclusive);
/// returns every action fired.
std::vector<SupervisorAction> drive(StackSupervisor& sup, double t_begin,
                                    double t_end, double droop,
                                    std::size_t layers, std::size_t hot) {
  std::vector<SupervisorAction> all;
  const double dt = sup.config().sense_interval;
  // Index-based tick times: accumulating t += dt drifts by ULPs over a few
  // dozen ticks, enough to push a latency comparison one tick late.
  for (std::size_t i = 0;; ++i) {
    const double t = t_begin + static_cast<double>(i) * dt;
    if (t >= t_end - 0.5 * dt) break;
    std::vector<double> sample(layers, 0.0);
    sample[hot] = droop;
    for (auto& a : sup.observe(t, sample)) all.push_back(a);
  }
  return all;
}

TEST(SupervisorConfigTest, ValidateRejectsBrokenHysteresis) {
  SupervisorConfig cfg = fast_config();
  cfg.recovery_fraction = cfg.trip_fraction;  // no hysteresis band
  EXPECT_THROW(cfg.validate(), Error);
  cfg = fast_config();
  cfg.watchdog_timeout = cfg.detection_latency;  // watchdog inside latency
  EXPECT_THROW(cfg.validate(), Error);
  cfg = fast_config();
  cfg.frequency_boost = 1.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = fast_config();
  cfg.max_actions = 0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(SupervisorTest, StaysNominalInsideTheTripBand) {
  StackSupervisor sup(fast_config(), 4);
  const auto fired = drive(sup, 0.0, 200e-9, 0.09, 4, 1);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(sup.state(), SupervisorState::Nominal);
  EXPECT_LT(sup.detected_at(), 0.0);
  EXPECT_NEAR(sup.worst_droop(), 0.09, 1e-15);
}

TEST(SupervisorTest, GlitchShorterThanLatencyDisarmsWithoutActions) {
  StackSupervisor sup(fast_config(), 4);
  // One 10 ns sample above trip, then clean again: latency is 20 ns, so
  // detection never completes.
  sup.observe(0.0, {0.0, 0.2, 0.0, 0.0});
  EXPECT_EQ(sup.state(), SupervisorState::Armed);
  const auto fired = drive(sup, 10e-9, 100e-9, 0.01, 4, 1);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(sup.state(), SupervisorState::Nominal);
  EXPECT_LT(sup.detected_at(), 0.0);
}

TEST(SupervisorTest, DetectionWaitsOutTheLatencyThenFiresFirstRung) {
  StackSupervisor sup(fast_config(), 4);
  const auto fired = drive(sup, 0.0, 40e-9, 0.2, 4, 2);
  // Armed at 0, latency 20 ns: the t = 20 ns tick declares the fault AND
  // fires the first rung at the same instant.
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, SupervisorActionKind::PhaseRebalance);
  EXPECT_EQ(fired[0].layer, 2u);
  EXPECT_DOUBLE_EQ(fired[0].time, 20e-9);
  EXPECT_DOUBLE_EQ(sup.detected_at(), 20e-9);
  EXPECT_EQ(sup.state(), SupervisorState::Mitigating);
}

TEST(SupervisorTest, LadderEscalatesInOrderOneRungPerDwell) {
  StackSupervisor sup(fast_config(), 4);
  // Stop right after the shutdown rung: with the droop STILL high past it,
  // the supervisor would re-arm and start a second episode.
  const auto fired = drive(sup, 0.0, 180e-9, 0.2, 4, 1);
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0].kind, SupervisorActionKind::PhaseRebalance);
  EXPECT_EQ(fired[1].kind, SupervisorActionKind::FrequencyRetarget);
  EXPECT_DOUBLE_EQ(fired[1].factor, sup.config().frequency_boost);
  EXPECT_EQ(fired[2].kind, SupervisorActionKind::BypassEngage);
  EXPECT_EQ(fired[3].kind, SupervisorActionKind::LayerShutdown);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_GE(fired[i].time - fired[i - 1].time,
              sup.config().action_dwell - 1e-15);
  }
  EXPECT_EQ(sup.state(), SupervisorState::Shutdown);
}

TEST(SupervisorTest, RecoveryInsideTheBandStopsTheLadder) {
  StackSupervisor sup(fast_config(), 2);
  drive(sup, 0.0, 30e-9, 0.2, 2, 0);  // detect + first rung at 20 ns
  EXPECT_EQ(sup.state(), SupervisorState::Mitigating);
  // Mitigation worked: droop falls inside the recovery band.
  const auto fired = drive(sup, 30e-9, 200e-9, 0.04, 2, 0);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(sup.state(), SupervisorState::Recovered);
  EXPECT_DOUBLE_EQ(sup.recovered_at(), 30e-9);
  EXPECT_EQ(sup.actions().size(), 1u);
}

TEST(SupervisorTest, HysteresisHoldsBetweenRecoveryAndTrip) {
  StackSupervisor sup(fast_config(), 2);
  drive(sup, 0.0, 30e-9, 0.2, 2, 0);
  drive(sup, 30e-9, 50e-9, 0.04, 2, 0);  // recovered
  // Droop creeps back up BETWEEN the bands: no re-arm, no chatter.
  const auto fired = drive(sup, 50e-9, 200e-9, 0.08, 2, 0);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(sup.state(), SupervisorState::Recovered);
}

TEST(SupervisorTest, ReTripAfterRecoveryContinuesTheLadder) {
  StackSupervisor sup(fast_config(), 2);
  drive(sup, 0.0, 30e-9, 0.2, 2, 0);     // PhaseRebalance fired
  drive(sup, 30e-9, 50e-9, 0.04, 2, 0);  // recovered
  // Re-trip: detection latency applies again, then the NEXT rung fires
  // (rebalance already proved insufficient -- no point repeating it).
  const auto fired = drive(sup, 50e-9, 120e-9, 0.2, 2, 0);
  ASSERT_GE(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, SupervisorActionKind::FrequencyRetarget);
  // Re-armed at 50 ns, latency 20 ns: fires on the first tick at/after
  // 70 ns (ULP noise in the tick times may push it one tick later).
  EXPECT_GE(fired[0].time, 70e-9 - 1e-12);
  EXPECT_LE(fired[0].time, 80e-9 + 1e-12);
}

TEST(SupervisorTest, WatchdogJumpsStraightToShutdown) {
  SupervisorConfig cfg = fast_config();
  cfg.action_dwell = 10e-6;     // ladder stalls: dwell longer than the run
  cfg.watchdog_timeout = 100e-9;
  StackSupervisor sup(cfg, 2);
  const auto fired = drive(sup, 0.0, 130e-9, 0.2, 2, 1);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].kind, SupervisorActionKind::PhaseRebalance);
  EXPECT_EQ(fired[1].kind, SupervisorActionKind::LayerShutdown);
  // Mitigating since 20 ns + 100 ns watchdog = first tick at/after 120 ns.
  EXPECT_DOUBLE_EQ(fired[1].time, 120e-9);
  EXPECT_EQ(sup.state(), SupervisorState::Shutdown);
}

TEST(SupervisorTest, ActionTrailBoundHoldsButWatchdogIsExempt) {
  SupervisorConfig cfg = fast_config();
  cfg.max_actions = 1;
  cfg.watchdog_timeout = 150e-9;
  StackSupervisor sup(cfg, 2);
  const auto fired = drive(sup, 0.0, 180e-9, 0.2, 2, 0);
  // Bound stops the ladder after one action; the watchdog shutdown still
  // fires (and is the ONLY thing allowed past the bound).
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].kind, SupervisorActionKind::PhaseRebalance);
  EXPECT_EQ(fired[1].kind, SupervisorActionKind::LayerShutdown);
  EXPECT_NEAR(fired[1].time, 170e-9, 1e-12);
}

TEST(SupervisorTest, ShutdownReArmsAFreshLadderForAnotherLayer) {
  SupervisorConfig cfg = fast_config();
  cfg.watchdog_timeout = 100e-9;
  cfg.action_dwell = 10e-6;  // only the watchdog escalates
  StackSupervisor sup(cfg, 4);
  drive(sup, 0.0, 130e-9, 0.2, 4, 1);  // rebalance + watchdog shutdown
  ASSERT_EQ(sup.state(), SupervisorState::Shutdown);
  // A DIFFERENT layer trips: new episode, ladder restarts at rung 0.
  const auto fired = drive(sup, 130e-9, 200e-9, 0.2, 4, 3);
  ASSERT_GE(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, SupervisorActionKind::PhaseRebalance);
  EXPECT_EQ(fired[0].layer, 3u);
}

TEST(SupervisorTest, RejectsMalformedSamples) {
  StackSupervisor sup(fast_config(), 2);
  EXPECT_THROW(sup.observe(0.0, {0.1}), Error);  // wrong layer count
  sup.observe(10e-9, {0.0, 0.0});
  EXPECT_THROW(sup.observe(5e-9, {0.0, 0.0}), Error);  // time went backwards
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(sup.observe(20e-9, {nan, 0.0}), Error);
}

}  // namespace
}  // namespace vstack::sc
