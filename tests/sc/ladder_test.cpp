#include "sc/ladder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace vstack::sc {
namespace {

TEST(LadderTest, TwoLayerMismatchHandledByOneCell) {
  // I1 = 1.0, I2 = 0.4: the single converter must source the 0.6 A gap.
  const auto sol = solve_ladder_currents({1.0, 0.4});
  ASSERT_EQ(sol.level_net_currents.size(), 1u);
  EXPECT_NEAR(sol.level_net_currents[0], 0.6, 1e-12);
  // Supply current is the average of the two layer currents (charge
  // recycling at work).
  EXPECT_NEAR(sol.supply_current, 0.7, 1e-12);
}

TEST(LadderTest, BalancedLoadsNeedNoConverterCurrent) {
  const auto sol = solve_ladder_currents({0.5, 0.5, 0.5, 0.5});
  for (double c : sol.level_net_currents) EXPECT_NEAR(c, 0.0, 1e-12);
  EXPECT_NEAR(sol.supply_current, 0.5, 1e-12);
}

TEST(LadderTest, SupplyCurrentConservedTopAndBottom) {
  const std::vector<double> loads{0.9, 0.2, 0.7, 0.4, 0.8, 0.1};
  const auto sol = solve_ladder_currents(loads);
  // Ground return at rail 0: sourcing c_1 at rail 1 draws c_1/2 out of rail
  // 0, so I_1 - c_1/2 must equal the top supply draw.
  const double ground_return = loads[0] - 0.5 * sol.level_net_currents[0];
  EXPECT_NEAR(sol.supply_current, ground_return, 1e-12);
}

TEST(LadderTest, KclHoldsAtEveryRail) {
  const std::vector<double> loads{0.6, 0.3, 0.9, 0.2, 0.5};
  const auto sol = solve_ladder_currents(loads);
  const auto& c = sol.level_net_currents;
  const std::size_t levels = c.size();
  for (std::size_t k = 1; k <= levels; ++k) {
    const double c_km1 = (k >= 2) ? c[k - 2] : 0.0;
    const double c_kp1 = (k < levels) ? c[k] : 0.0;
    const double residual =
        c[k - 1] - 0.5 * (c_km1 + c_kp1) - (loads[k - 1] - loads[k]);
    EXPECT_NEAR(residual, 0.0, 1e-12) << "rail " << k;
  }
}

TEST(LadderTest, InterleavedPatternLoadsOuterCells) {
  // High-low-high-low: the outer cells source the mismatch while the middle
  // cell idles -- its neighbours' half-currents already balance its rail
  // (c = [0.5, 0, 0.5] solves the tridiagonal KCL exactly).
  const auto sol = solve_ladder_currents({1.0, 0.5, 1.0, 0.5});
  ASSERT_EQ(sol.level_net_currents.size(), 3u);
  EXPECT_NEAR(sol.level_net_currents[0], 0.5, 1e-12);
  EXPECT_NEAR(sol.level_net_currents[1], 0.0, 1e-12);
  EXPECT_NEAR(sol.level_net_currents[2], 0.5, 1e-12);
}

TEST(LadderTest, RejectsTooFewLayers) {
  EXPECT_THROW(solve_ladder_currents({1.0}), Error);
}

TEST(LadderTest, RejectsNegativeCurrents) {
  EXPECT_THROW(solve_ladder_currents({1.0, -0.1}), Error);
}

TEST(LadderPowerTest, IdealRecyclingIsLossFreeOfConduction) {
  LadderStackDesign d;
  d.layer_count = 4;
  d.converters_per_level = 8;
  const auto out = evaluate_ladder_power(d, {0.4, 0.4, 0.4, 0.4}, 1.0);
  EXPECT_NEAR(out.conduction_loss, 0.0, 1e-12);
  EXPECT_GT(out.parasitic_loss, 0.0);  // open-loop converters always switch
  EXPECT_LT(out.efficiency, 1.0);
  EXPECT_NEAR(out.load_power, 1.6, 1e-12);
}

TEST(LadderPowerTest, MoreConvertersLowerEfficiencyOpenLoop) {
  // Paper Sec. 5.3: open-loop converters do not modulate frequency, so each
  // extra converter adds parasitic loss.
  LadderStackDesign d;
  d.layer_count = 8;
  const std::vector<double> loads{0.4, 0.3, 0.4, 0.3, 0.4, 0.3, 0.4, 0.3};
  d.converters_per_level = 2;
  const auto two = evaluate_ladder_power(d, loads, 1.0);
  d.converters_per_level = 8;
  const auto eight = evaluate_ladder_power(d, loads, 1.0);
  EXPECT_GT(two.efficiency, eight.efficiency);
}

TEST(LadderPowerTest, LargerImbalanceLowersEfficiency) {
  LadderStackDesign d;
  d.layer_count = 8;
  d.converters_per_level = 8 * 16;  // 8 per core, 16 cores
  auto loads_for = [](double imbalance) {
    std::vector<double> loads(8);
    for (std::size_t l = 0; l < 8; ++l) {
      loads[l] = (l % 2 == 0) ? 7.6 : 7.6 * (1.0 - imbalance);
    }
    return loads;
  };
  const auto low = evaluate_ladder_power(d, loads_for(0.1), 1.0);
  const auto high = evaluate_ladder_power(d, loads_for(0.8), 1.0);
  EXPECT_GT(low.efficiency, high.efficiency);
}

TEST(LadderPowerTest, CurrentLimitDetected) {
  LadderStackDesign d;
  d.layer_count = 2;
  d.converters_per_level = 1;
  const auto out = evaluate_ladder_power(d, {0.5, 0.2}, 1.0);
  EXPECT_FALSE(out.within_current_limits);  // 0.3 A > 100 mA limit
  EXPECT_NEAR(out.max_converter_current, 0.3, 1e-12);
}

TEST(LadderPowerTest, ClosedLoopImprovesLightLoadEfficiency) {
  LadderStackDesign open;
  open.layer_count = 4;
  open.converters_per_level = 64;
  LadderStackDesign closed = open;
  closed.converter.control = ControlPolicy::ClosedLoop;
  const std::vector<double> loads{6.0, 5.5, 6.0, 5.5};  // small imbalance
  const auto e_open = evaluate_ladder_power(open, loads, 1.0);
  const auto e_closed = evaluate_ladder_power(closed, loads, 1.0);
  EXPECT_GT(e_closed.efficiency, e_open.efficiency);
}

TEST(LadderPowerTest, RejectsMismatchedVector) {
  LadderStackDesign d;
  d.layer_count = 4;
  EXPECT_THROW(evaluate_ladder_power(d, {1.0, 1.0}, 1.0), Error);
}

}  // namespace
}  // namespace vstack::sc
