// Tests for the alternative regulator models (linear, buck) and their
// relationships to the SC converter the paper argues for.
#include <gtest/gtest.h>

#include "common/error.h"
#include "sc/buck_converter.h"
#include "sc/compact_model.h"
#include "sc/linear_regulator.h"

namespace vstack::sc {
namespace {

TEST(LinearRegulatorTest, OutputTracksMidpointMinusDrop) {
  LinearRegulatorModel model(LinearRegulatorDesign{});
  const auto op = model.evaluate(2.0, 0.0, 50e-3);
  EXPECT_NEAR(op.output_voltage, 1.0 - 50e-3 * 0.05, 1e-12);
  EXPECT_GT(op.pass_device_loss, 0.0);
}

TEST(LinearRegulatorTest, EfficiencyNearHalfFor2To1) {
  // A linear regulator dropping half the span cannot exceed ~50%.
  LinearRegulatorModel model(LinearRegulatorDesign{});
  const auto op = model.evaluate(2.0, 0.0, 80e-3);
  EXPECT_LT(op.efficiency, 0.55);
  EXPECT_GT(op.efficiency, 0.40);
}

TEST(LinearRegulatorTest, SinkBurnsLowerHeadroom) {
  LinearRegulatorModel model(LinearRegulatorDesign{});
  const auto op = model.evaluate(2.0, 0.0, -40e-3);
  EXPECT_GT(op.output_voltage, 1.0);
  // Sinking burns (v_out - v_bottom) ~ 1 V of headroom.
  EXPECT_NEAR(op.pass_device_loss, 40e-3 * op.output_voltage, 1e-9);
}

TEST(LinearRegulatorTest, QuiescentLossAtZeroLoad) {
  LinearRegulatorDesign d;
  d.quiescent_current = 1e-3;
  LinearRegulatorModel model(d);
  const auto op = model.evaluate(2.0, 0.0, 0.0);
  EXPECT_NEAR(op.quiescent_loss, 2e-3, 1e-12);
  EXPECT_DOUBLE_EQ(op.efficiency, 0.0);
}

TEST(LinearRegulatorTest, CurrentLimit) {
  LinearRegulatorModel model(LinearRegulatorDesign{});
  EXPECT_TRUE(model.evaluate(2.0, 0.0, 0.1).within_current_limit);
  EXPECT_FALSE(model.evaluate(2.0, 0.0, 0.11).within_current_limit);
}

TEST(LinearRegulatorTest, Validation) {
  LinearRegulatorDesign d;
  d.output_resistance = 0.0;
  EXPECT_THROW(LinearRegulatorModel{d}, Error);
}

TEST(LinearRegulatorTest, ScBeatsLinearAtModerateCurrent) {
  // The paper's core argument for SC regulation: energy-storage converters
  // recycle the mismatch charge instead of burning headroom.
  const ScCompactModel sc_model{ScConverterDesign{}};
  const LinearRegulatorModel lin_model{LinearRegulatorDesign{}};
  for (double i = 20e-3; i <= 100e-3; i += 20e-3) {
    EXPECT_GT(sc_model.evaluate(2.0, 0.0, i).efficiency,
              lin_model.evaluate(2.0, 0.0, i).efficiency)
        << "at " << i;
  }
}

TEST(BuckTest, OutputIsHalfInputMinusDrop) {
  BuckConverterModel model(BuckConverterDesign{});
  const auto op = model.evaluate(2.0, 0.0, 50e-3);
  EXPECT_NEAR(op.output_voltage,
              1.0 - 50e-3 * (0.1 + 0.15), 1e-12);
}

TEST(BuckTest, RippleScalesInverselyWithLf) {
  BuckConverterDesign d;
  BuckConverterModel base(d);
  d.inductance *= 2.0;
  BuckConverterModel big_l(d);
  const auto r1 = base.evaluate(2.0, 0.0, 50e-3).ripple_current;
  const auto r2 = big_l.evaluate(2.0, 0.0, 50e-3).ripple_current;
  EXPECT_NEAR(r1 / r2, 2.0, 1e-9);
}

TEST(BuckTest, EnergyBalance) {
  BuckConverterModel model(BuckConverterDesign{});
  const auto op = model.evaluate(2.0, 0.0, 60e-3);
  EXPECT_NEAR(op.input_power,
              op.output_power + op.conduction_loss + op.switching_loss,
              1e-15);
  EXPECT_LT(op.efficiency, 1.0);
}

TEST(BuckTest, AreaDominatedByInductor) {
  const BuckConverterDesign d;
  // 50 nH at 20 nH/mm^2 -> 2.5 mm^2 of inductor.
  EXPECT_NEAR(d.area(), 2.5e-6 + d.control_area, 1e-12);
}

TEST(BuckTest, ScSmallerThanBuckOnChip) {
  // Integrated inductors are the buck's Achilles heel: the SC converter
  // with high-density caps is >20x smaller.
  const BuckConverterDesign buck;
  EXPECT_GT(buck.area(), 20.0 * 0.102e-6);
}

TEST(BuckTest, Validation) {
  BuckConverterDesign d;
  d.inductance = 0.0;
  EXPECT_THROW(BuckConverterModel{d}, Error);
}

TEST(BuckTest, CurrentLimitFlagged) {
  BuckConverterModel model(BuckConverterDesign{});
  EXPECT_FALSE(model.evaluate(2.0, 0.0, 0.2).within_current_limit);
}

// Cross-model property: all three regulators agree on the ideal midpoint
// at zero load.
TEST(RegulatorFamilyTest, AllRegulateTowardMidpoint) {
  const ScCompactModel sc_model{ScConverterDesign{}};
  const LinearRegulatorModel lin{LinearRegulatorDesign{}};
  const BuckConverterModel buck{BuckConverterDesign{}};
  for (double v_top : {1.0, 2.0, 3.0}) {
    const double mid = 0.5 * v_top;
    EXPECT_NEAR(sc_model.evaluate(v_top, 0.0, 0.0).output_voltage, mid, 1e-12);
    EXPECT_NEAR(lin.evaluate(v_top, 0.0, 0.0).output_voltage, mid, 1e-12);
    EXPECT_NEAR(buck.evaluate(v_top, 0.0, 0.0).output_voltage, mid, 1e-12);
  }
}

}  // namespace
}  // namespace vstack::sc
