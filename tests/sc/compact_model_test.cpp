#include "sc/compact_model.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::sc {
namespace {

ScConverterDesign paper_design() {
  return ScConverterDesign{};  // defaults are the paper's converter
}

TEST(CompactModelTest, RsslMatchesClassic2To1Value) {
  const ScCompactModel model(paper_design());
  // R_SSL = 1/(4 C f) for a 2:1 converter: 1/(4 * 8nF * 50MHz) = 0.625 Ohm.
  EXPECT_NEAR(model.r_ssl(50e6), 0.625, 1e-12);
}

TEST(CompactModelTest, RsslScalesInverselyWithFrequency) {
  const ScCompactModel model(paper_design());
  EXPECT_NEAR(model.r_ssl(25e6), 2.0 * model.r_ssl(50e6), 1e-12);
}

TEST(CompactModelTest, RfslMatchesHandComputation) {
  const ScCompactModel model(paper_design());
  // (sum |a_r|)^2 / (G_tot * D) = 4 / (71.1 * 0.5).
  EXPECT_NEAR(model.r_fsl(), 4.0 / (71.1 * 0.5), 1e-9);
}

TEST(CompactModelTest, RseriesNearPaperValue) {
  // Paper reports R_SERIES = 0.6 Ohm for the implemented converter.
  const ScCompactModel model(paper_design());
  const double rs = model.r_series(50e6);
  EXPECT_GT(rs, 0.55);
  EXPECT_LT(rs, 0.70);
}

TEST(CompactModelTest, OutputVoltageIsMidpointMinusDrop) {
  const ScCompactModel model(paper_design());
  const auto op = model.evaluate(2.0, 0.0, 50e-3);
  EXPECT_DOUBLE_EQ(op.ideal_output_voltage, 1.0);
  EXPECT_NEAR(op.output_voltage, 1.0 - 50e-3 * op.r_series, 1e-12);
  EXPECT_GT(op.voltage_drop, 0.0);
}

TEST(CompactModelTest, SinkingRaisesOutputAboveMidpoint) {
  const ScCompactModel model(paper_design());
  const auto op = model.evaluate(2.0, 0.0, -50e-3);
  EXPECT_GT(op.output_voltage, 1.0);
  EXPECT_DOUBLE_EQ(op.voltage_drop, 50e-3 * op.r_series);
}

TEST(CompactModelTest, NonZeroBottomRail) {
  const ScCompactModel model(paper_design());
  // Converter between rails 3V and 1V regulates toward 2V.
  const auto op = model.evaluate(3.0, 1.0, 10e-3);
  EXPECT_DOUBLE_EQ(op.ideal_output_voltage, 2.0);
  EXPECT_LT(op.output_voltage, 2.0);
}

TEST(CompactModelTest, EfficiencyRisesWithLoadOpenLoop) {
  const ScCompactModel model(paper_design());
  const auto light = model.evaluate(2.0, 0.0, 10e-3);
  const auto heavy = model.evaluate(2.0, 0.0, 90e-3);
  EXPECT_GT(heavy.efficiency, light.efficiency);
}

TEST(CompactModelTest, ClosedLoopBeatsOpenLoopAtLightLoad) {
  ScConverterDesign open = paper_design();
  ScConverterDesign closed = paper_design();
  closed.control = ControlPolicy::ClosedLoop;
  const auto op_open = ScCompactModel(open).evaluate(2.0, 0.0, 5e-3);
  const auto op_closed = ScCompactModel(closed).evaluate(2.0, 0.0, 5e-3);
  EXPECT_GT(op_closed.efficiency, op_open.efficiency);
}

TEST(CompactModelTest, ClosedLoopFrequencyScalesWithLoad) {
  ScConverterDesign d = paper_design();
  d.control = ControlPolicy::ClosedLoop;
  const ScCompactModel model(d);
  EXPECT_NEAR(model.switching_frequency(50e-3), 25e6, 1e-6);
  EXPECT_NEAR(model.switching_frequency(100e-3), 50e6, 1e-6);
  // Floor engages at very light load.
  EXPECT_NEAR(model.switching_frequency(1e-6), d.min_switching_frequency,
              1e-6);
}

TEST(CompactModelTest, CurrentLimitFlagged) {
  const ScCompactModel model(paper_design());
  EXPECT_TRUE(model.evaluate(2.0, 0.0, 100e-3).within_current_limit);
  EXPECT_FALSE(model.evaluate(2.0, 0.0, 101e-3).within_current_limit);
}

TEST(CompactModelTest, EnergyBalance) {
  const ScCompactModel model(paper_design());
  const auto op = model.evaluate(2.0, 0.0, 60e-3);
  EXPECT_NEAR(op.input_power,
              op.output_power + op.conduction_loss + op.parasitic_loss,
              1e-15);
  EXPECT_LT(op.efficiency, 1.0);
  EXPECT_GT(op.efficiency, 0.0);
}

TEST(CompactModelTest, ZeroLoadHasOnlyParasiticDraw) {
  const ScCompactModel model(paper_design());
  const auto op = model.evaluate(2.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(op.output_power, 0.0);
  EXPECT_DOUBLE_EQ(op.conduction_loss, 0.0);
  EXPECT_GT(op.parasitic_loss, 0.0);
  EXPECT_DOUBLE_EQ(op.efficiency, 0.0);
}

TEST(CompactModelTest, RejectsInvertedRails) {
  const ScCompactModel model(paper_design());
  EXPECT_THROW(model.evaluate(0.0, 2.0, 1e-3), Error);
}

TEST(CompactModelTest, DesignValidation) {
  ScConverterDesign d = paper_design();
  d.total_fly_capacitance = 0.0;
  EXPECT_THROW(ScCompactModel{d}, Error);
  d = paper_design();
  d.duty_cycle = 1.0;
  EXPECT_THROW(ScCompactModel{d}, Error);
  d = paper_design();
  d.min_switching_frequency = 100e6;  // above nominal
  EXPECT_THROW(ScCompactModel{d}, Error);
}

// Parameterized sweep: the voltage drop must be linear in load current with
// slope R_series for any operating frequency.
class DropLinearity : public ::testing::TestWithParam<double> {};

TEST_P(DropLinearity, DropIsLinearInLoad) {
  const double freq_scale = GetParam();
  ScConverterDesign d = paper_design();
  d.nominal_switching_frequency *= freq_scale;
  const ScCompactModel model(d);
  const double rs = model.r_series(d.nominal_switching_frequency);
  for (double i = 0.01; i <= 0.1; i += 0.01) {
    const auto op = model.evaluate(2.0, 0.0, i);
    EXPECT_NEAR(op.voltage_drop, i * rs, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(FrequencyScales, DropLinearity,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace vstack::sc
