#include "sc/topology.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::sc {
namespace {

TEST(TopologyTest, PushPullStructure) {
  const ScTopology t = push_pull_2to1();
  EXPECT_EQ(t.capacitor_count(), 2u);
  EXPECT_EQ(t.switch_count(), 8u);
  EXPECT_DOUBLE_EQ(t.ideal_ratio, 0.5);
  // Both phases deliver charge: sum |a_c| = 1/2, the classic 2:1 value.
  EXPECT_DOUBLE_EQ(t.cap_multiplier_sum(), 0.5);
  EXPECT_DOUBLE_EQ(t.switch_multiplier_sum(), 2.0);
}

TEST(TopologyTest, SeriesParallelStructure) {
  const ScTopology t = series_parallel_2to1();
  EXPECT_EQ(t.capacitor_count(), 1u);
  EXPECT_EQ(t.switch_count(), 4u);
  EXPECT_DOUBLE_EQ(t.cap_multiplier_sum(), 0.5);
  EXPECT_DOUBLE_EQ(t.switch_multiplier_sum(), 2.0);
}

TEST(TopologyTest, SeriesParallelFamilyMatchesDerivation) {
  for (std::size_t n = 2; n <= 6; ++n) {
    const ScTopology t = series_parallel_step_down(n);
    const double nd = static_cast<double>(n);
    EXPECT_EQ(t.capacitor_count(), n - 1);
    EXPECT_EQ(t.switch_count(), 3 * n - 2);
    EXPECT_NEAR(t.ideal_ratio, 1.0 / nd, 1e-12);
    EXPECT_NEAR(t.cap_multiplier_sum(), (nd - 1.0) / nd, 1e-12);
    EXPECT_NEAR(t.switch_multiplier_sum(), (3.0 * nd - 2.0) / nd, 1e-12);
  }
}

TEST(TopologyTest, SeriesParallelTwoEqualsClassic) {
  const ScTopology family = series_parallel_step_down(2);
  const ScTopology classic = series_parallel_2to1();
  EXPECT_DOUBLE_EQ(family.cap_multiplier_sum(),
                   classic.cap_multiplier_sum());
  EXPECT_DOUBLE_EQ(family.switch_multiplier_sum(),
                   classic.switch_multiplier_sum());
}

TEST(TopologyTest, HigherRatiosHaveHigherImpedancePerFarad) {
  // sum|a_c| grows toward 1 with n: more charge handling per output coulomb
  // means higher R_SSL at equal C_tot * f.
  EXPECT_LT(series_parallel_step_down(2).cap_multiplier_sum(),
            series_parallel_step_down(4).cap_multiplier_sum());
}

TEST(TopologyTest, SeriesParallelRejectsUnityRatio) {
  EXPECT_THROW(series_parallel_step_down(1), Error);
}

TEST(TopologyTest, ValidateRejectsEmpty) {
  ScTopology t;
  t.ideal_ratio = 0.5;
  EXPECT_THROW(t.validate(), Error);
}

TEST(TopologyTest, ValidateRejectsNonPositiveMultipliers) {
  ScTopology t = push_pull_2to1();
  t.cap_charge_multipliers[0] = 0.0;
  EXPECT_THROW(t.validate(), Error);
}

TEST(TopologyTest, ValidateRejectsBadRatio) {
  ScTopology t = push_pull_2to1();
  t.ideal_ratio = 1.0;
  EXPECT_THROW(t.validate(), Error);
}

}  // namespace
}  // namespace vstack::sc
