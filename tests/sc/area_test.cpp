#include "sc/area.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/units.h"

namespace vstack::sc {
namespace {

TEST(AreaTest, MimReproducesPaperArea) {
  const ScConverterDesign d;  // 8 nF
  EXPECT_NEAR(converter_area(d, mim_capacitor()) / units::mm2, 0.472, 1e-9);
}

TEST(AreaTest, FerroelectricReproducesPaperArea) {
  const ScConverterDesign d;
  EXPECT_NEAR(converter_area(d, ferroelectric_capacitor()) / units::mm2,
              0.102, 1e-9);
}

TEST(AreaTest, DeepTrenchReproducesPaperArea) {
  const ScConverterDesign d;
  EXPECT_NEAR(converter_area(d, deep_trench_capacitor()) / units::mm2, 0.082,
              1e-9);
}

TEST(AreaTest, DensityOrdering) {
  // Higher-density technologies yield smaller converters.
  EXPECT_LT(mim_capacitor().density, ferroelectric_capacitor().density);
  EXPECT_LT(ferroelectric_capacitor().density,
            deep_trench_capacitor().density);
}

TEST(AreaTest, AreaScalesWithCapacitance) {
  ScConverterDesign d;
  const double base = converter_area(d, mim_capacitor());
  d.total_fly_capacitance *= 2.0;
  const double doubled = converter_area(d, mim_capacitor());
  // Cap area doubles; fixed overhead does not.
  EXPECT_NEAR(doubled - base, base - kSwitchAndControlArea, 1e-15);
}

TEST(AreaTest, StandardListHasThreeEntries) {
  EXPECT_EQ(standard_capacitor_technologies().size(), 3u);
}

TEST(AreaTest, RejectsNonPositiveDensity) {
  const ScConverterDesign d;
  EXPECT_THROW(converter_area(d, CapacitorTechnology{"bad", 0.0}), Error);
}

}  // namespace
}  // namespace vstack::sc
