// Telemetry registry, histogram, tracer, and JSON sink tests, including a
// 16-worker TaskPool stress for the shard-merge path.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/task_pool.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace vstack::telemetry {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_for_tests();
    set_tracing_enabled(false);
  }
  void TearDown() override {
    set_tracing_enabled(false);
    reset_for_tests();
  }
};

#if VSTACK_TELEMETRY_ENABLED

TEST_F(TelemetryTest, CounterAccumulatesAcrossHandlesAndThreads) {
  const Counter a("test.counter.shared");
  const Counter b("test.counter.shared");  // same metric, second handle
  a.add();
  b.add(2.0);

  constexpr std::size_t kThreads = 16;
  constexpr std::size_t kAddsPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (std::size_t k = 0; k < kAddsPerThread; ++k) a.add();
    });
  }
  for (auto& t : threads) t.join();

  const auto snap = snapshot();
  EXPECT_DOUBLE_EQ(snap.counter_value("test.counter.shared"),
                   3.0 + static_cast<double>(kThreads * kAddsPerThread));
}

TEST_F(TelemetryTest, GaugeKeepsTheLastWrite) {
  const Gauge g("test.gauge.last");
  g.set(1.5);
  g.set(-7.25);
  const auto snap = snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "test.gauge.last");
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, -7.25);
}

TEST_F(TelemetryTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  const Histogram h("test.hist.edges", {1.0, 2.0, 4.0});
  // A value equal to a bound lands in that bound's bucket (le semantics).
  for (const double v : {0.5, 1.0, 1.5, 2.0, 4.0, 5.0}) h.record(v);

  const auto snap = snapshot();
  const HistogramSnapshot* hist = snap.histogram("test.hist.edges");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->counts.size(), 4u);  // 3 finite buckets + overflow
  EXPECT_EQ(hist->counts[0], 2u);      // 0.5, 1.0
  EXPECT_EQ(hist->counts[1], 2u);      // 1.5, 2.0
  EXPECT_EQ(hist->counts[2], 1u);      // 4.0
  EXPECT_EQ(hist->counts[3], 1u);      // 5.0 overflows
  EXPECT_EQ(hist->count, 6u);
  EXPECT_DOUBLE_EQ(hist->sum, 14.0);
  EXPECT_DOUBLE_EQ(hist->min, 0.5);
  EXPECT_DOUBLE_EQ(hist->max, 5.0);
}

TEST_F(TelemetryTest, HistogramQuantilesInterpolateAndClamp) {
  const Histogram h("test.hist.quantiles", {10.0, 20.0, 40.0});
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i % 40) + 1.0);

  const auto snap = snapshot();
  const HistogramSnapshot* hist = snap.histogram("test.hist.quantiles");
  ASSERT_NE(hist, nullptr);
  // Exact at the extremes, monotone in between, clamped to [min, max].
  EXPECT_DOUBLE_EQ(hist->quantile(0.0), hist->min);
  EXPECT_DOUBLE_EQ(hist->quantile(1.0), hist->max);
  const double p25 = hist->quantile(0.25);
  const double p50 = hist->quantile(0.5);
  const double p95 = hist->quantile(0.95);
  EXPECT_LE(hist->min, p25);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, hist->max);
}

TEST_F(TelemetryTest, HistogramKindAndBoundsMismatchesThrow) {
  const Counter c("test.kind.clash");
  (void)c;
  EXPECT_THROW(Histogram("test.kind.clash", {1.0}), Error);
  EXPECT_THROW(Histogram("test.hist.unsorted", {2.0, 1.0}), Error);
}

TEST_F(TelemetryTest, TaskPoolWorkersMergeShardsExactly) {
  // 16 workers hammer one counter and one histogram from pool threads; the
  // merged snapshot must account for every record exactly once even though
  // worker threads exit (and their shards are recycled) between runs.
  const Counter c("test.pool.tasks");
  const Histogram h("test.pool.values", {0.25, 0.5, 0.75});
  constexpr std::size_t kTasks = 4096;

  core::ExecutionPolicy policy;
  policy.jobs = 16;
  const core::TaskPool pool(policy);
  for (int run = 0; run < 2; ++run) {
    std::atomic<std::size_t> committed{0};
    pool.run_ordered(
        kTasks,
        [&](std::size_t i) {
          c.add();
          h.record(static_cast<double>(i % 100) / 100.0);
        },
        [&](std::size_t) { committed.fetch_add(1); });
    EXPECT_EQ(committed.load(), kTasks);
  }

  const auto snap = snapshot();
  EXPECT_DOUBLE_EQ(snap.counter_value("test.pool.tasks"), 2.0 * kTasks);
  const HistogramSnapshot* hist = snap.histogram("test.pool.values");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2u * kTasks);
}

TEST_F(TelemetryTest, SpansRecordOnlyWhileTracingIsEnabled) {
  { VS_SPAN("test.span.disabled"); }
  EXPECT_TRUE(collect_trace().empty());

  set_tracing_enabled(true);
  {
    VS_SPAN("test.span.outer");
    { VS_SPAN("test.span.inner"); }
  }
  record_span("test.span.manual", 1.0, 2.0);
  set_tracing_enabled(false);

  const auto events = collect_trace();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start time: outer opened before inner.
  bool saw_outer = false, saw_inner = false, saw_manual = false;
  double outer_ts = 0.0, outer_end = 0.0, inner_ts = 0.0, inner_end = 0.0;
  for (const auto& e : events) {
    if (e.name == "test.span.outer") {
      saw_outer = true;
      outer_ts = e.ts_us;
      outer_end = e.ts_us + e.dur_us;
    } else if (e.name == "test.span.inner") {
      saw_inner = true;
      inner_ts = e.ts_us;
      inner_end = e.ts_us + e.dur_us;
    } else if (e.name == "test.span.manual") {
      saw_manual = true;
      EXPECT_NEAR(e.dur_us, 1e6, 1.0);  // 1 s in microseconds
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_manual);
  // Nesting: the inner span lies within the outer one.
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_LE(inner_end, outer_end + 1e-6);
}

#else  // telemetry compiled out

TEST_F(TelemetryTest, DisabledBuildYieldsEmptySnapshots) {
  const Counter c("test.disabled.counter");
  c.add(5.0);
  const Histogram h("test.disabled.hist", {1.0});
  h.record(0.5);
  set_tracing_enabled(true);
  { VS_SPAN("test.disabled.span"); }

  const auto snap = snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_TRUE(collect_trace().empty());
}

#endif  // VSTACK_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// JSON sink well-formedness.  The exporters hand-serialize, so the tests
// parse their output back with a strict little recursive-descent JSON
// reader -- if this accepts, Perfetto and python json.load will too.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST_F(TelemetryTest, MetricsJsonParsesBack) {
  const Counter c("test.json.counter");
  c.add(3.0);
  const Gauge g("test.json.gauge");
  g.set(0.5);
  const Histogram h("test.json.hist", {1.0, 2.0});
  h.record(1.5);
  h.record(9.0);

  const std::string json = metrics_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"kind\":\"vstack-metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"build\":"), std::string::npos);
#if VSTACK_TELEMETRY_ENABLED
  EXPECT_NE(json.find("\"test.json.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"inf\""), std::string::npos);
#endif
}

TEST_F(TelemetryTest, TraceJsonParsesBack) {
  set_tracing_enabled(true);
  {
    VS_SPAN("test.json.outer");
    { VS_SPAN("test.json.inner"); }
  }
  set_tracing_enabled(false);

  const std::string json = trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
#if VSTACK_TELEMETRY_ENABLED
  EXPECT_NE(json.find("\"name\":\"test.json.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Category is the leading name segment.
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
#endif
}

TEST_F(TelemetryTest, BuildInfoIsPopulated) {
  const BuildInfo& info = build_info();
  EXPECT_FALSE(info.version.empty());
  EXPECT_EQ(info.telemetry_enabled, VSTACK_TELEMETRY_ENABLED != 0);
  const std::string summary = build_summary();
  EXPECT_NE(summary.find(info.version), std::string::npos);
}

TEST_F(TelemetryTest, MonotonicSecondsAdvances) {
  const double a = monotonic_seconds();
  const double b = monotonic_seconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace vstack::telemetry
