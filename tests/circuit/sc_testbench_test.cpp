#include "circuit/sc_testbench.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::circuit {
namespace {

ScSimulationOptions fast_options() {
  ScSimulationOptions o;
  o.settle_periods = 40;
  o.measure_periods = 10;
  o.steps_per_period = 32;
  return o;
}

TEST(ScTestbenchTest, CircuitHasExpectedStructure) {
  ScTestbenchConfig cfg;
  const ScTestbenchCircuit tb = build_push_pull_sc(cfg);
  // 4 ways x 8 switches.
  EXPECT_EQ(tb.netlist.switches().size(), 32u);
  // Per way: 2 fly caps + 2 bottom-plate caps, plus the output decap.
  EXPECT_EQ(tb.netlist.capacitors().size(), 4u * 4u + 1u);
  EXPECT_EQ(tb.netlist.voltage_sources().size(), 1u);
  EXPECT_EQ(tb.netlist.current_sources().size(), 1u);
}

TEST(ScTestbenchTest, OutputNearMidpointAtLightLoad) {
  ScTestbenchConfig cfg;
  cfg.load_current = 5e-3;
  const ScMeasurement m = simulate_push_pull_sc(cfg, fast_options());
  EXPECT_NEAR(m.average_output_voltage, 1.0, 0.03);
  EXPECT_GT(m.voltage_drop, 0.0);
}

TEST(ScTestbenchTest, VoltageDropGrowsWithLoad) {
  ScTestbenchConfig cfg;
  cfg.load_current = 20e-3;
  const ScMeasurement light = simulate_push_pull_sc(cfg, fast_options());
  cfg.load_current = 80e-3;
  const ScMeasurement heavy = simulate_push_pull_sc(cfg, fast_options());
  EXPECT_GT(heavy.voltage_drop, light.voltage_drop);
  // Roughly linear in load: effective series resistance within a factor of
  // the paper's 0.6 Ohm design value.
  const double r_eff = heavy.voltage_drop / 80e-3;
  EXPECT_GT(r_eff, 0.3);
  EXPECT_LT(r_eff, 1.2);
}

TEST(ScTestbenchTest, EfficiencyRisesWithLoadOpenLoop) {
  // Open loop: fixed parasitic loss dominates at light load (paper Fig. 3b).
  ScTestbenchConfig cfg;
  cfg.load_current = 10e-3;
  const ScMeasurement light = simulate_push_pull_sc(cfg, fast_options());
  cfg.load_current = 90e-3;
  const ScMeasurement heavy = simulate_push_pull_sc(cfg, fast_options());
  EXPECT_GT(heavy.efficiency, light.efficiency);
  EXPECT_GT(light.efficiency, 0.30);
  EXPECT_LT(light.efficiency, 0.75);
  EXPECT_GT(heavy.efficiency, 0.75);
  EXPECT_LT(heavy.efficiency, 0.95);
}

TEST(ScTestbenchTest, EnergyBalanceHolds) {
  ScTestbenchConfig cfg;
  cfg.load_current = 50e-3;
  const ScMeasurement m = simulate_push_pull_sc(cfg, fast_options());
  EXPECT_GT(m.input_power, m.output_power);
  EXPECT_GT(m.output_power, 0.0);
  EXPECT_LT(m.efficiency, 1.0);
}

TEST(ScTestbenchTest, InterleavingReducesRipple) {
  ScTestbenchConfig cfg;
  cfg.load_current = 50e-3;
  cfg.interleave_ways = 1;
  const ScMeasurement single = simulate_push_pull_sc(cfg, fast_options());
  cfg.interleave_ways = 4;
  const ScMeasurement four = simulate_push_pull_sc(cfg, fast_options());
  EXPECT_LT(four.output_ripple, single.output_ripple);
}

TEST(ScTestbenchTest, FixedModeRejectsMisalignedStepCount) {
  ScTestbenchConfig cfg;
  ScSimulationOptions opts = fast_options();
  opts.adaptive = false;
  opts.steps_per_period = 30;  // not a multiple of 2*4 ways
  EXPECT_THROW(simulate_push_pull_sc(cfg, opts), Error);
}

TEST(ScTestbenchTest, AdaptiveModeAcceptsAnyStepCount) {
  // The historical divide-the-period footgun is gone in adaptive mode: the
  // controller snaps step boundaries onto switch edges instead.
  ScTestbenchConfig cfg;
  cfg.load_current = 50e-3;
  ScSimulationOptions opts = fast_options();
  opts.steps_per_period = 30;  // misaligned on a fixed grid; fine here
  const ScMeasurement m = simulate_push_pull_sc(cfg, opts);
  ASSERT_TRUE(m.ok()) << m.transient.summary();
  EXPECT_GT(m.average_output_voltage, 0.8);
  EXPECT_LT(m.average_output_voltage, 1.1);
}

TEST(ScTestbenchTest, RejectsNonZeroBottomRail) {
  ScTestbenchConfig cfg;
  cfg.v_bottom = 0.5;
  EXPECT_THROW(build_push_pull_sc(cfg), Error);
}

}  // namespace
}  // namespace vstack::circuit
