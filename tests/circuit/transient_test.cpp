#include "circuit/transient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace vstack::circuit {
namespace {

TEST(TransientTest, RcChargeMatchesAnalytic) {
  // 1V step into R=1k, C=1uF: v(t) = 1 - exp(-t/RC), tau = 1 ms.
  Netlist net;
  const NodeId vin = net.create_node("vin");
  const NodeId out = net.create_node("out");
  net.add_voltage_source(vin, kGround, 1.0);
  net.add_resistor(vin, out, 1000.0);
  net.add_capacitor(out, kGround, 1e-6, 0.0);

  TransientSimulator sim(net, /*clock_period=*/1.0);  // no switches
  TransientOptions opts;
  opts.stop_time = 5e-3;
  opts.time_step = 1e-6;
  const TransientResult r = sim.run(opts);

  for (std::size_t k = 100; k < r.time.size(); k += 500) {
    const double expected = 1.0 - std::exp(-r.time[k] / 1e-3);
    EXPECT_NEAR(r.node_voltages[k][out], expected, 2e-4)
        << "at t=" << r.time[k];
  }
}

TEST(TransientTest, CapacitorInitialVoltageRespected) {
  Netlist net;
  const NodeId out = net.create_node("out");
  net.add_resistor(out, kGround, 1000.0);
  net.add_capacitor(out, kGround, 1e-6, 2.0);  // starts at 2V, discharges

  TransientSimulator sim(net, 1.0);
  TransientOptions opts;
  opts.stop_time = 2e-3;
  opts.time_step = 1e-6;
  const TransientResult r = sim.run(opts);
  // After 1 tau (1 ms) the voltage should be ~2/e.
  const std::size_t k_tau = 1000;
  EXPECT_NEAR(r.node_voltages[k_tau][out], 2.0 / M_E, 5e-3);
}

TEST(TransientTest, StartFromDcEliminatesStartupTransient) {
  Netlist net;
  const NodeId vin = net.create_node("vin");
  const NodeId out = net.create_node("out");
  net.add_voltage_source(vin, kGround, 3.0);
  net.add_resistor(vin, out, 100.0);
  net.add_resistor(out, kGround, 200.0);
  net.add_capacitor(out, kGround, 1e-6, 0.0);

  TransientSimulator sim(net, 1.0);
  TransientOptions opts;
  opts.stop_time = 1e-4;
  opts.time_step = 1e-7;
  opts.start_from_dc = true;
  const TransientResult r = sim.run(opts);
  // DC point: divider at 2V; with start_from_dc the node never moves.
  EXPECT_NEAR(r.node_voltages.front()[out], 2.0, 1e-9);
  EXPECT_NEAR(r.node_voltages.back()[out], 2.0, 1e-9);
}

TEST(TransientTest, SwitchStatesFollowClock) {
  Netlist net;
  const NodeId a = net.create_node("a");
  net.add_resistor(a, kGround, 1.0);
  net.add_switch(a, kGround, 1.0, 1e9, ClockPhase{0.0, 0.5});   // phase A
  net.add_switch(a, kGround, 1.0, 1e9, ClockPhase{0.5, 0.5});   // phase B
  TransientSimulator sim(net, 1e-6);

  const auto early = sim.switch_states(0.1e-6);
  EXPECT_TRUE(early[0]);
  EXPECT_FALSE(early[1]);
  const auto late = sim.switch_states(0.7e-6);
  EXPECT_FALSE(late[0]);
  EXPECT_TRUE(late[1]);
  // Periodicity.
  const auto wrapped = sim.switch_states(2.1e-6);
  EXPECT_TRUE(wrapped[0]);
  EXPECT_FALSE(wrapped[1]);
}

TEST(TransientTest, SwitchedDividerAlternates) {
  // Node driven through switch S1 to 1V during phase A and grounded through
  // S2 during phase B; the recorded waveform must alternate.
  Netlist net;
  const NodeId vin = net.create_node("vin");
  const NodeId out = net.create_node("out");
  net.add_voltage_source(vin, kGround, 1.0);
  net.add_switch(vin, out, 10.0, 1e9, ClockPhase{0.0, 0.5});
  net.add_switch(out, kGround, 10.0, 1e9, ClockPhase{0.5, 0.5});
  net.add_resistor(out, kGround, 1e6);  // keep the node defined when floating

  TransientSimulator sim(net, 1e-6);
  TransientOptions opts;
  opts.stop_time = 4e-6;
  opts.time_step = 1e-8;
  const TransientResult r = sim.run(opts);

  // Sample within each half of the third period.
  const auto at = [&](double t) {
    const auto k = static_cast<std::size_t>(t / opts.time_step) - 1;
    return r.node_voltages[k][out];
  };
  EXPECT_NEAR(at(2.25e-6), 1.0, 1e-4);  // phase A: pulled to vin
  EXPECT_NEAR(at(2.75e-6), 0.0, 1e-4);  // phase B: grounded
}

TEST(TransientTest, EnergyConservationInRcDischarge) {
  // Energy dissipated in R equals the energy initially stored in C.
  Netlist net;
  const NodeId out = net.create_node("out");
  const double c_val = 1e-6, r_val = 500.0, v0 = 1.0;
  net.add_resistor(out, kGround, r_val);
  net.add_capacitor(out, kGround, c_val, v0);

  TransientSimulator sim(net, 1.0);
  TransientOptions opts;
  opts.stop_time = 10e-3;  // 20 tau
  opts.time_step = 1e-6;
  const TransientResult r = sim.run(opts);

  double dissipated = 0.0;
  for (std::size_t k = 0; k < r.time.size(); ++k) {
    const double v = r.node_voltages[k][out];
    dissipated += v * v / r_val * opts.time_step;
  }
  EXPECT_NEAR(dissipated, 0.5 * c_val * v0 * v0, 0.01 * 0.5 * c_val);
}

TEST(TransientTest, RejectsBadOptions) {
  Netlist net;
  net.create_node("a");
  TransientSimulator sim(net, 1e-6);
  TransientOptions opts;
  EXPECT_THROW(sim.run(opts), Error);  // zero stop time
  opts.stop_time = 1e-3;
  EXPECT_THROW(sim.run(opts), Error);  // zero step
  opts.time_step = 2e-3;
  EXPECT_THROW(sim.run(opts), Error);  // step > stop
}

TEST(TransientTest, RejectsNonPositiveClockPeriod) {
  Netlist net;
  EXPECT_THROW(TransientSimulator(net, 0.0), Error);
}

TEST(TransientTest, FixedModeDiagnosesNonDivisibleStep) {
  // The historical footgun: a fixed step that does not divide the clock
  // period silently skewed switch timing.  It must now fail loudly and
  // point at adaptive mode.
  Netlist net;
  const NodeId a = net.create_node("a");
  net.add_resistor(a, kGround, 1.0);
  net.add_switch(a, kGround, 1.0, 1e9, ClockPhase{0.0, 0.5});
  TransientSimulator sim(net, 1e-6);
  TransientOptions opts;
  opts.stop_time = 4e-6;
  opts.time_step = 0.3e-6;  // period / step = 3.33...
  opts.mode = SteppingMode::Fixed;
  try {
    sim.run(opts);
    FAIL() << "expected a divisibility diagnostic";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("divide"), std::string::npos) << what;
    EXPECT_NE(what.find("Adaptive"), std::string::npos) << what;
  }
}

TEST(TransientTest, AdaptiveRcMatchesAnalytic) {
  // Same RC charge as the fixed-mode test, integrated adaptively: every
  // recorded sample must track the analytic exponential.
  Netlist net;
  const NodeId vin = net.create_node("vin");
  const NodeId out = net.create_node("out");
  net.add_voltage_source(vin, kGround, 1.0);
  net.add_resistor(vin, out, 1000.0);
  net.add_capacitor(out, kGround, 1e-6, 0.0);

  TransientSimulator sim(net, 1.0);
  TransientOptions opts;
  opts.stop_time = 5e-3;
  opts.time_step = 1e-4;  // dt_max: 100x the fixed-mode grid
  opts.mode = SteppingMode::Adaptive;
  const TransientResult r = sim.run(opts);

  ASSERT_TRUE(r.ok()) << r.report.summary();
  for (std::size_t k = 1; k < r.time.size(); ++k) {
    const double expected = 1.0 - std::exp(-r.time[k] / 1e-3);
    ASSERT_NEAR(r.node_voltages[k][out], expected, 2e-3)
        << "at t=" << r.time[k];
  }
  // Final sample lands exactly on stop_time.
  EXPECT_DOUBLE_EQ(r.time.back(), opts.stop_time);
}

TEST(TransientTest, AdaptiveSnapsExactlyOntoSwitchEdges) {
  // dt_max = 0.3 * period does NOT divide the period; adaptive mode must
  // clamp steps so every switch edge is a recorded time point anyway.
  Netlist net;
  const NodeId vin = net.create_node("vin");
  const NodeId out = net.create_node("out");
  net.add_voltage_source(vin, kGround, 1.0);
  net.add_switch(vin, out, 10.0, 1e9, ClockPhase{0.0, 0.5});
  net.add_switch(out, kGround, 10.0, 1e9, ClockPhase{0.5, 0.5});
  net.add_resistor(out, kGround, 1e6);
  net.add_capacitor(out, kGround, 1e-12, 0.0);

  const double period = 1e-6;
  TransientSimulator sim(net, period);
  TransientOptions opts;
  opts.stop_time = 3e-6;
  opts.time_step = 0.3 * period;
  opts.mode = SteppingMode::Adaptive;
  const TransientResult r = sim.run(opts);
  ASSERT_TRUE(r.ok()) << r.report.summary();

  // Edges at every half period in (0, stop].
  for (int k = 1; k <= 6; ++k) {
    const double edge = 0.5e-6 * k;
    double closest = 1e9;
    for (const double t : r.time) {
      closest = std::min(closest, std::abs(t - edge));
    }
    EXPECT_LT(closest, 1e-13) << "missed switch edge at " << edge;
  }
}

TEST(TransientTest, StiffCircuitAdaptiveConvergesWithoutNaN) {
  // Time constants six decades apart (1 ns vs 1 ms).  A fixed grid fine
  // enough for the fast pole would need ~5M steps here; adaptive mode must
  // resolve the fast initial transient, then stride across the slow tail,
  // with no thrown solver exceptions and no NaN anywhere in the waveform.
  Netlist net;
  const NodeId vin = net.create_node("vin");
  const NodeId a = net.create_node("a");
  const NodeId b = net.create_node("b");
  net.add_voltage_source(vin, kGround, 1.0);
  net.add_resistor(vin, a, 1000.0);
  net.add_capacitor(a, kGround, 1e-12, 0.0);  // tau_fast = 1 ns
  net.add_resistor(a, b, 1e6);
  net.add_capacitor(b, kGround, 1e-9, 0.0);   // tau_slow ~ 1 ms

  TransientSimulator sim(net, 1.0);
  TransientOptions opts;
  opts.stop_time = 5e-3;
  opts.time_step = 5e-5;  // dt_max
  opts.mode = SteppingMode::Adaptive;
  TransientResult r;
  ASSERT_NO_THROW(r = sim.run(opts));
  ASSERT_TRUE(r.ok()) << r.report.summary();

  for (std::size_t k = 0; k < r.time.size(); ++k) {
    ASSERT_TRUE(std::isfinite(r.node_voltages[k][a]));
    ASSERT_TRUE(std::isfinite(r.node_voltages[k][b]));
  }
  // Slow node settles onto the analytic single-pole response.
  const double tau_slow = 1e6 * 1e-9;
  const double expected = 1.0 - std::exp(-opts.stop_time / tau_slow);
  EXPECT_NEAR(r.node_voltages.back()[b], expected, 5e-3);
  // And it did so in far fewer steps than the fast pole's fixed grid.
  EXPECT_LT(r.report.accepted_steps, 50000u);
}

TEST(TransientTest, DcSingularNetlistRecoversViaGminLadder) {
  // Node b floats at DC (capacitor path only): the plain DC matrix is
  // singular.  start_from_dc must recover through the gmin ladder instead
  // of throwing, and the transient must stay finite.
  Netlist net;
  const NodeId vin = net.create_node("vin");
  const NodeId a = net.create_node("a");
  const NodeId b = net.create_node("b");
  net.add_voltage_source(vin, kGround, 1.0);
  net.add_resistor(vin, a, 1000.0);
  net.add_capacitor(a, b, 1e-6, 0.0);
  net.add_capacitor(b, kGround, 1e-6, 0.0);

  TransientSimulator sim(net, 1.0);
  TransientOptions opts;
  opts.stop_time = 1e-4;
  opts.time_step = 1e-6;
  opts.start_from_dc = true;
  opts.mode = SteppingMode::Adaptive;
  TransientResult r;
  ASSERT_NO_THROW(r = sim.run(opts));
  ASSERT_TRUE(r.ok()) << r.report.summary();
  for (std::size_t k = 0; k < r.time.size(); ++k) {
    ASSERT_TRUE(std::isfinite(r.node_voltages[k][b]));
  }
}

TEST(TransientTest, StepBudgetTruncatesButLabelsTheResult) {
  Netlist net;
  const NodeId vin = net.create_node("vin");
  const NodeId out = net.create_node("out");
  net.add_voltage_source(vin, kGround, 1.0);
  net.add_resistor(vin, out, 1000.0);
  net.add_capacitor(out, kGround, 1e-6, 0.0);

  TransientSimulator sim(net, 1.0);
  TransientOptions opts;
  opts.stop_time = 5e-3;
  opts.time_step = 1e-6;
  opts.mode = SteppingMode::Adaptive;
  opts.control.max_steps = 25;
  TransientResult r;
  ASSERT_NO_THROW(r = sim.run(opts));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.report.status, sim::TransientStatus::BudgetExhausted);
  EXPECT_FALSE(r.report.diagnostic.empty());
  // The truncated prefix is still usable: nonempty, finite, labeled.
  ASSERT_FALSE(r.time.empty());
  EXPECT_LT(r.report.end_time, opts.stop_time);
  for (std::size_t k = 0; k < r.time.size(); ++k) {
    ASSERT_TRUE(std::isfinite(r.node_voltages[k][out]));
  }
}

TEST(TransientTest, AdaptiveDerivesDefaultMaxStepFromClock) {
  // time_step = 0 in adaptive mode derives dt_max from the clock period.
  Netlist net;
  const NodeId vin = net.create_node("vin");
  const NodeId out = net.create_node("out");
  net.add_voltage_source(vin, kGround, 1.0);
  net.add_switch(vin, out, 10.0, 1e9, ClockPhase{0.0, 0.5});
  net.add_resistor(out, kGround, 1e3);
  net.add_capacitor(out, kGround, 1e-12, 0.0);

  TransientSimulator sim(net, 1e-6);
  TransientOptions opts;
  opts.stop_time = 2e-6;
  opts.time_step = 0.0;
  opts.mode = SteppingMode::Adaptive;
  const TransientResult r = sim.run(opts);
  EXPECT_TRUE(r.ok()) << r.report.summary();
}

}  // namespace
}  // namespace vstack::circuit
