#include "circuit/netlist.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::circuit {
namespace {

TEST(NetlistTest, GroundExistsByDefault) {
  Netlist net;
  EXPECT_EQ(net.node_count(), 1u);
  EXPECT_EQ(net.node_name(kGround), "gnd");
}

TEST(NetlistTest, CreateNodeAssignsSequentialIds) {
  Netlist net;
  const NodeId a = net.create_node("a");
  const NodeId b = net.create_node("b");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(net.node_name(b), "b");
}

TEST(NetlistTest, ResistorValidation) {
  Netlist net;
  const NodeId a = net.create_node("a");
  EXPECT_NO_THROW(net.add_resistor(a, kGround, 10.0));
  EXPECT_THROW(net.add_resistor(a, a, 10.0), Error);
  EXPECT_THROW(net.add_resistor(a, kGround, 0.0), Error);
  EXPECT_THROW(net.add_resistor(a, kGround, -1.0), Error);
  EXPECT_THROW(net.add_resistor(a, 99, 1.0), Error);
}

TEST(NetlistTest, CapacitorValidation) {
  Netlist net;
  const NodeId a = net.create_node("a");
  EXPECT_NO_THROW(net.add_capacitor(a, kGround, 1e-9, 0.5));
  EXPECT_EQ(net.capacitors().back().initial_voltage, 0.5);
  EXPECT_THROW(net.add_capacitor(a, a, 1e-9), Error);
  EXPECT_THROW(net.add_capacitor(a, kGround, 0.0), Error);
}

TEST(NetlistTest, SwitchValidation) {
  Netlist net;
  const NodeId a = net.create_node("a");
  const ClockPhase good{0.25, 0.5};
  EXPECT_NO_THROW(net.add_switch(a, kGround, 1.0, 1e9, good));
  EXPECT_THROW(net.add_switch(a, kGround, 1e9, 1.0, good), Error);
  EXPECT_THROW(net.add_switch(a, kGround, 1.0, 1e9, ClockPhase{1.5, 0.5}),
               Error);
  EXPECT_THROW(net.add_switch(a, kGround, 1.0, 1e9, ClockPhase{0.0, 0.0}),
               Error);
  EXPECT_THROW(net.add_switch(a, kGround, 1.0, 1e9, ClockPhase{0.0, 1.0}),
               Error);
}

TEST(NetlistTest, SourceUpdates) {
  Netlist net;
  const NodeId a = net.create_node("a");
  const std::size_t vi = net.add_voltage_source(a, kGround, 1.0);
  const std::size_t ii = net.add_current_source(a, kGround, 0.1);
  net.set_voltage_source_value(vi, 2.5);
  net.set_current_source_value(ii, 0.2);
  EXPECT_DOUBLE_EQ(net.voltage_sources()[vi].voltage, 2.5);
  EXPECT_DOUBLE_EQ(net.current_sources()[ii].current, 0.2);
  EXPECT_THROW(net.set_voltage_source_value(5, 1.0), Error);
  EXPECT_THROW(net.set_current_source_value(5, 1.0), Error);
}

}  // namespace
}  // namespace vstack::circuit
