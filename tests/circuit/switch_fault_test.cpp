// Mid-run switch faults (circuit::TimedSwitchFault): a clocked switch whose
// gate drive fails stuck-on / stuck-off partway through a transient run, in
// both fixed and adaptive stepping modes.
#include <gtest/gtest.h>

#include <string>

#include "circuit/netlist.h"
#include "circuit/transient.h"

namespace vstack::circuit {
namespace {

/// Two-phase switched divider with a holding capacitor: S0 connects out to
/// 1 V during phase A, S1 grounds it during phase B.  The 1 nF cap gives
/// `out` a ~10 ns switching time constant but a ~1 ms keeper decay, so a
/// failed discharge switch leaves the node visibly stuck high.
struct Divider {
  Netlist net;
  NodeId vin;
  NodeId out;

  Divider() {
    vin = net.create_node("vin");
    out = net.create_node("out");
    net.add_voltage_source(vin, kGround, 1.0);
    net.add_switch(vin, out, 10.0, 1e9, ClockPhase{0.0, 0.5});  // S0: charge
    net.add_switch(out, kGround, 10.0, 1e9, ClockPhase{0.5, 0.5});  // S1
    net.add_resistor(out, kGround, 1e6);  // keeper, ~1 ms with the cap
    net.add_capacitor(out, kGround, 1e-9, 0.0);
  }
};

bool trail_contains(const sim::TransientReport& report,
                    const std::string& needle) {
  for (const auto& ev : report.events) {
    if (ev.what.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(SwitchFaultTest, DischargeSwitchStuckOffFreezesTheNodeHigh) {
  Divider d;
  TransientSimulator sim(d.net, 1e-6);

  TransientOptions opts;
  opts.stop_time = 6e-6;
  opts.time_step = 1e-8;
  TimedSwitchFault fault;
  fault.time = 3e-6;
  fault.switch_index = 1;  // S1: the discharge path
  fault.stuck_on = false;
  fault.label = "discharge-drive-lost";
  opts.switch_faults.push_back(fault);

  const auto r = sim.run(opts);
  ASSERT_TRUE(r.ok()) << r.report.diagnostic;

  // Healthy cycles discharge `out` nearly to ground every phase B...
  EXPECT_LT(r.min_node_voltage(d.out, 1e-6), 0.2);
  // ...but once S1's drive is lost the node never discharges again (the
  // keeper's 1 ms decay is invisible over a few microseconds).
  EXPECT_GT(r.min_node_voltage(d.out, 3.6e-6), 0.8);
  EXPECT_TRUE(trail_contains(r.report,
                             "switch fault 'discharge-drive-lost'"));
}

TEST(SwitchFaultTest, ChargeSwitchStuckOnShortsTheDivider) {
  Divider d;
  TransientSimulator sim(d.net, 1e-6);

  TransientOptions opts;
  opts.stop_time = 6e-6;
  opts.time_step = 1e-8;
  TimedSwitchFault fault;
  fault.time = 3e-6;
  fault.switch_index = 0;  // S0 stuck on: fights S1 during phase B
  fault.stuck_on = true;
  opts.switch_faults.push_back(fault);

  const auto r = sim.run(opts);
  ASSERT_TRUE(r.ok()) << r.report.diagnostic;

  // With both switches on during phase B the node sits at the resistive
  // divider midpoint instead of discharging to ground.
  EXPECT_LT(r.min_node_voltage(d.out, 1e-6), 0.2);
  const double post = r.min_node_voltage(d.out, 3.6e-6);
  EXPECT_GT(post, 0.4);
  EXPECT_LT(post, 0.6);
  // Default label falls back to the switch index.
  EXPECT_TRUE(trail_contains(r.report, "switch fault 'switch 0'"));
}

TEST(SwitchFaultTest, AdaptiveModeHandlesAFaultExactlyOnAClockEdge) {
  Divider d;
  TransientSimulator sim(d.net, 1e-6);

  TransientOptions opts;
  opts.stop_time = 6e-6;
  opts.mode = SteppingMode::Adaptive;
  TimedSwitchFault fault;
  fault.time = 3e-6;  // exactly a phase-A rising edge of S0
  fault.switch_index = 1;
  fault.stuck_on = false;
  fault.label = "edge-coincident";
  opts.switch_faults.push_back(fault);

  const auto r = sim.run(opts);
  ASSERT_TRUE(r.ok()) << r.report.diagnostic;

  // Same physics as the fixed-mode stuck-off case; the edge-coincident
  // fault must neither be skipped nor applied twice.
  EXPECT_LT(r.min_node_voltage(d.out, 1e-6), 0.2);
  EXPECT_GT(r.min_node_voltage(d.out, 3.6e-6), 0.8);
  EXPECT_TRUE(trail_contains(r.report, "'edge-coincident'"));
}

TEST(SwitchFaultTest, FixedAndAdaptiveAgreeOnThePostFaultAverage) {
  Divider d;
  TransientSimulator sim(d.net, 1e-6);

  TransientOptions opts;
  opts.stop_time = 6e-6;
  opts.time_step = 1e-8;
  TimedSwitchFault fault;
  fault.time = 2.5e-6;
  fault.switch_index = 1;
  fault.stuck_on = false;
  opts.switch_faults.push_back(fault);

  const auto fixed = sim.run(opts);
  opts.mode = SteppingMode::Adaptive;
  opts.time_step = 0.0;  // derive from the clock period
  const auto adaptive = sim.run(opts);
  ASSERT_TRUE(fixed.ok()) << fixed.report.diagnostic;
  ASSERT_TRUE(adaptive.ok()) << adaptive.report.diagnostic;

  EXPECT_NEAR(adaptive.average_node_voltage(d.out, 4e-6),
              fixed.average_node_voltage(d.out, 4e-6), 0.02);
}

}  // namespace
}  // namespace vstack::circuit
