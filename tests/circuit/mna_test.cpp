#include "circuit/mna.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::circuit {
namespace {

TEST(MnaTest, VoltageDivider) {
  Netlist net;
  const NodeId vin = net.create_node("vin");
  const NodeId mid = net.create_node("mid");
  net.add_voltage_source(vin, kGround, 10.0);
  net.add_resistor(vin, mid, 1000.0);
  net.add_resistor(mid, kGround, 3000.0);

  const DcSolution sol = dc_solve(net, {});
  EXPECT_NEAR(sol.node_voltages[vin], 10.0, 1e-12);
  EXPECT_NEAR(sol.node_voltages[mid], 7.5, 1e-12);
  // Source delivers 10V / 4k = 2.5 mA.
  EXPECT_NEAR(sol.vsource_currents[0], 2.5e-3, 1e-12);
}

TEST(MnaTest, CurrentSourceIntoResistor) {
  Netlist net;
  const NodeId n = net.create_node("n");
  net.add_current_source(kGround, n, 1e-3);  // 1 mA into n
  net.add_resistor(n, kGround, 2000.0);
  const DcSolution sol = dc_solve(net, {});
  EXPECT_NEAR(sol.node_voltages[n], 2.0, 1e-12);
}

TEST(MnaTest, LoadSinkConvention) {
  // A load drawing current FROM a supplied node pulls its voltage down
  // through the source resistance.
  Netlist net;
  const NodeId vdd = net.create_node("vdd");
  const NodeId load = net.create_node("load");
  net.add_voltage_source(vdd, kGround, 1.0);
  net.add_resistor(vdd, load, 10.0);
  net.add_current_source(load, kGround, 10e-3);  // 10 mA load sink
  const DcSolution sol = dc_solve(net, {});
  EXPECT_NEAR(sol.node_voltages[load], 0.9, 1e-12);
}

TEST(MnaTest, SwitchStatesChangeTopology) {
  Netlist net;
  const NodeId a = net.create_node("a");
  net.add_voltage_source(a, kGround, 5.0);
  const NodeId b = net.create_node("b");
  net.add_switch(a, b, 1.0, 1e12, ClockPhase{0.0, 0.5});
  net.add_resistor(b, kGround, 1.0);

  const DcSolution on = dc_solve(net, {true});
  EXPECT_NEAR(on.node_voltages[b], 2.5, 1e-9);
  const DcSolution off = dc_solve(net, {false});
  EXPECT_NEAR(off.node_voltages[b], 0.0, 1e-6);
}

TEST(MnaTest, CapacitorsOpenInDc) {
  Netlist net;
  const NodeId a = net.create_node("a");
  const NodeId b = net.create_node("b");
  net.add_voltage_source(a, kGround, 3.0);
  net.add_resistor(a, b, 100.0);
  net.add_capacitor(b, kGround, 1e-6);
  net.add_resistor(b, kGround, 100.0);
  const DcSolution sol = dc_solve(net, {});
  // Capacitor draws no DC current: plain divider.
  EXPECT_NEAR(sol.node_voltages[b], 1.5, 1e-12);
}

TEST(MnaTest, TwoVoltageSources) {
  Netlist net;
  const NodeId a = net.create_node("a");
  const NodeId b = net.create_node("b");
  net.add_voltage_source(a, kGround, 2.0);
  net.add_voltage_source(b, kGround, 1.0);
  net.add_resistor(a, b, 100.0);
  const DcSolution sol = dc_solve(net, {});
  // 10 mA flows a -> b.
  EXPECT_NEAR(sol.vsource_currents[0], 0.01, 1e-12);
  EXPECT_NEAR(sol.vsource_currents[1], -0.01, 1e-12);
}

TEST(MnaTest, VoltageIndexRejectsGround) {
  Netlist net;
  net.create_node("a");
  MnaSystem mna(net);
  EXPECT_THROW(mna.voltage_index(kGround), Error);
}

TEST(MnaTest, UnknownCountIncludesSources) {
  Netlist net;
  const NodeId a = net.create_node("a");
  const NodeId b = net.create_node("b");
  net.add_voltage_source(a, kGround, 1.0);
  net.add_resistor(a, b, 1.0);
  net.add_resistor(b, kGround, 1.0);
  MnaSystem mna(net);
  EXPECT_EQ(mna.unknown_count(), 3u);  // 2 node voltages + 1 branch current
}

}  // namespace
}  // namespace vstack::circuit
