#include "circuit/spice_parser.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace vstack::circuit {
namespace {

TEST(SpiceValueTest, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_spice_value("10"), 10.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("-2.5"), -2.5);
  EXPECT_DOUBLE_EQ(parse_spice_value("1e-3"), 1e-3);
}

TEST(SpiceValueTest, MagnitudeSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_value("4.7n"), 4.7e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("10p"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("3f"), 3e-15);
  EXPECT_DOUBLE_EQ(parse_spice_value("2u"), 2e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("50m"), 50e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("1k"), 1e3);
  EXPECT_DOUBLE_EQ(parse_spice_value("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("2g"), 2e9);
}

TEST(SpiceValueTest, RejectsGarbage) {
  EXPECT_THROW(parse_spice_value("abc"), Error);
  EXPECT_THROW(parse_spice_value("1x"), Error);
  EXPECT_THROW(parse_spice_value(""), Error);
}

constexpr const char* kDividerNetlist = R"(
* a simple divider with a cap
.title divider test
V1 vin 0 10
R1 vin mid 1k
R2 mid 0 3k
C1 mid 0 1u IC=7.5
.tran 1u 1m DC
.end
)";

TEST(SpiceParserTest, ParsesDivider) {
  const auto c = parse_spice(kDividerNetlist);
  EXPECT_EQ(c.title, "divider test");
  EXPECT_EQ(c.netlist.resistors().size(), 2u);
  EXPECT_EQ(c.netlist.capacitors().size(), 1u);
  EXPECT_EQ(c.netlist.voltage_sources().size(), 1u);
  EXPECT_DOUBLE_EQ(c.netlist.resistors()[1].resistance, 3000.0);
  EXPECT_DOUBLE_EQ(c.netlist.capacitors()[0].initial_voltage, 7.5);
  ASSERT_TRUE(c.has_tran);
  EXPECT_DOUBLE_EQ(c.tran.time_step, 1e-6);
  EXPECT_DOUBLE_EQ(c.tran.stop_time, 1e-3);
  EXPECT_TRUE(c.tran.start_from_dc);
}

TEST(SpiceParserTest, ParsedDividerSolvesCorrectly) {
  const auto c = parse_spice(kDividerNetlist);
  const auto dc = dc_solve(c.netlist, {});
  EXPECT_NEAR(dc.node_voltages[c.node_by_name.at("mid")], 7.5, 1e-9);
}

TEST(SpiceParserTest, GroundAliases) {
  const auto c = parse_spice("R1 a gnd 1k\nR2 a 0 1k\n.end\n");
  EXPECT_EQ(c.netlist.resistors()[0].b, kGround);
  EXPECT_EQ(c.netlist.resistors()[1].b, kGround);
  EXPECT_EQ(c.node_by_name.size(), 1u);  // just "a"
}

TEST(SpiceParserTest, SwitchCardWithPhase) {
  const auto c = parse_spice(
      "V1 in 0 1\nS1 in out 0.5 1e9 PHASE=0.25 DUTY=0.4\nR1 out 0 10\n"
      ".clock 20n\n.end\n");
  ASSERT_EQ(c.netlist.switches().size(), 1u);
  const auto& sw = c.netlist.switches()[0];
  EXPECT_DOUBLE_EQ(sw.on_resistance, 0.5);
  EXPECT_DOUBLE_EQ(sw.phase.phase_offset, 0.25);
  EXPECT_DOUBLE_EQ(sw.phase.duty, 0.4);
  EXPECT_DOUBLE_EQ(c.clock_period, 20e-9);
}

TEST(SpiceParserTest, CommentsAndBlankLinesIgnored) {
  const auto c = parse_spice(
      "* leading comment\n\nR1 a 0 1k ; trailing comment\n   \n.end\n");
  EXPECT_EQ(c.netlist.resistors().size(), 1u);
}

TEST(SpiceParserTest, ErrorsCarrySourceNameLineAndToken) {
  try {
    parse_spice("R1 a 0 1k\nQ1 b 0 1k\n", "bench.sp");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bench.sp:2:"), std::string::npos) << what;
    EXPECT_NE(what.find("Q1"), std::string::npos) << what;
  }
}

TEST(SpiceParserTest, ErrorsNameTheOffendingValueToken) {
  try {
    parse_spice("R1 a 0 1x2\n", "bad.sp");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad.sp:1:"), std::string::npos) << what;
    EXPECT_NE(what.find("1x2"), std::string::npos) << what;
  }
}

TEST(SpiceParserTest, RejectsMalformedCards) {
  EXPECT_THROW(parse_spice("R1 a 0\n"), Error);                // missing value
  EXPECT_THROW(parse_spice("S1 a b 0.5 1e9 0.25 0.4\n"), Error);  // no keys
  EXPECT_THROW(parse_spice(".tran 1u\n"), Error);
  EXPECT_THROW(parse_spice(".bogus\n"), Error);
  EXPECT_THROW(parse_spice(".end\nR1 a 0 1k\n"), Error);  // after .end
}

// Malformed-netlist corpus: every entry must be rejected with a clean parse
// error (no crash, no acceptance).  Runs under ASan+UBSan in the sanitizer
// CI job.
TEST(SpiceParserTest, MalformedCorpusAllRejected) {
  const char* corpus[] = {
      "R1 a 0 -1k\n",                   // negative resistance
      "R1 a 0 0\n",                     // zero resistance
      "C1 a 0 -1n\n",                   // negative capacitance
      "C1 a 0 1n IC\n",                 // bare IC without value
      "C1 a 0 1n IC=abc\n",             // garbage IC value
      "C1 a 0 1n IC=1 extra\n",         // trailing token
      "R1 a 0 1k\nR1 b 0 2k\n",         // duplicate element name
      "R1 a 0 1k\nr1 b 0 2k\n",         // duplicate, case-insensitive
      "S1 a b -0.5 1e9 PHASE=0 DUTY=0.5\n",   // negative Ron
      "S1 a b 10 1 PHASE=0 DUTY=0.5\n",        // Roff < Ron
      "S1 a b 1 1e9 PHASE=1.5 DUTY=0.5\n",     // phase out of range
      "S1 a b 1 1e9 PHASE=0 DUTY=1.5\n",       // duty out of range
      "S1 a b 1 1e9 PHASE=0 DUTY=-0.1\n",      // negative duty
      ".clock 0\n",                     // zero clock period
      ".clock -1n\n",                   // negative clock period
      ".clock 1n\n.clock 2n\n",         // duplicate .clock
      ".tran 1n 1u\n.tran 1n 1u\n",     // duplicate .tran
      ".tran 1u 1n\n",                  // stop <= step
      ".tran -1n 1u\n",                 // negative step
      ".tran 1n 1u FAST\n",             // unknown flag
      "V1 a 0 1e999\n",                 // overflow -> non-finite
      "V1 a 0 nan\n",                   // NaN value
      "X1 a 0 1\n",                     // unknown card
  };
  for (const char* text : corpus) {
    EXPECT_THROW(parse_spice(text, "corpus.sp"), Error)
        << "accepted malformed netlist:\n" << text;
  }
}

TEST(SpiceParserTest, TranAdaptiveFlagSelectsAdaptiveMode) {
  const auto c = parse_spice("R1 a 0 1k\n.tran 1n 1u DC ADAPTIVE\n.end\n");
  ASSERT_TRUE(c.has_tran);
  EXPECT_TRUE(c.tran.start_from_dc);
  EXPECT_EQ(c.tran.mode, SteppingMode::Adaptive);
  // Round trip keeps the flag.
  const auto reparsed = parse_spice(write_spice(c));
  EXPECT_EQ(reparsed.tran.mode, SteppingMode::Adaptive);
}

TEST(SpiceParserTest, RoundTripPreservesCircuit) {
  const auto original = parse_spice(kDividerNetlist);
  const auto text = write_spice(original);
  const auto reparsed = parse_spice(text);
  EXPECT_EQ(reparsed.netlist.resistors().size(),
            original.netlist.resistors().size());
  EXPECT_DOUBLE_EQ(reparsed.netlist.capacitors()[0].initial_voltage, 7.5);
  // Same DC answer after the round trip.
  const auto dc = dc_solve(reparsed.netlist, {});
  EXPECT_NEAR(dc.node_voltages[reparsed.node_by_name.at("mid")], 7.5, 1e-9);
}

TEST(SpiceParserTest, ParsedSwitcherRunsTransient) {
  // A chargeable cap behind an alternating switch pair: parse and run.
  const auto c = parse_spice(R"(
V1 in 0 1
S1 in top 1 1g PHASE=0.0 DUTY=0.45
S2 top out 1 1g PHASE=0.5 DUTY=0.45
C1 top 0 10n
C2 out 0 10n
R1 out 0 1k
.clock 100n
.tran 1n 20u
.end
)");
  ASSERT_TRUE(c.has_tran);
  TransientSimulator sim(c.netlist, c.clock_period);
  const auto r = sim.run(c.tran);
  // The switched-cap chain pumps charge to the output: a clearly positive
  // average emerges.
  const double v_out =
      r.average_node_voltage(c.node_by_name.at("out"), 15e-6);
  EXPECT_GT(v_out, 0.3);
  EXPECT_LT(v_out, 1.0);
}

}  // namespace
}  // namespace vstack::circuit
