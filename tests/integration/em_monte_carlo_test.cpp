// Integration: the analytical array-MTTF solver against direct Monte-Carlo
// sampling of lognormal conductor lifetimes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "em/array_mttf.h"

namespace vstack::em {
namespace {

/// Empirical median of the first-failure time over `trials` arrays.
double monte_carlo_first_failure_median(const std::vector<double>& currents,
                                        const BlackModel& black, double sigma,
                                        std::size_t trials, Rng& rng) {
  std::vector<double> first_failures;
  first_failures.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    double first = std::numeric_limits<double>::infinity();
    for (const double i : currents) {
      const double t50 = black.median_ttf(i);
      if (std::isinf(t50)) continue;
      // Lognormal draw with median t50 and shape sigma.
      const double sample = rng.lognormal(std::log(t50), sigma);
      first = std::min(first, sample);
    }
    first_failures.push_back(first);
  }
  std::sort(first_failures.begin(), first_failures.end());
  return first_failures[first_failures.size() / 2];
}

TEST(EmMonteCarloTest, AnalyticMatchesSampledMedianUniform) {
  BlackModel black;
  const std::vector<double> currents(64, 12e-3);
  const double analytic = array_mttf(currents, black);
  Rng rng(2718);
  const double sampled =
      monte_carlo_first_failure_median(currents, black, 0.5, 4000, rng);
  EXPECT_NEAR(sampled / analytic, 1.0, 0.05);
}

TEST(EmMonteCarloTest, AnalyticMatchesSampledMedianHeterogeneous) {
  BlackModel black;
  Rng gen(99);
  std::vector<double> currents(200);
  for (auto& c : currents) c = gen.uniform(2e-3, 40e-3);
  const double analytic = array_mttf(currents, black);
  Rng rng(314);
  const double sampled =
      monte_carlo_first_failure_median(currents, black, 0.5, 4000, rng);
  EXPECT_NEAR(sampled / analytic, 1.0, 0.06);
}

TEST(EmMonteCarloTest, TemperatureVariantMatches) {
  BlackModel black;
  black.current_exponent = 1.1;
  const std::vector<double> currents(50, 15e-3);
  std::vector<double> temps(50);
  for (std::size_t k = 0; k < 50; ++k) {
    temps[k] = 350.0 + static_cast<double>(k);  // 350..399 K gradient
  }
  const double analytic = array_mttf_at_temperatures(currents, temps, black);

  // Monte Carlo with the same per-conductor medians.
  Rng rng(555);
  std::vector<double> firsts;
  firsts.reserve(3000);
  for (std::size_t t = 0; t < 3000; ++t) {
    double first = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < 50; ++k) {
      const double t50 = black.median_ttf(currents[k], temps[k]);
      first = std::min(first, rng.lognormal(std::log(t50), 0.5));
    }
    firsts.push_back(first);
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_NEAR(firsts[firsts.size() / 2] / analytic, 1.0, 0.06);
}

TEST(EmMonteCarloTest, HotterConductorsFailFirstInSampling) {
  BlackModel black;
  const std::vector<double> currents{30e-3, 5e-3};
  Rng rng(777);
  std::size_t hot_first = 0;
  const std::size_t trials = 2000;
  for (std::size_t t = 0; t < trials; ++t) {
    const double hot =
        rng.lognormal(std::log(black.median_ttf(currents[0])), 0.5);
    const double cold =
        rng.lognormal(std::log(black.median_ttf(currents[1])), 0.5);
    if (hot < cold) ++hot_first;
  }
  EXPECT_GT(hot_first, trials * 9 / 10);
}

}  // namespace
}  // namespace vstack::em
