// Integration: the SC compact model against the switch-level simulator --
// the paper's Fig. 3 validation, as an automated regression test.
#include <gtest/gtest.h>

#include "circuit/sc_testbench.h"
#include "sc/compact_model.h"

namespace vstack {
namespace {

struct ValidationCase {
  double load_ma;
  sc::ControlPolicy policy;
};

class Fig3Validation : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(Fig3Validation, ModelTracksSimulation) {
  const auto [load_ma, policy] = GetParam();
  const double load = load_ma * 1e-3;

  sc::ScConverterDesign design;
  design.control = policy;
  const sc::ScCompactModel model(design);
  const auto op = model.evaluate(2.0, 0.0, load);

  circuit::ScTestbenchConfig tb;
  tb.load_current = load;
  tb.switching_frequency = op.switching_frequency;
  circuit::ScSimulationOptions opts;
  opts.settle_periods = 60;
  opts.measure_periods = 15;
  const auto sim = circuit::simulate_push_pull_sc(tb, opts);

  // Paper Fig. 3: model tracks simulation closely across the load range.
  EXPECT_NEAR(op.efficiency, sim.efficiency, 0.03)
      << "load " << load_ma << " mA";
  EXPECT_NEAR(op.voltage_drop, sim.voltage_drop, 6e-3)
      << "load " << load_ma << " mA";
}

INSTANTIATE_TEST_SUITE_P(
    OpenLoop, Fig3Validation,
    ::testing::Values(ValidationCase{10, sc::ControlPolicy::OpenLoop},
                      ValidationCase{30, sc::ControlPolicy::OpenLoop},
                      ValidationCase{50, sc::ControlPolicy::OpenLoop},
                      ValidationCase{90, sc::ControlPolicy::OpenLoop}));

INSTANTIATE_TEST_SUITE_P(
    ClosedLoop, Fig3Validation,
    ::testing::Values(ValidationCase{6.3, sc::ControlPolicy::ClosedLoop},
                      ValidationCase{25, sc::ControlPolicy::ClosedLoop},
                      ValidationCase{100, sc::ControlPolicy::ClosedLoop}));

TEST(Fig3ValidationExtra, SimulatedSeriesResistanceNearDesignValue) {
  // Extract the effective series resistance from two simulated points and
  // compare with the analytical R_SERIES (paper: 0.6 Ohm).
  circuit::ScTestbenchConfig tb;
  circuit::ScSimulationOptions opts;
  opts.settle_periods = 60;
  opts.measure_periods = 15;
  tb.load_current = 20e-3;
  const auto low = circuit::simulate_push_pull_sc(tb, opts);
  tb.load_current = 80e-3;
  const auto high = circuit::simulate_push_pull_sc(tb, opts);
  const double r_eff =
      (high.voltage_drop - low.voltage_drop) / (80e-3 - 20e-3);

  const sc::ScCompactModel model{sc::ScConverterDesign{}};
  EXPECT_NEAR(r_eff, model.r_series(50e6), 0.08);
}

}  // namespace
}  // namespace vstack
