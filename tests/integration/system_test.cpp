// End-to-end system tests: the full pipeline from processor model through
// floorplan, PDN solve, EM, thermal and efficiency -- the paths the
// examples and benches exercise, as assertions.
#include <gtest/gtest.h>

#include <numeric>

#include "core/pad_optimizer.h"
#include "core/sweeps.h"
#include "core/workload_noise.h"
#include "pdn/transient.h"

namespace vstack {
namespace {

const core::StudyContext& ctx() {
  static const core::StudyContext c = [] {
    auto c = core::StudyContext::paper_defaults();
    c.base.grid_nx = c.base.grid_ny = 16;
    return c;
  }();
  return c;
}

TEST(SystemTest, HeadlineAbstractClaims) {
  // The abstract in one test: "significantly improving the EM-lifetime of
  // C4 and TSV array (e.g., up to 5x) while only marginally increasing the
  // average-case voltage noise".
  const std::vector<double> full(8, 1.0);
  const auto reg = core::evaluate_scenario(
      ctx(), core::make_regular(ctx(), 8, pdn::TsvConfig::few(), 0.25), full);
  const auto vs = core::evaluate_scenario(
      ctx(), core::make_stacked(ctx(), 8, pdn::TsvConfig::few(), 8), full);

  EXPECT_GT(vs.tsv_mttf / reg.tsv_mttf, 5.0);
  EXPECT_GT(vs.c4_mttf / reg.c4_mttf, 5.0);

  const auto noise = core::sample_noise_distribution(
      ctx(), core::make_stacked(ctx(), 8, ctx().base.tsv, 8),
      core::SchedulingPolicy::RandomMix, 15, 1);
  EXPECT_LT(noise.mean_noise, 0.02);  // average case stays small
}

TEST(SystemTest, CurrentConservationAcrossTheStack) {
  // With balanced loads the converters idle and all power flows through the
  // off-chip source: supply power = load power + resistive losses.  (With
  // the default IdealRails reference and imbalanced loads, the stiff
  // anchors inject the compensation current, so this bookkeeping only holds
  // balanced -- or in AdjacentRails mode, checked below.)
  pdn::PdnModel model(core::make_stacked(ctx(), 4, ctx().base.tsv, 8),
                      ctx().layer_floorplan);
  const auto sol = model.solve_activities(ctx().core_model,
                                          std::vector<double>(4, 1.0));
  EXPECT_GT(sol.supply_power, sol.load_power);
  EXPECT_GT(sol.resistive_efficiency, 0.95);
  for (double i : sol.c4_pad_currents) {
    EXPECT_GE(i, 0.0);
    EXPECT_LT(i, 1.0);
  }

  // Physically-coupled mode conserves power even under imbalance.
  auto coupled_cfg = core::make_stacked(ctx(), 4, ctx().base.tsv, 8);
  coupled_cfg.converter_reference = pdn::ConverterReference::AdjacentRails;
  pdn::PdnModel coupled(coupled_cfg, ctx().layer_floorplan);
  const auto sol2 = coupled.solve_activities(ctx().core_model,
                                             {1.0, 0.7, 1.0, 0.7});
  EXPECT_GT(sol2.supply_power, sol2.load_power);
}

TEST(SystemTest, SweepRowsInternallyConsistent) {
  const auto rows5a = core::run_fig5a(ctx(), {2, 4});
  ASSERT_EQ(rows5a.size(), 2u);
  for (const auto& r : rows5a) {
    EXPECT_GT(r.reg_dense, 0.0);
    EXPECT_GT(r.vs_few, 0.0);
  }
  // Monotone degradation with layers for the regular topology.
  EXPECT_LT(rows5a[1].reg_few, rows5a[0].reg_few);

  const auto fig8 = core::run_fig8(ctx(), 4, {4, 8}, {0.2, 0.8});
  for (const auto& row : fig8.rows) {
    for (const auto& v : row.vs_efficiency) {
      if (v) {
        EXPECT_GT(*v, 0.5);
        EXPECT_LT(*v, 1.0);
      }
    }
  }
}

TEST(SystemTest, TransientAndStaticSolversAgreeAtDc) {
  // A transient run with no step must reproduce the static solve.
  pdn::PdnModel model(core::make_regular(ctx(), 2, ctx().base.tsv, 0.25),
                      ctx().layer_floorplan);
  const std::vector<double> acts{0.9, 0.9};
  pdn::PdnTransientOptions opts;
  opts.time_step = 2e-9;
  opts.duration = 40e-9;
  opts.step_time = 0.0;
  const auto tr = pdn::simulate_load_step(model, ctx().core_model, acts,
                                          acts, opts);
  const auto dc = model.solve_activities(ctx().core_model, acts);
  EXPECT_NEAR(tr.final_noise, dc.max_node_deviation_fraction, 2e-3);
}

TEST(SystemTest, AreaBookkeepingConsistent) {
  // The iso-area pairing of Fig. 6 from the component models themselves.
  const double vs_area = ctx().vs_area_overhead(8, pdn::TsvConfig::few());
  const double reg_area =
      ctx().regular_area_overhead(pdn::TsvConfig::dense());
  EXPECT_NEAR(vs_area, reg_area, 0.08);
  // Regular never pays converter area.
  EXPECT_LT(ctx().regular_area_overhead(pdn::TsvConfig::few()), 0.01);
}

TEST(SystemTest, PadOptimizerAgreesWithScenarioEvaluator) {
  core::PadRequirement req;
  req.min_c4_mttf = 0.0;
  req.max_noise_fraction = 0.10;
  const auto r = core::minimize_regular_power_pads(ctx(), 2, req);
  ASSERT_TRUE(r.feasible);
  // Re-evaluate the chosen design and confirm the constraints hold.
  const auto check = core::evaluate_scenario(
      ctx(), core::make_regular(ctx(), 2, ctx().base.tsv, r.knob),
      std::vector<double>(2, 1.0));
  EXPECT_LE(check.solution.max_node_deviation_fraction,
            req.max_noise_fraction);
}

}  // namespace
}  // namespace vstack
