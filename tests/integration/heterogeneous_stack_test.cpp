// Integration: heterogeneous (memory-on-logic) stacks, and consistency
// between the lumped ladder analysis and the full grid solve.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "core/study.h"
#include "power/workload.h"
#include "sc/ladder.h"

namespace vstack {
namespace {

const core::StudyContext& ctx() {
  static const core::StudyContext c = [] {
    auto c = core::StudyContext::paper_defaults();
    c.base.grid_nx = c.base.grid_ny = 8;
    return c;
  }();
  return c;
}

TEST(DramModelTest, CalibratedTotals) {
  const auto dram = power::CorePowerModel::dram_like();
  EXPECT_NEAR(16.0 * dram.peak_total_power(), 1.5, 1e-9);
  // Same footprint as the logic tile, so floorplans are interchangeable.
  EXPECT_NEAR(dram.area(), power::CorePowerModel::cortex_a9_like().area(),
              1e-12);
  // Leakage-heavy, as DRAM background power is.
  EXPECT_GT(dram.leakage_power() / dram.peak_total_power(), 0.3);
}

TEST(HeterogeneousStackTest, LayeredLoadsMatchExpectedTotals) {
  const auto logic = power::CorePowerModel::cortex_a9_like();
  const auto dram = power::CorePowerModel::dram_like();
  const auto logic_fp = floorplan::make_layer_floorplan(logic, 4, 4);
  const auto dram_fp = floorplan::make_layer_floorplan(dram, 4, 4);

  auto cfg = core::make_regular(ctx(), 3, ctx().base.tsv, 0.25);
  pdn::PdnModel model(cfg, ctx().layer_floorplan);
  const auto loads = model.network().build_loads_layered(
      {&logic, &dram, &dram}, {&logic_fp, &dram_fp, &dram_fp},
      {1.0, 1.0, 1.0});
  double total = 0.0;
  for (const auto& l : loads) total += l.current;
  EXPECT_NEAR(total, 7.6 + 1.5 + 1.5, 1e-6);
}

TEST(HeterogeneousStackTest, PermanentImbalanceLoadsConverters) {
  const auto logic = power::CorePowerModel::cortex_a9_like();
  const auto dram = power::CorePowerModel::dram_like();
  const auto logic_fp = floorplan::make_layer_floorplan(logic, 4, 4);
  const auto dram_fp = floorplan::make_layer_floorplan(dram, 4, 4);

  auto cfg = core::make_stacked(ctx(), 4, ctx().base.tsv, 8);
  pdn::PdnModel model(cfg, ctx().layer_floorplan);
  const auto sol = model.solve(model.network().build_loads_layered(
      {&logic, &dram, &dram, &dram},
      {&logic_fp, &dram_fp, &dram_fp, &dram_fp}, {1.0, 1.0, 1.0, 1.0}));
  // The 6.1 W logic/DRAM gap keeps converters loaded even at "balanced"
  // full activity.
  EXPECT_GT(sol.max_converter_current, 20e-3);
}

TEST(HeterogeneousStackTest, RejectsMismatchedVectors) {
  const auto logic = power::CorePowerModel::cortex_a9_like();
  const auto logic_fp = floorplan::make_layer_floorplan(logic, 4, 4);
  auto cfg = core::make_regular(ctx(), 2, ctx().base.tsv, 0.25);
  pdn::PdnModel model(cfg, ctx().layer_floorplan);
  EXPECT_THROW((model.network().build_loads_layered({&logic}, {&logic_fp},
                                                    {1.0, 1.0})),
               Error);
}

TEST(LadderGridConsistencyTest, LevelCurrentsMatchAnalyticLadder) {
  // In AdjacentRails (physically coupled) mode, the sum of converter
  // currents at each level of the grid solve must match the lumped
  // tridiagonal ladder analysis.
  auto cfg = core::make_stacked(ctx(), 4, ctx().base.tsv, 8);
  cfg.converter_reference = pdn::ConverterReference::AdjacentRails;
  pdn::PdnModel model(cfg, ctx().layer_floorplan);
  const auto acts = power::interleaved_layer_activities(4, 0.6);
  const auto sol = model.solve_activities(ctx().core_model, acts);

  std::vector<double> layer_currents(4);
  for (std::size_t l = 0; l < 4; ++l) {
    layer_currents[l] = 16.0 * ctx().core_model.total_power(acts[l]);
  }
  const auto ladder = sc::solve_ladder_currents(layer_currents);

  for (std::size_t level = 1; level <= 3; ++level) {
    double grid_net = 0.0;
    for (std::size_t c = 0; c < model.network().converters().size(); ++c) {
      if (model.network().converters()[c].level == level) {
        grid_net += sol.converter_currents[c];
      }
    }
    EXPECT_NEAR(grid_net, ladder.level_net_currents[level - 1],
                0.05 * std::abs(ladder.level_net_currents[level - 1]) + 0.05)
        << "level " << level;
  }
}

}  // namespace
}  // namespace vstack
