// Shard job plans (shard/job.h): chunk arithmetic, plan-line round trips,
// publish/load guarding against job-directory reuse, and the config-hash
// identity that ties a plan to the campaign it reconstructs.
#include "shard/job.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/error.h"
#include "core/campaign_manifest.h"

namespace vstack::shard {
namespace {

const core::StudyContext& ctx() {
  static const core::StudyContext c = core::StudyContext::paper_defaults();
  return c;
}

JobSpec small_spec() {
  JobSpec spec;
  spec.layers = 4;
  spec.grid = 8;
  spec.trials = 6;
  spec.faults_per_trial = 2;
  spec.converter_faults_per_trial = 8;
  spec.seed = 7;
  spec.duration_s = 200e-9;
  return spec;
}

std::string temp_job_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "vstack_shard_" + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(JobSpecTest, ChunkMathCoversEveryTrialExactlyOnce) {
  JobSpec spec = small_spec();
  spec.trials = 10;
  spec.chunk = 3;
  EXPECT_EQ(spec.chunk_count(), 4u);
  EXPECT_EQ(spec.chunk_begin(0), 0u);
  EXPECT_EQ(spec.chunk_end(0), 3u);
  EXPECT_EQ(spec.chunk_begin(3), 9u);
  EXPECT_EQ(spec.chunk_end(3), 10u);  // short tail chunk
  for (std::size_t t = 0; t < spec.trials; ++t) {
    const std::size_t c = spec.chunk_of(t);
    EXPECT_GE(t, spec.chunk_begin(c));
    EXPECT_LT(t, spec.chunk_end(c));
  }
}

TEST(JobSpecTest, ValidateRejectsDegenerateKnobs) {
  JobSpec spec = small_spec();
  spec.chunk = 0;
  EXPECT_THROW(spec.validate(), Error);
  spec = small_spec();
  spec.max_attempts = 0;
  EXPECT_THROW(spec.validate(), Error);
  spec = small_spec();
  spec.heartbeat_s = spec.lease_expiry_s;  // heartbeat must beat expiry
  EXPECT_THROW(spec.validate(), Error);
}

TEST(PlanLineTest, RoundTripsEveryField) {
  JobSpec spec = small_spec();
  spec.stacked = false;
  spec.imbalance = 0.65;
  spec.scenario_timeout_s = 1.5;
  spec.max_retries = 2;
  spec.retry_relax = 5.0;
  spec.chunk = 2;
  spec.max_attempts = 4;
  spec.lease_expiry_s = 12.5;
  spec.heartbeat_s = 0.25;

  JobSpec back;
  std::uint64_t hash = 0;
  ASSERT_TRUE(parse_plan_line(plan_line(spec, 0xdeadbeefcafe1234ull), back,
                              hash));
  EXPECT_EQ(hash, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(back.stacked, spec.stacked);
  EXPECT_EQ(back.layers, spec.layers);
  EXPECT_EQ(back.grid, spec.grid);
  EXPECT_EQ(back.imbalance, spec.imbalance);
  EXPECT_EQ(back.trials, spec.trials);
  EXPECT_EQ(back.faults_per_trial, spec.faults_per_trial);
  EXPECT_EQ(back.converter_faults_per_trial, spec.converter_faults_per_trial);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.duration_s, spec.duration_s);
  EXPECT_EQ(back.fault_time_s, spec.fault_time_s);
  EXPECT_EQ(back.scenario_timeout_s, spec.scenario_timeout_s);
  EXPECT_EQ(back.max_retries, spec.max_retries);
  EXPECT_EQ(back.retry_relax, spec.retry_relax);
  EXPECT_EQ(back.chunk, spec.chunk);
  EXPECT_EQ(back.max_attempts, spec.max_attempts);
  EXPECT_EQ(back.lease_expiry_s, spec.lease_expiry_s);
  EXPECT_EQ(back.heartbeat_s, spec.heartbeat_s);

  JobSpec junk;
  std::uint64_t junk_hash = 0;
  EXPECT_FALSE(parse_plan_line("{\"kind\":\"vstack-campaign\"}", junk,
                               junk_hash));
}

TEST(JobConfigHashTest, IgnoresSchedulingKnobsButSeesPhysics) {
  const JobSpec spec = small_spec();
  const std::uint64_t base = job_config_hash(ctx(), spec);

  // Sharding knobs are pure scheduling: a jobs=1 serial manifest and an
  // 8-worker fleet must hash (and hence merge) identically.
  JobSpec resharded = spec;
  resharded.chunk = 3;
  resharded.max_attempts = 7;
  resharded.lease_expiry_s = 99.0;
  resharded.heartbeat_s = 0.1;
  EXPECT_EQ(job_config_hash(ctx(), resharded), base);

  JobSpec reseeded = spec;
  reseeded.seed = spec.seed + 1;
  EXPECT_NE(job_config_hash(ctx(), reseeded), base);

  JobSpec rewired = spec;
  rewired.grid = 16;
  EXPECT_NE(job_config_hash(ctx(), rewired), base);
}

TEST(JobConfigHashTest, MatchesTheCampaignManifestHash) {
  const JobSpec spec = small_spec();
  const CampaignSetup setup = make_campaign(ctx(), spec);
  EXPECT_EQ(job_config_hash(ctx(), spec),
            core::campaign_config_hash(setup.config, setup.activities,
                                       setup.options));
}

TEST(PublishPlanTest, IdempotentForSameJobFatalForDifferentJob) {
  const std::string dir = temp_job_dir("publish");
  const JobPaths paths(dir);
  const JobSpec spec = small_spec();
  const std::uint64_t hash = job_config_hash(ctx(), spec);

  publish_plan(paths, spec, hash);
  publish_plan(paths, spec, hash);  // resuming the same job is fine

  std::uint64_t loaded_hash = 0;
  const JobSpec loaded = load_plan(paths, loaded_hash);
  EXPECT_EQ(loaded_hash, hash);
  EXPECT_EQ(loaded.trials, spec.trials);
  EXPECT_EQ(loaded.seed, spec.seed);

  JobSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_THROW(publish_plan(paths, other, job_config_hash(ctx(), other)),
               Error);
  std::filesystem::remove_all(dir);
}

TEST(PublishPlanTest, LoadWithoutPlanIsFatal) {
  const std::string dir = temp_job_dir("empty");
  std::filesystem::create_directories(dir);
  std::uint64_t hash = 0;
  EXPECT_THROW(load_plan(JobPaths(dir), hash), Error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vstack::shard
