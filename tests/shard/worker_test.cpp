// Shard workers (shard/worker.h) run in-process as threads: a two-worker
// fleet must reproduce the serial campaign (modulo wall_seconds), a poison
// chunk must be quarantined after max_attempts, and a stopped worker must
// leave a job a later worker can finish.
#include "shard/worker.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/durable_file.h"
#include "core/campaign.h"
#include "shard/job.h"
#include "shard/merge.h"

namespace vstack::shard {
namespace {

namespace fs = std::filesystem;

const core::StudyContext& ctx() {
  static const core::StudyContext c = core::StudyContext::paper_defaults();
  return c;
}

JobSpec small_spec() {
  JobSpec spec;
  spec.layers = 4;
  spec.grid = 8;
  spec.trials = 5;
  spec.faults_per_trial = 2;
  spec.converter_faults_per_trial = 8;
  spec.seed = 11;
  spec.duration_s = 200e-9;
  spec.lease_expiry_s = 5.0;
  spec.heartbeat_s = 0.2;
  return spec;
}

JobPaths fresh_job(const std::string& tag) {
  const std::string dir = testing::TempDir() + "vstack_worker_" + tag + "_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  const JobPaths paths(dir);
  publish_plan(paths, small_spec(), job_config_hash(ctx(), small_spec()));
  return paths;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

/// wall_seconds is real time, everything else is physics: strip it before
/// comparing a re-executed manifest against the serial one.
std::string mask_wall_seconds(const std::string& text) {
  static const std::regex wall(",\"wall_seconds\":[^,}]*");
  return std::regex_replace(text, wall, "");
}

std::string serial_manifest_text() {
  static const std::string text = [] {
    const std::string path = testing::TempDir() + "vstack_worker_serial_" +
                             std::to_string(::getpid()) + ".jsonl";
    std::remove(path.c_str());
    const CampaignSetup setup = make_campaign(ctx(), small_spec());
    core::CampaignOptions opts = setup.options;
    opts.manifest_path = path;
    const core::CampaignRunner runner(ctx(), setup.config);
    runner.run(setup.activities, opts);
    std::string out = slurp(path);
    std::remove(path.c_str());
    return out;
  }();
  return text;
}

TEST(RunWorkerTest, TwoWorkerFleetReproducesTheSerialManifest) {
  const JobPaths paths = fresh_job("fleet");

  WorkerReport reports[2];
  std::vector<std::thread> fleet;
  for (int w = 0; w < 2; ++w) {
    fleet.emplace_back([&, w] {
      WorkerOptions opt;
      opt.job_dir = paths.root;
      opt.worker_id = "w" + std::to_string(w);
      reports[w] = run_worker(ctx(), opt);
    });
  }
  for (auto& t : fleet) t.join();

  EXPECT_FALSE(reports[0].stopped_early);
  EXPECT_FALSE(reports[1].stopped_early);
  // Every chunk completed exactly once across the fleet (leases serialize
  // the claims; nobody crashed, so no chunk needed a second attempt).
  EXPECT_EQ(reports[0].chunks_completed + reports[1].chunks_completed,
            small_spec().trials);

  const MergeReport merge = merge_job(ctx(), paths.root);
  EXPECT_TRUE(merge.clean());
  EXPECT_EQ(merge.committed, small_spec().trials);
  EXPECT_EQ(mask_wall_seconds(slurp(paths.merged())),
            mask_wall_seconds(serial_manifest_text()));
  fs::remove_all(paths.root);
}

TEST(RunWorkerTest, ExhaustedAttemptTrailQuarantinesTheChunk) {
  const JobPaths paths = fresh_job("poison");
  const JobSpec spec = small_spec();

  // Chunk 2's trail already shows max_attempts workers died in it: the
  // next claimant must quarantine instead of becoming victim N+1.
  {
    DurableAppender attempts;
    attempts.open(paths.attempts(2));
    for (std::size_t seq = 1; seq <= spec.max_attempts; ++seq) {
      attempts.append_line("{\"worker\":\"w-dead\",\"pid\":1,\"seq\":" +
                           std::to_string(seq) + "}");
    }
  }

  WorkerOptions opt;
  opt.job_dir = paths.root;
  opt.worker_id = "w0";
  const WorkerReport report = run_worker(ctx(), opt);
  EXPECT_EQ(report.chunks_quarantined, 1u);
  EXPECT_EQ(report.chunks_completed, spec.trials - 1);
  ASSERT_TRUE(fs::exists(paths.quarantine(2)));

  // The diagnostic names the chunk and inlines the full attempt trail.
  const std::string diag = slurp(paths.quarantine(2));
  EXPECT_NE(diag.find("\"chunk\":2"), std::string::npos);
  EXPECT_NE(diag.find("\"attempts\":3"), std::string::npos);
  EXPECT_NE(diag.find("\"quarantined_by\":\"w0\""), std::string::npos);
  EXPECT_NE(diag.find("\"worker\":\"w-dead\""), std::string::npos);

  const MergeReport merge = merge_job(ctx(), paths.root);
  EXPECT_FALSE(merge.clean());
  ASSERT_EQ(merge.quarantined_trials.size(), 1u);
  EXPECT_EQ(merge.quarantined_trials[0], 2u);
  EXPECT_TRUE(merge.missing_trials.empty());
  fs::remove_all(paths.root);
}

TEST(RunWorkerTest, StoppedWorkerLeavesAJobASuccessorCanFinish) {
  const JobPaths paths = fresh_job("resume");

  WorkerOptions stopped;
  stopped.job_dir = paths.root;
  stopped.worker_id = "w0";
  stopped.stop = Deadline::after(-1.0);  // already expired
  const WorkerReport first = run_worker(ctx(), stopped);
  EXPECT_TRUE(first.stopped_early);
  EXPECT_EQ(first.chunks_completed, 0u);

  // A successor reusing the SAME worker id appends after the (possibly
  // torn) manifest of its predecessor and finishes the job.
  WorkerOptions successor;
  successor.job_dir = paths.root;
  successor.worker_id = "w0";
  const WorkerReport second = run_worker(ctx(), successor);
  EXPECT_FALSE(second.stopped_early);
  EXPECT_EQ(second.chunks_completed, small_spec().trials);

  const MergeReport merge = merge_job(ctx(), paths.root);
  EXPECT_TRUE(merge.clean());
  EXPECT_EQ(mask_wall_seconds(slurp(paths.merged())),
            mask_wall_seconds(serial_manifest_text()));
  fs::remove_all(paths.root);
}

}  // namespace
}  // namespace vstack::shard
