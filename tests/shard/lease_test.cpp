// Chunk leases (shard/lease.h): single-winner claims across racing
// managers, expiry-based reclamation of dead workers' leases, heartbeat
// keep-alive, and ownership-checked release.
#include "shard/lease.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/durable_file.h"

namespace vstack::shard {
namespace {

JobPaths temp_paths(const std::string& tag) {
  const std::string dir = testing::TempDir() + "vstack_lease_" + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  JobPaths paths(dir);
  paths.create_dirs();
  return paths;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::string s;
  std::getline(in, s);
  return s;
}

TEST(LeaseManagerTest, ExactlyOneWinnerAcrossRacingManagers) {
  const JobPaths paths = temp_paths("race");
  constexpr std::size_t kManagers = 4;
  std::vector<std::unique_ptr<LeaseManager>> managers;
  for (std::size_t i = 0; i < kManagers; ++i) {
    managers.push_back(std::make_unique<LeaseManager>(
        paths, "w" + std::to_string(i), /*expiry_s=*/30.0,
        /*heartbeat_s=*/1.0));
  }
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (auto& m : managers) {
    threads.emplace_back([&] {
      if (m->try_claim(0)) winners.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);

  // Release by the winner makes the chunk claimable again.
  for (auto& m : managers) {
    if (m->held() == 1) m->release(0);
  }
  LeaseManager late(paths, "w-late", 30.0, 1.0);
  EXPECT_TRUE(late.try_claim(0));
  late.release(0);
  std::filesystem::remove_all(paths.root);
}

TEST(LeaseManagerTest, ExpiredLeaseOfDeadWorkerIsReclaimed) {
  const JobPaths paths = temp_paths("reclaim");
  // A worker that died: its lease file exists but nothing refreshes the
  // mtime.  No LeaseManager owns it, so no heartbeat fires.
  ASSERT_TRUE(create_exclusive_file(paths.lease(0), "worker=w-dead pid=1\n"));

  LeaseManager survivor(paths, "w-live", /*expiry_s=*/0.2,
                        /*heartbeat_s=*/0.05);
  EXPECT_FALSE(survivor.try_claim(0));  // not expired yet
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_TRUE(survivor.try_claim(0));  // expired -> rename-away -> re-claim
  EXPECT_EQ(survivor.held(), 1u);
  survivor.release(0);
  EXPECT_FALSE(std::filesystem::exists(paths.lease(0)));
  std::filesystem::remove_all(paths.root);
}

TEST(LeaseManagerTest, HeartbeatKeepsALiveLeaseFromBeingStolen) {
  const JobPaths paths = temp_paths("heartbeat");
  LeaseManager holder(paths, "w-holder", /*expiry_s=*/0.5,
                      /*heartbeat_s=*/0.05);
  ASSERT_TRUE(holder.try_claim(0));

  LeaseManager thief(paths, "w-thief", /*expiry_s=*/0.5, /*heartbeat_s=*/0.05);
  // Well past expiry in wall time -- but the holder's heartbeat thread has
  // been refreshing the mtime the whole while.
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  EXPECT_FALSE(thief.try_claim(0));
  EXPECT_EQ(holder.held(), 1u);
  holder.release(0);
  std::filesystem::remove_all(paths.root);
}

TEST(LeaseManagerTest, ReleaseLeavesAReissuedLeaseAlone) {
  const JobPaths paths = temp_paths("reissue");
  LeaseManager stalled(paths, "w-stalled", /*expiry_s=*/30.0,
                       /*heartbeat_s=*/1.0);
  ASSERT_TRUE(stalled.try_claim(0));

  // Simulate reclamation while "stalled" was paused: the lease file now
  // carries another worker's claim.
  ASSERT_TRUE(remove_file(paths.lease(0)));
  ASSERT_TRUE(create_exclusive_file(paths.lease(0), "worker=w-new pid=2\n"));

  stalled.release(0);  // must NOT delete the new owner's lease
  EXPECT_TRUE(std::filesystem::exists(paths.lease(0)));
  EXPECT_EQ(slurp(paths.lease(0)), "worker=w-new pid=2");
  std::filesystem::remove_all(paths.root);
}

}  // namespace
}  // namespace vstack::shard
