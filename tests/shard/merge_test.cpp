// Deterministic shard merge (shard/merge.h).  The load-bearing property:
// however the serial manifest's lines are scattered across shard files --
// random splits, duplicated commits, torn trailing fragments -- the merge
// reproduces the serial manifest BYTE FOR BYTE.  Plus the failure-path
// accounting: quarantined vs missing trials, divergent duplicates, and
// foreign shard headers.
#include "shard/merge.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/campaign.h"
#include "core/campaign_manifest.h"
#include "shard/job.h"

namespace vstack::shard {
namespace {

namespace fs = std::filesystem;

const core::StudyContext& ctx() {
  static const core::StudyContext c = core::StudyContext::paper_defaults();
  return c;
}

JobSpec small_spec() {
  JobSpec spec;
  spec.layers = 4;
  spec.grid = 8;
  spec.trials = 6;
  spec.faults_per_trial = 2;
  spec.converter_faults_per_trial = 8;
  spec.seed = 7;
  spec.duration_s = 200e-9;
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

/// The serial manifest for small_spec(), produced once per process: header
/// + one line per trial, exactly what a shard fleet must reassemble.
struct SerialRun {
  std::string manifest_text;
  std::string header;
  std::vector<std::string> lines;  // scenario lines, trial order
  core::CampaignReport report;
};

const SerialRun& serial_run() {
  static const SerialRun run = [] {
    const std::string path = testing::TempDir() + "vstack_merge_serial_" +
                             std::to_string(::getpid()) + ".jsonl";
    std::remove(path.c_str());
    const CampaignSetup setup = make_campaign(ctx(), small_spec());
    core::CampaignOptions opts = setup.options;
    opts.manifest_path = path;
    const core::CampaignRunner runner(ctx(), setup.config);
    SerialRun out;
    out.report = runner.run(setup.activities, opts);
    out.manifest_text = slurp(path);
    std::istringstream in(out.manifest_text);
    std::getline(in, out.header);
    std::string line;
    while (std::getline(in, line)) out.lines.push_back(line);
    std::remove(path.c_str());
    return out;
  }();
  return run;
}

/// A fresh job directory with plan.json published for small_spec().
JobPaths fresh_job(const std::string& tag) {
  const std::string dir = testing::TempDir() + "vstack_merge_" + tag + "_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  const JobPaths paths(dir);
  publish_plan(paths, small_spec(), job_config_hash(ctx(), small_spec()));
  return paths;
}

void write_shard(const JobPaths& paths, const std::string& worker,
                 const std::vector<std::string>& lines,
                 const std::string& tail = "") {
  std::ofstream out(paths.shard_manifest(worker), std::ios::binary);
  out << serial_run().header << "\n";
  for (const auto& line : lines) out << line << "\n";
  out << tail;  // optionally a torn fragment, no newline
}

TEST(MergeJobTest, RandomizedSplitsWithDuplicatesAndTornTailsMergeByteIdentical) {
  const SerialRun& serial = serial_run();
  ASSERT_EQ(serial.lines.size(), small_spec().trials);

  for (std::uint64_t trial_seed = 1; trial_seed <= 8; ++trial_seed) {
    std::mt19937_64 rng(trial_seed);
    const JobPaths paths =
        fresh_job("prop" + std::to_string(trial_seed));

    const std::size_t workers = 2 + rng() % 3;  // 2..4 shard files
    std::vector<std::vector<std::string>> assigned(workers);
    for (const std::string& line : serial.lines) {
      assigned[rng() % workers].push_back(line);          // home shard
      if (rng() % 3 == 0) {
        assigned[rng() % workers].push_back(line);        // duplicate commit
      }
    }
    std::size_t torn = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      std::string tail;
      if (rng() % 2 == 0 && !serial.lines.empty()) {
        // A kill -9 mid-append: half of some line, no terminator.
        const std::string& victim = serial.lines[rng() % serial.lines.size()];
        tail = victim.substr(0, victim.size() / 2);
        ++torn;
      }
      write_shard(paths, "w" + std::to_string(w), assigned[w], tail);
    }

    const MergeReport merge = merge_job(ctx(), paths.root);
    EXPECT_TRUE(merge.clean()) << "seed " << trial_seed;
    EXPECT_EQ(merge.committed, serial.lines.size());
    EXPECT_EQ(merge.shard_files, workers);
    EXPECT_EQ(merge.torn_lines, torn) << "seed " << trial_seed;
    // The property: byte-identical to the serial manifest, wall_seconds
    // included, because the merge re-emits the original line bytes.
    EXPECT_EQ(slurp(paths.merged()), serial.manifest_text)
        << "seed " << trial_seed;
    // And the aggregates match the serial report's.
    EXPECT_EQ(merge.report.recovered, serial.report.recovered);
    EXPECT_EQ(merge.report.worst_droop, serial.report.worst_droop);
    EXPECT_EQ(merge.report.config_hash, serial.report.config_hash);
    EXPECT_FALSE(merge.report.cancelled);
    fs::remove_all(paths.root);
  }
}

TEST(MergeJobTest, QuarantinedTrialIsAccountedNotCancelled) {
  const SerialRun& serial = serial_run();
  const JobPaths paths = fresh_job("quarantine");
  std::vector<std::string> lines = serial.lines;
  lines.erase(lines.begin() + 3);  // trial 3 never committed...
  write_shard(paths, "w0", lines);
  // ...because its chunk was quarantined (chunk == trial at chunk=1).
  std::ofstream(paths.quarantine(3)) << "{\"chunk\":3}\n";

  const MergeReport merge = merge_job(ctx(), paths.root);
  EXPECT_FALSE(merge.clean());
  EXPECT_EQ(merge.committed, serial.lines.size() - 1);
  ASSERT_EQ(merge.quarantined_trials.size(), 1u);
  EXPECT_EQ(merge.quarantined_trials[0], 3u);
  EXPECT_TRUE(merge.missing_trials.empty());
  // Quarantine is a terminal verdict, not a truncation.
  EXPECT_FALSE(merge.report.cancelled);
  fs::remove_all(paths.root);
}

TEST(MergeJobTest, UnresolvedTrialIsMissingAndMarksTheReportCancelled) {
  const SerialRun& serial = serial_run();
  const JobPaths paths = fresh_job("missing");
  std::vector<std::string> lines = serial.lines;
  lines.pop_back();  // last trial neither committed nor quarantined
  write_shard(paths, "w0", lines);

  const MergeReport merge = merge_job(ctx(), paths.root);
  EXPECT_FALSE(merge.clean());
  ASSERT_EQ(merge.missing_trials.size(), 1u);
  EXPECT_EQ(merge.missing_trials[0], serial.lines.size() - 1);
  EXPECT_TRUE(merge.report.cancelled);
  fs::remove_all(paths.root);
}

TEST(MergeJobTest, DivergentDuplicateCommitsAreFatal) {
  const SerialRun& serial = serial_run();
  const JobPaths paths = fresh_job("divergent");
  write_shard(paths, "w0", serial.lines);

  // The same trial committed with a DIFFERENT physics result (flip one
  // digit of worst_droop) must abort the merge...
  std::vector<std::string> forged = {serial.lines[0]};
  const auto pos = forged[0].find("\"worst_droop\":");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t digit = forged[0].find_first_of("123456789", pos);
  ASSERT_NE(digit, std::string::npos);
  forged[0][digit] = forged[0][digit] == '1' ? '2' : '1';
  write_shard(paths, "w1", forged);
  EXPECT_THROW(merge_job(ctx(), paths.root), Error);

  // ...while a wall_seconds-only difference is an expected re-execution.
  std::string reran = serial.lines[0];
  const auto wall = reran.find(",\"wall_seconds\":");
  ASSERT_NE(wall, std::string::npos);
  reran = reran.substr(0, wall) + ",\"wall_seconds\":9.5}";
  write_shard(paths, "w1", {reran});
  const MergeReport merge = merge_job(ctx(), paths.root);
  EXPECT_TRUE(merge.clean());
  EXPECT_EQ(merge.duplicates, 1u);
  EXPECT_EQ(slurp(paths.merged()), serial.manifest_text);
  fs::remove_all(paths.root);
}

TEST(MergeJobTest, ShardFromAnotherCampaignIsRefused) {
  const SerialRun& serial = serial_run();
  const JobPaths paths = fresh_job("foreign");
  write_shard(paths, "w0", serial.lines);
  {
    std::ofstream out(paths.shard_manifest("w1"), std::ios::binary);
    out << core::campaign_manifest_header(/*seed=*/999, small_spec().trials,
                                          /*config_hash=*/1)
        << "\n";
  }
  EXPECT_THROW(merge_job(ctx(), paths.root), Error);
  fs::remove_all(paths.root);
}

}  // namespace
}  // namespace vstack::shard
