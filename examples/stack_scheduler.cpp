// Stack-aware scheduling (the paper's Sec. 5.2 conclusion): placing
// instances of the SAME application on the cores of one vertical core-stack
// keeps the layers' currents matched and cuts V-S voltage noise, compared
// to mixing applications arbitrarily across layers.
//
//   $ ./stack_scheduler [samples_per_app]
#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "core/study.h"
#include "power/workload.h"

int main(int argc, char** argv) {
  using namespace vstack;

  const std::size_t trials =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;

  const auto ctx = core::StudyContext::paper_defaults();
  const std::size_t layers = 8;
  const auto cfg = core::make_stacked(ctx, layers, pdn::TsvConfig::few(), 8);
  pdn::PdnModel model(cfg, ctx.layer_floorplan);
  const auto profiles = power::parsec_profiles();
  Rng rng(42);

  std::cout << "Stack-aware scheduling study: 8-layer V-S PDN, 16 core "
               "stacks, PARSEC workloads\n"
            << trials << " random placements per policy\n\n";

  double worst_same = 0.0, worst_mixed = 0.0;
  double sum_same = 0.0, sum_mixed = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    // Policy A: each core-stack runs 8 samples of ONE application.
    std::vector<std::vector<double>> same(layers,
                                          std::vector<double>(16, 0.0));
    for (std::size_t core = 0; core < 16; ++core) {
      const auto& app = profiles[rng.uniform_index(profiles.size())];
      for (std::size_t l = 0; l < layers; ++l) {
        same[l][core] = power::sample_activity(app, rng);
      }
    }
    // Policy B: every core of every layer draws a random application.
    std::vector<std::vector<double>> mixed(layers,
                                           std::vector<double>(16, 0.0));
    for (std::size_t l = 0; l < layers; ++l) {
      for (std::size_t core = 0; core < 16; ++core) {
        const auto& app = profiles[rng.uniform_index(profiles.size())];
        mixed[l][core] = power::sample_activity(app, rng);
      }
    }

    const auto s_same = model.solve(
        model.network().build_loads_per_core(ctx.core_model, same));
    const auto s_mixed = model.solve(
        model.network().build_loads_per_core(ctx.core_model, mixed));
    sum_same += s_same.max_node_deviation_fraction;
    sum_mixed += s_mixed.max_node_deviation_fraction;
    worst_same = std::max(worst_same, s_same.max_node_deviation_fraction);
    worst_mixed = std::max(worst_mixed, s_mixed.max_node_deviation_fraction);
  }

  TextTable t({"Scheduling policy", "Mean max noise", "Worst max noise"});
  t.add_row({"same app per core-stack",
             TextTable::percent(sum_same / trials, 2),
             TextTable::percent(worst_same, 2)});
  t.add_row({"random mixing across layers",
             TextTable::percent(sum_mixed / trials, 2),
             TextTable::percent(worst_mixed, 2)});
  t.print(std::cout);

  std::cout << "\nSamples from one application vary far less than samples "
               "across applications\n(Fig. 7), so stack-aligned scheduling "
               "keeps the converters lightly loaded.\n";
  return 0;
}
