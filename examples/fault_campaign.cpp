// Fault campaign: rank the conductors of a voltage-stacked PDN by EM
// failure probability, then knock them out one at a time (N-1) and with a
// seeded Monte Carlo N-k campaign, and report what survives.
//
//   $ ./fault_campaign [layers] [grid]
//
// Every case runs through the la::Solver degradation ladder -- damaged
// networks never throw; they come back Survivable, Degraded, or Infeasible
// with a structured diagnostic (see docs/fault_model.md).
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/contingency.h"
#include "power/workload.h"

namespace {

const char* outcome_name(vstack::core::CaseOutcome outcome) {
  using vstack::core::CaseOutcome;
  switch (outcome) {
    case CaseOutcome::Survivable: return "survivable";
    case CaseOutcome::Degraded:   return "DEGRADED";
    case CaseOutcome::Infeasible: return "INFEASIBLE";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vstack;

  const std::size_t layers =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const std::size_t grid =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 16;

  const auto ctx = core::StudyContext::paper_defaults();
  auto cfg = core::make_stacked(ctx, layers, pdn::TsvConfig::few(),
                                /*converters_per_core=*/8);
  cfg.grid_nx = cfg.grid_ny = grid;

  const auto acts = power::interleaved_layer_activities(layers, 0.5);
  const core::ContingencyEngine engine(ctx, cfg);

  // --- 1. Deterministic N-1 over the top EM risks. ----------------------
  core::ContingencyOptions opts;
  opts.top_k = 6;
  const auto n1 = engine.run_n_minus_1(acts, opts);

  std::cout << layers << "-layer voltage-stacked PDN, " << grid << "x" << grid
            << " grid; baseline noise "
            << TextTable::percent(n1.base_max_node_deviation_fraction, 2)
            << "\n\nN-1 sweep over the top " << opts.top_k
            << " EM risks:\n";
  TextTable t({"Case", "P(fail)", "Outcome", "Noise", "Attempts"});
  for (std::size_t k = 0; k < n1.cases.size(); ++k) {
    const auto& c = n1.cases[k];
    t.add_row({c.label, TextTable::num(n1.ranking[k].failure_probability, 4),
               outcome_name(c.outcome),
               c.solved ? TextTable::percent(c.max_node_deviation_fraction, 2)
                        : "-",
               std::to_string(c.solve_attempts)});
  }
  t.print(std::cout);

  // --- 2. Seeded Monte Carlo N-k with converter + leakage faults. -------
  core::ContingencyOptions mc;
  mc.trials = 12;
  mc.faults_per_trial = 2;
  mc.converter_faults_per_trial = 1;
  mc.leakage_faults_per_trial = 1;
  mc.seed = 2015;  // DAC'15 -- any seed reproduces bit-identically
  const auto nk = engine.run_monte_carlo(acts, mc);

  std::cout << "\nMonte Carlo N-k (" << mc.trials << " trials, seed "
            << mc.seed << "):\n";
  TextTable m({"Trial", "Faults", "Outcome", "Noise"});
  for (const auto& c : nk.cases) {
    m.add_row({c.label, std::to_string(c.faults.size()),
               outcome_name(c.outcome),
               c.solved ? TextTable::percent(c.max_node_deviation_fraction, 2)
                        : "-"});
  }
  m.print(std::cout);

  std::cout << "\nsummary: " << nk.survivable << " survivable, "
            << nk.degraded << " degraded, " << nk.infeasible
            << " infeasible; worst post-fault noise "
            << TextTable::percent(nk.worst_post_fault_deviation, 2) << "\n";
  return 0;
}
