// Thermal feasibility of many-layer stacks (the paper's Sec. 4.1 setup
// step): with conventional air cooling, how many 7.6 W processor layers can
// be stacked before the hotspot crosses 100 C?
//
//   $ ./thermal_feasibility [sink_resistance_K_per_W]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "floorplan/floorplan.h"
#include "floorplan/power_map.h"
#include "power/core_power_model.h"
#include "thermal/thermal_grid.h"

int main(int argc, char** argv) {
  using namespace vstack;

  thermal::ThermalConfig cfg;
  if (argc > 1) cfg.sink_resistance = std::atof(argv[1]);

  const auto model = power::CorePowerModel::cortex_a9_like();
  const auto fp = floorplan::paper_layer_floorplan();
  const auto layer_map = floorplan::layer_power_map(
      fp, model, std::vector<double>(16, 1.0), cfg.nx, cfg.ny);

  std::cout << "Thermal feasibility: 16-core 7.6 W layers, air-cooled sink "
            << cfg.sink_resistance << " K/W, ambient "
            << cfg.ambient_celsius << " C\n\n";

  TextTable t({"Layers", "Hotspot (C)", "Mean (C)", "Hottest layer",
               "< 100 C?"});
  std::vector<floorplan::GridMap> stack;
  for (std::size_t layers = 1; layers <= 12; ++layers) {
    stack.push_back(layer_map);
    const auto r = thermal::solve_stack_temperature(cfg, fp.width, fp.height,
                                                    stack);
    t.add_row({std::to_string(layers), TextTable::num(r.max_celsius, 1),
               TextTable::num(r.mean_celsius, 1),
               std::to_string(r.hottest_layer),
               r.max_celsius < 100.0 ? "yes" : "NO"});
  }
  t.print(std::cout);

  const std::size_t feasible = thermal::max_feasible_layers(
      cfg, fp.width, fp.height, layer_map, 100.0, 16);
  std::cout << "\nMaximum feasible stack: " << feasible
            << " layers (paper Sec. 4.1: up to 8 layers below 100 C with "
               "conventional air cooling).\n";
  return 0;
}
