// SC converter design explorer: sweep switching frequency and capacitor
// technology for the 2:1 push-pull cell, check the compact model against
// the switch-level simulator at the chosen point, and report the design's
// area/efficiency envelope.
//
//   $ ./sc_designer [load_mA]
#include <cstdlib>
#include <iostream>

#include "circuit/sc_testbench.h"
#include "common/table.h"
#include "sc/area.h"
#include "sc/compact_model.h"

int main(int argc, char** argv) {
  using namespace vstack;

  const double load = (argc > 1 ? std::atof(argv[1]) : 60.0) * 1e-3;

  std::cout << "SC converter designer -- 2:1 push-pull, 8 nF fly caps, "
               "4-way interleaved, load "
            << load * 1e3 << " mA\n\n";

  // Frequency sweep with the compact model.
  TextTable f({"f_sw (MHz)", "R_SSL (Ohm)", "R_SERIES (Ohm)", "Vdrop (mV)",
               "Efficiency"});
  for (const double mhz : {12.5, 25.0, 50.0, 100.0, 200.0}) {
    sc::ScConverterDesign d;
    d.nominal_switching_frequency = mhz * 1e6;
    const sc::ScCompactModel model(d);
    const auto op = model.evaluate(2.0, 0.0, load);
    f.add_row({TextTable::num(mhz, 1), TextTable::num(op.r_ssl, 3),
               TextTable::num(op.r_series, 3),
               TextTable::num(op.voltage_drop * 1e3, 1),
               TextTable::percent(op.efficiency, 1)});
  }
  f.print(std::cout);
  std::cout << "\n";

  // Area by capacitor technology.
  TextTable a({"Capacitor tech", "Area (mm^2)"});
  sc::ScConverterDesign d;
  for (const auto& tech : sc::standard_capacitor_technologies()) {
    a.add_row({tech.name,
               TextTable::num(sc::converter_area(d, tech) / 1e-6, 3)});
  }
  a.print(std::cout);

  // Cross-check the 50 MHz point against the switch-level simulator.
  const sc::ScCompactModel model(d);
  const auto op = model.evaluate(2.0, 0.0, load);
  circuit::ScTestbenchConfig tb;
  tb.load_current = load;
  const auto sim = circuit::simulate_push_pull_sc(tb);
  std::cout << "\nSwitch-level cross-check @50 MHz: model "
            << TextTable::percent(op.efficiency, 1) << " / "
            << TextTable::num(op.voltage_drop * 1e3, 1) << " mV, simulation "
            << TextTable::percent(sim.efficiency, 1) << " / "
            << TextTable::num(sim.voltage_drop * 1e3, 1) << " mV (ripple "
            << TextTable::num(sim.output_ripple * 1e3, 2) << " mV)\n";
  return 0;
}
