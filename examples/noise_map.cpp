// Visual inspection of where the noise and heat actually sit: renders the
// worst layer's droop map, the chip power map, and the hottest layer's
// temperature field as ASCII heatmaps.
//
//   $ ./noise_map [stacked|regular] [imbalance%]
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/study.h"
#include "floorplan/heatmap.h"
#include "power/workload.h"
#include "thermal/thermal_grid.h"

int main(int argc, char** argv) {
  using namespace vstack;

  const bool stacked = !(argc > 1 && std::strcmp(argv[1], "regular") == 0);
  const double imbalance = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.5;

  auto ctx = core::StudyContext::paper_defaults();
  const std::size_t layers = 8;
  const auto cfg = stacked
                       ? core::make_stacked(ctx, layers, ctx.base.tsv, 8)
                       : core::make_regular(ctx, layers, ctx.base.tsv, 0.25);
  pdn::PdnModel model(cfg, ctx.layer_floorplan);
  const auto acts = power::interleaved_layer_activities(layers, imbalance);
  const auto sol = model.solve_activities(ctx.core_model, acts);

  // Find the worst layer by droop magnitude.
  std::size_t worst_layer = 0;
  double worst = -1.0;
  for (std::size_t l = 0; l < layers; ++l) {
    for (const double d : sol.layer_droop[l].values) {
      if (std::abs(d) > worst) {
        worst = std::abs(d);
        worst_layer = l;
      }
    }
  }

  std::cout << (stacked ? "Voltage-stacked" : "Regular") << " PDN, "
            << layers << " layers, " << imbalance * 100
            << "% interleaved imbalance\n";
  std::cout << "\nSupply droop map, layer " << worst_layer
            << " (worst layer; max noise "
            << sol.max_node_deviation_fraction * 100 << "% Vdd):\n";
  floorplan::HeatmapOptions droop_opts;
  droop_opts.legend_scale = 1e3;
  droop_opts.legend_unit = "mV";
  floorplan::render_heatmap(sol.layer_droop[worst_layer], std::cout,
                            droop_opts);

  std::cout << "\nLayer power map (active layer, full activity):\n";
  const auto power_map = floorplan::layer_power_map(
      ctx.layer_floorplan, ctx.core_model, std::vector<double>(16, 1.0), 32,
      32);
  floorplan::HeatmapOptions power_opts;
  power_opts.legend_unit = "W/cell";
  floorplan::render_heatmap(power_map, std::cout, power_opts);

  // Thermal field of the full stack.
  thermal::ThermalConfig tcfg;
  std::vector<floorplan::GridMap> maps;
  for (std::size_t l = 0; l < layers; ++l) {
    maps.push_back(floorplan::layer_power_map(
        ctx.layer_floorplan, ctx.core_model,
        std::vector<double>(16, acts[l]), tcfg.nx, tcfg.ny));
  }
  const auto thermal = thermal::solve_stack_temperature(
      tcfg, ctx.layer_floorplan.width, ctx.layer_floorplan.height, maps);
  std::cout << "\nTemperature map, layer " << thermal.hottest_layer
            << " (hottest; " << thermal.max_celsius << " C peak):\n";
  floorplan::HeatmapOptions t_opts;
  t_opts.legend_unit = "C";
  floorplan::render_heatmap(
      thermal.layer_temperature[thermal.hottest_layer], std::cout, t_opts);
  return 0;
}
