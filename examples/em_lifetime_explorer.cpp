// EM lifetime explorer: sweep layer count and TSV/C4 allocations for either
// topology and print the resulting array lifetimes and hot-conductor
// currents -- the tool a PDN architect would use to budget pads and TSVs.
//
//   $ ./em_lifetime_explorer [regular|stacked] [max_layers]
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.h"
#include "core/study.h"

namespace {

double max_of(const std::vector<double>& xs) {
  double m = 0.0;
  for (double x : xs) m = std::max(m, x);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vstack;

  const bool stacked = !(argc > 1 && std::strcmp(argv[1], "regular") == 0);
  const std::size_t max_layers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;

  const auto ctx = core::StudyContext::paper_defaults();
  std::cout << "EM lifetime explorer -- "
            << (stacked ? "voltage-stacked" : "regular") << " PDN, "
            << "16-core layers, full activity\n\n";

  // Normalize to the 2-layer design of the chosen topology.
  const auto base_cfg =
      stacked ? core::make_stacked(ctx, 2, pdn::TsvConfig::few(), 8)
              : core::make_regular(ctx, 2, pdn::TsvConfig::few(), 0.25);
  const auto base =
      core::evaluate_scenario(ctx, base_cfg, std::vector<double>(2, 1.0));

  TextTable t({"Layers", "TSV config", "TSV MTTF (norm)", "hot TSV (mA)",
               "C4 MTTF (norm)", "hot pad (mA)", "noise (%Vdd)"});
  for (std::size_t layers = 2; layers <= max_layers; layers += 2) {
    for (const auto& tsv : pdn::TsvConfig::paper_configs()) {
      const auto cfg =
          stacked ? core::make_stacked(ctx, layers, tsv, 8)
                  : core::make_regular(ctx, layers, tsv, 0.25);
      const auto r = core::evaluate_scenario(
          ctx, cfg, std::vector<double>(layers, 1.0));
      t.add_row({std::to_string(layers), tsv.name,
                 TextTable::num(r.tsv_mttf / base.tsv_mttf, 3),
                 TextTable::num(max_of(r.solution.tsv_currents) * 1e3, 1),
                 TextTable::num(r.c4_mttf / base.c4_mttf, 3),
                 TextTable::num(max_of(r.solution.c4_pad_currents) * 1e3, 1),
                 TextTable::percent(
                     r.solution.max_node_deviation_fraction, 2)});
    }
  }
  t.print(std::cout);

  std::cout << "\nTip: rerun with '"
            << (stacked ? "regular" : "stacked")
            << "' as the first argument to compare topologies.\n";
  return 0;
}
