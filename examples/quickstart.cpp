// Quickstart: compare a regular and a voltage-stacked PDN for a 4-layer
// 3D processor in ~40 lines of API use.
//
//   $ ./quickstart [layers]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "core/study.h"

int main(int argc, char** argv) {
  using namespace vstack;

  const std::size_t layers =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;

  // 1. The study context bundles the processor model (16-core Cortex-A9
  //    layer), the EM model, and the paper's default parameters.
  const auto ctx = core::StudyContext::paper_defaults();

  // 2. Describe the two competing designs.
  const auto regular =
      core::make_regular(ctx, layers, pdn::TsvConfig::few(), 0.25);
  const auto stacked = core::make_stacked(ctx, layers, pdn::TsvConfig::few(),
                                          /*converters_per_core=*/8);

  // 3. Evaluate both at full activity (IR drop, per-conductor currents,
  //    EM-damage-free lifetime of the C4 and TSV arrays).
  const std::vector<double> full(layers, 1.0);
  const auto r = core::evaluate_scenario(ctx, regular, full);
  const auto v = core::evaluate_scenario(ctx, stacked, full);

  std::cout << "vstack quickstart: " << layers << "-layer, 16-core/layer 3D "
            << "processor (7.6 W per layer)\n\n";

  TextTable t({"Metric", "Regular PDN", "Voltage-Stacked PDN"});
  t.add_row({"off-chip supply",
             TextTable::num(r.solution.supply_voltage, 0) + " V",
             TextTable::num(v.solution.supply_voltage, 0) + " V"});
  t.add_row({"off-chip current",
             TextTable::num(r.solution.supply_current, 1) + " A",
             TextTable::num(v.solution.supply_current, 1) + " A"});
  t.add_row({"max voltage noise",
             TextTable::percent(r.solution.max_node_deviation_fraction, 2),
             TextTable::percent(v.solution.max_node_deviation_fraction, 2)});
  t.add_row({"TSV array EM lifetime (norm.)", TextTable::num(1.0, 2),
             TextTable::num(v.tsv_mttf / r.tsv_mttf, 2) + "x"});
  t.add_row({"C4 array EM lifetime (norm.)", TextTable::num(1.0, 2),
             TextTable::num(v.c4_mttf / r.c4_mttf, 2) + "x"});
  t.print(std::cout);

  std::cout << "\nCharge recycling at work: the stack draws one layer's "
               "worth of current\nat "
            << layers << "x the voltage, instead of " << layers
            << " layers' worth at 1 V.\n";
  return 0;
}
