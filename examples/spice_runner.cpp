// Run a SPICE-subset netlist through the transient engine.
//
//   $ ./spice_runner circuit.sp          # run a file
//   $ ./spice_runner                     # run the built-in demo (a 2:1
//                                        # switched-capacitor halver)
#include <fstream>
#include <iostream>
#include <sstream>

#include "circuit/spice_parser.h"
#include "common/table.h"

namespace {

constexpr const char* kDemoNetlist = R"(.title built-in 2:1 SC halver demo
* One push-pull cell: C1/C2 swap between the upper and lower positions.
V1 vtop 0 2.0
C1 c1t c1b 2n IC=1.0
C2 c2t c2b 2n IC=1.0
Cout vout 0 1n IC=1.0
S1 c1t vtop 0.45 1g PHASE=0.0 DUTY=0.48
S2 c1b vout 0.45 1g PHASE=0.0 DUTY=0.48
S3 c2t vout 0.45 1g PHASE=0.0 DUTY=0.48
S4 c2b 0    0.45 1g PHASE=0.0 DUTY=0.48
S5 c1t vout 0.45 1g PHASE=0.5 DUTY=0.48
S6 c1b 0    0.45 1g PHASE=0.5 DUTY=0.48
S7 c2t vtop 0.45 1g PHASE=0.5 DUTY=0.48
S8 c2b vout 0.45 1g PHASE=0.5 DUTY=0.48
Iload vout 0 50m
.clock 20n
.tran 0.3125n 2u
.end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace vstack;
  using namespace vstack::circuit;

  std::string text;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  } else {
    text = kDemoNetlist;
  }

  const ParsedCircuit circuit =
      parse_spice(text, argc > 1 ? argv[1] : "<demo>");
  std::cout << "Parsed: " << (circuit.title.empty() ? "(untitled)"
                                                    : circuit.title)
            << " -- " << circuit.netlist.node_count() - 1 << " nodes, "
            << circuit.netlist.resistors().size() << " R, "
            << circuit.netlist.capacitors().size() << " C, "
            << circuit.netlist.switches().size() << " S, "
            << circuit.netlist.voltage_sources().size() << " V, "
            << circuit.netlist.current_sources().size() << " I\n";

  if (!circuit.has_tran) {
    std::cout << "No .tran card; running DC operating point.\n";
    TransientSimulator sim(circuit.netlist, circuit.clock_period);
    const auto dc = dc_solve(circuit.netlist, sim.switch_states(0.0));
    TextTable t({"Node", "Voltage (V)"});
    for (const auto& [name, node] : circuit.node_by_name) {
      t.add_row({name, TextTable::num(dc.node_voltages[node], 4)});
    }
    t.print(std::cout);
    return 0;
  }

  TransientSimulator sim(circuit.netlist, circuit.clock_period);
  const auto result = sim.run(circuit.tran);
  std::cout << "Transient: " << result.report.summary() << "\n";
  if (!result.ok()) {
    std::cerr << "warning: waveform truncated; statistics below cover the "
                 "simulated prefix only\n";
  }
  const double span = result.ok() ? circuit.tran.stop_time
                                  : result.report.end_time;
  const double settle = 0.75 * span;

  TextTable t({"Node", "Avg (V)", "Min (V)", "Max (V)"});
  for (const auto& [name, node] : circuit.node_by_name) {
    t.add_row({name,
               TextTable::num(result.average_node_voltage(node, settle), 4),
               TextTable::num(result.min_node_voltage(node, settle), 4),
               TextTable::num(result.max_node_voltage(node, settle), 4)});
  }
  t.print(std::cout);
  std::cout << "(statistics over the last quarter of the "
            << circuit.tran.stop_time * 1e6 << " us run)\n";
  return 0;
}
