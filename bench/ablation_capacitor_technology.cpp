// Ablation: capacitor technology vs the iso-area design pairing.
//
// The Fig. 6 comparison hinges on one converter costing ~3% of a core with
// high-density capacitors.  This bench recomputes the converters-per-core
// budget that matches the regular PDN's Dense-TSV area for each capacitor
// technology.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/study.h"
#include "sc/area.h"

int main() {
  const vstack::bench::BenchReport bench_report("ablation_capacitor_technology");
  using namespace vstack;

  bench::print_header("Ablation",
                      "Capacitor technology vs iso-area converter budget");
  const auto ctx = core::StudyContext::paper_defaults();
  const double dense_overhead =
      ctx.regular_area_overhead(pdn::TsvConfig::dense());
  const double few_overhead = ctx.regular_area_overhead(pdn::TsvConfig::few());

  TextTable t({"Capacitor Tech", "Converter Area (mm^2)", "Area/Core",
               "Converters matching Dense-TSV area"});
  for (const auto& tech : sc::standard_capacitor_technologies()) {
    const double area = sc::converter_area(ctx.base.converter, tech);
    const double frac = area / ctx.core_model.area();
    const double budget = (dense_overhead - few_overhead) / frac;
    t.add_row({tech.name, TextTable::num(area / 1e-6, 3),
               TextTable::percent(frac, 1),
               TextTable::num(std::floor(budget), 0)});
  }
  t.print(std::cout);

  bench::print_note("regular Dense-TSV overhead: " +
                    TextTable::percent(dense_overhead, 1) +
                    "; V-S Few-TSV overhead: " +
                    TextTable::percent(few_overhead, 1));
  bench::print_note("with MIM capacitors the iso-area budget collapses to "
                    "one converter per core; high-density capacitors enable "
                    "the paper's 8-converter design point");
  return 0;
}
