// Regenerates the paper's Table 2: TSV configurations and area overheads.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/study.h"

int main() {
  const vstack::bench::BenchReport bench_report("table2_tsv_configs");
  using namespace vstack;
  using namespace vstack::units;

  bench::print_header("Table 2", "TSV configurations used in this study");
  const auto ctx = core::StudyContext::paper_defaults();
  const double core_area = ctx.core_model.area();

  TextTable t({"Config", "Effective Pitch (um)", "TSVs per Core",
               "Total Area Overhead"});
  for (const auto& cfg : pdn::TsvConfig::paper_configs()) {
    t.add_row({cfg.name, TextTable::num(cfg.effective_pitch / um, 0),
               std::to_string(cfg.tsvs_per_core),
               TextTable::percent(
                   cfg.area_overhead(ctx.base.params, core_area), 1)});
  }
  t.print(std::cout);

  bench::print_note("paper reports 24.2% / 6.1% / 0.4%; pure keep-out-zone "
                    "accounting over the 2.757 mm^2 core tile gives the "
                    "values above");
  return 0;
}
