// Extension: is voltage stacking suited to memory-on-logic stacks?
//
// The paper cites the Micron Hybrid Memory Cube as precedent for 4-8 layer
// stacks.  An HMC-like stack is chronically IMBALANCED: one 7.6 W logic
// layer under N-1 ~1.5 W DRAM layers.  Unlike the paper's homogeneous
// processor stack, the converters here carry a large DC mismatch at all
// times -- this bench quantifies what that does to noise, efficiency, and
// the EM story.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/study.h"
#include "sc/ladder.h"

int main() {
  const vstack::bench::BenchReport bench_report("hmc_stack");
  using namespace vstack;

  bench::print_header("Extension",
                      "Memory-on-logic (HMC-like) stacks: logic layer 0 + "
                      "DRAM layers above");
  auto ctx = core::StudyContext::paper_defaults();
  ctx.base.grid_nx = ctx.base.grid_ny = 16;

  const auto logic = power::CorePowerModel::cortex_a9_like();
  const auto dram = power::CorePowerModel::dram_like();
  const auto logic_fp = floorplan::make_layer_floorplan(logic, 4, 4);
  const auto dram_fp = floorplan::make_layer_floorplan(dram, 4, 4);

  TextTable t({"Layers", "Topology", "Supply", "Noise", "Max conv (mA)",
               "Efficiency"});
  for (const std::size_t layers : {2u, 4u, 8u}) {
    std::vector<const power::CorePowerModel*> models{&logic};
    std::vector<const floorplan::Floorplan*> fps{&logic_fp};
    std::vector<double> acts(layers, 1.0);
    std::vector<double> layer_currents{16.0 * logic.total_power(1.0)};
    for (std::size_t l = 1; l < layers; ++l) {
      models.push_back(&dram);
      fps.push_back(&dram_fp);
      layer_currents.push_back(16.0 * dram.total_power(1.0));
    }

    for (const bool stacked : {false, true}) {
      auto cfg = stacked
                     ? core::make_stacked(ctx, layers, ctx.base.tsv, 8)
                     : core::make_regular(ctx, layers, ctx.base.tsv, 0.25);
      pdn::PdnModel model(cfg, ctx.layer_floorplan);
      const auto loads =
          model.network().build_loads_layered(models, fps, acts);
      const auto sol = model.solve(loads);

      std::string eff = "-";
      if (stacked) {
        sc::LadderStackDesign design;
        design.layer_count = layers;
        design.converters_per_level = 8 * 16;
        design.converter = ctx.base.converter;
        const auto breakdown =
            sc::evaluate_ladder_power(design, layer_currents, 1.0);
        eff = TextTable::percent(breakdown.efficiency, 1);
        if (!breakdown.within_current_limits) eff += " (!)";
      } else {
        eff = TextTable::percent(sol.resistive_efficiency, 1);
      }
      t.add_row({std::to_string(layers), stacked ? "V-S" : "Regular",
                 TextTable::num(sol.supply_voltage, 0) + " V / " +
                     TextTable::num(sol.supply_current, 1) + " A",
                 TextTable::percent(sol.max_node_deviation_fraction, 2),
                 stacked
                     ? TextTable::num(sol.max_converter_current * 1e3, 1) +
                           (sol.converter_limit_ok ? "" : " (!)")
                     : "-",
                 eff});
    }
  }
  t.print(std::cout);

  bench::print_note("the logic/DRAM power gap (7.6 W vs ~1.5 W) is a "
                    "PERMANENT imbalance: V-S converters carry large DC "
                    "current continuously, unlike the paper's homogeneous "
                    "stack where mismatch is workload-transient -- "
                    "homogeneous core stacks are V-S's sweet spot, "
                    "memory-on-logic is not ('(!)' = converter limit)");
  return 0;
}
