// Regenerates the paper's Fig. 7: box-plot statistics of per-sample core
// power for each PARSEC 2.0 application (1000 samples of 2k cycles each),
// plus each application's maximum workload-imbalance ratio.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/sweeps.h"

int main() {
  const vstack::bench::BenchReport bench_report("fig7_workload_imbalance");
  using namespace vstack;

  bench::print_header("Fig 7",
                      "Per-application power distribution (box-plot stats) "
                      "and max workload imbalance");
  const auto ctx = core::StudyContext::paper_defaults();
  const auto campaign =
      core::run_fig7(ctx, power::kPaperSampleCount, /*seed=*/2015);

  TextTable t({"Application", "Min (W)", "P25 (W)", "Median (W)", "P75 (W)",
               "Max (W)", "Max Imbalance"});
  for (const auto& app : campaign) {
    t.add_row({app.name, TextTable::num(app.power.min, 3),
               TextTable::num(app.power.p25, 3),
               TextTable::num(app.power.median, 3),
               TextTable::num(app.power.p75, 3),
               TextTable::num(app.power.max, 3),
               TextTable::percent(app.max_imbalance, 1)});
  }
  t.print(std::cout);

  bench::print_note("mean of per-application maximum imbalance: " +
                    TextTable::percent(power::mean_max_imbalance(campaign), 1) +
                    " (paper: 65%)");
  bench::print_note("best-case application (blackscholes) stays near 10% "
                    "imbalance; the worst exceeds 90% (paper Sec. 5.2)");
  bench::print_note("activity distributions are synthetic, calibrated to "
                    "the paper's reported statistics (no gem5 traces "
                    "available); see DESIGN.md");
  return 0;
}
