// Regenerates the paper's Fig. 6: maximum on-chip voltage noise (%Vdd) of
// the 8-layer processor versus workload imbalance, for V-S PDNs with
// 2/4/6/8 converters per core (Few TSV) and regular-PDN reference lines
// (Dense/Sparse/Few TSV, worst case all-layers-active).  Points where a
// converter would exceed its 100 mA limit are skipped, as in the paper.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/sweeps.h"

int main() {
  const vstack::bench::BenchReport bench_report("fig6_ir_drop");
  using namespace vstack;

  bench::print_header("Fig 6",
                      "Maximum on-chip voltage noise (%Vdd), 8-layer stack");
  auto ctx = core::StudyContext::paper_defaults();

  std::vector<double> imbalances;
  for (int x = 0; x <= 100; x += 10) imbalances.push_back(x / 100.0);
  const auto result = core::run_fig6(ctx, 8, {2, 4, 6, 8}, imbalances);

  TextTable t({"Imbalance", "V-S 2/core", "V-S 4/core", "V-S 6/core",
               "V-S 8/core"});
  for (const auto& row : result.rows) {
    std::vector<std::string> cells{TextTable::percent(row.imbalance, 0)};
    for (const auto& v : row.vs_noise) {
      cells.push_back(
          bench::opt_cell(v.has_value(),
                          v ? TextTable::percent(*v, 2) : ""));
    }
    t.add_row(std::move(cells));
  }
  t.print(std::cout);

  bench::print_note("regular-PDN references (worst case, all layers active):");
  bench::print_note("  Dense TSV: " + TextTable::percent(result.reg_dense, 2) +
                    "   Sparse TSV: " +
                    TextTable::percent(result.reg_sparse, 2) +
                    "   Few TSV: " + TextTable::percent(result.reg_few, 2));
  bench::print_note("'-' marks points where the per-converter load exceeds "
                    "the 100 mA limit (skipped in the paper's figure)");
  bench::print_note("iso-area comparison: V-S 8 conv/core + Few TSV vs "
                    "regular Dense TSV; the paper reports a ~50% crossover "
                    "and a 0.75% Vdd penalty at the 65% mean imbalance");
  return 0;
}
