// Ablation: closed-loop converter control (the paper's future work).
//
// Closed-loop frequency modulation scales f_sw with the per-converter load,
// cutting switching parasitics at light load.  This bench reruns the Fig. 8
// efficiency sweep with closed-loop converters and compares.
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/table.h"
#include "core/study.h"

int main() {
  const vstack::bench::BenchReport bench_report("ablation_closed_loop");
  using namespace vstack;

  bench::print_header("Ablation",
                      "Open-loop vs closed-loop control: system efficiency, "
                      "8-layer stack, 8 conv/core");
  auto open_ctx = core::StudyContext::paper_defaults();
  auto closed_ctx = open_ctx;
  closed_ctx.base.converter.control = sc::ControlPolicy::ClosedLoop;

  TextTable t({"Imbalance", "Open-loop", "Closed-loop", "Gain"});
  for (int x = 10; x <= 100; x += 10) {
    const double imb = x / 100.0;
    const auto e_open = core::stacked_efficiency(open_ctx, 8, 8, imb);
    const auto e_closed = core::stacked_efficiency(closed_ctx, 8, 8, imb);
    std::string gain = "+";
    gain += TextTable::num(
        (e_closed.efficiency - e_open.efficiency) * 100.0, 1);
    gain += " pp";
    t.add_row({TextTable::percent(imb, 0),
               TextTable::percent(e_open.efficiency, 1),
               TextTable::percent(e_closed.efficiency, 1), std::move(gain)});
  }
  t.print(std::cout);

  bench::print_note("closed-loop control recovers the efficiency lost to "
                    "fixed-frequency switching at light differential load "
                    "-- the effect the paper leaves as future work");
  return 0;
}
