// Regenerates the paper's Fig. 3: SC converter compact-model validation
// against detailed simulation.
//
// The "simulation" columns come from this repository's switch-level
// transient simulator (src/circuit), standing in for the authors' 28 nm
// Spectre testbench; the "model" columns come from the Seeman-methodology
// compact model (src/sc).  Fig. 3a uses closed-loop frequency modulation,
// Fig. 3b open-loop at 50 MHz.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "circuit/sc_testbench.h"
#include "common/table.h"
#include "sc/compact_model.h"

namespace {

using namespace vstack;

sc::ScConverterDesign model_design(sc::ControlPolicy policy) {
  sc::ScConverterDesign d;  // defaults mirror the testbench circuit
  d.control = policy;
  return d;
}

circuit::ScTestbenchConfig testbench_config(double load, double fsw) {
  circuit::ScTestbenchConfig cfg;
  cfg.load_current = load;
  cfg.switching_frequency = fsw;
  return cfg;
}

void run_policy(sc::ControlPolicy policy, const std::vector<double>& loads_ma,
                const char* figure, const char* title) {
  bench::print_header(figure, title);
  const sc::ScCompactModel model(model_design(policy));

  TextTable t({"Load (mA)", "Eff model (%)", "Eff sim (%)",
               "Vdrop model (mV)", "Vdrop sim (mV)", "f_sw (MHz)"});
  for (const double ma : loads_ma) {
    const double load = ma * 1e-3;
    const auto op = model.evaluate(2.0, 0.0, load);

    circuit::ScSimulationOptions sim_opts;
    sim_opts.settle_periods = 80;
    sim_opts.measure_periods = 20;
    const auto sim = circuit::simulate_push_pull_sc(
        testbench_config(load, op.switching_frequency), sim_opts);
    if (!sim.ok()) {
      std::cerr << "transient engine trouble at " << ma
                << " mA: " << sim.transient.summary() << "\n";
    }

    t.add_row({TextTable::num(ma, 1),
               TextTable::num(op.efficiency * 100.0, 1),
               TextTable::num(sim.efficiency * 100.0, 1),
               TextTable::num(op.voltage_drop * 1e3, 1),
               TextTable::num(sim.voltage_drop * 1e3, 1),
               TextTable::num(op.switching_frequency / 1e6, 1)});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  const vstack::bench::BenchReport bench_report("fig3_sc_validation");
  run_policy(vstack::sc::ControlPolicy::ClosedLoop,
             {1.6, 3.1, 6.3, 12.5, 25.0, 50.0, 100.0}, "Fig 3a",
             "SC model validation, closed-loop control (efficiency vs load)");
  vstack::bench::print_note(
      "paper Fig. 3a: closed-loop efficiency stays high (~85-95%) across "
      "the 1.6-100 mA range; model tracks simulation");

  run_policy(vstack::sc::ControlPolicy::OpenLoop,
             {10, 20, 30, 40, 50, 60, 70, 80, 90}, "Fig 3b",
             "SC model validation, open-loop control (efficiency + Vdrop)");
  vstack::bench::print_note(
      "paper Fig. 3b: open-loop efficiency climbs ~55% -> ~85% with load; "
      "output drop grows linearly at ~0.6 Ohm (55-60 mV at 90 mA)");
  return 0;
}
