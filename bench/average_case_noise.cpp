// Extension: average-case voltage noise under PARSEC workloads.
//
// The paper's abstract claims V-S costs "only marginally increasing the
// average-case voltage noise (e.g., 0.75% Vdd IR drop)".  Fig. 6 reports
// the interleaved worst case; this bench samples the actual noise
// DISTRIBUTION under per-core PARSEC draws, for both scheduling policies,
// and compares it with the regular PDN's worst-case lines.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/workload_noise.h"

int main() {
  const vstack::bench::BenchReport bench_report("average_case_noise");
  using namespace vstack;

  bench::print_header("Extension",
                      "Average-case V-S noise under PARSEC workloads "
                      "(8 layers, 8 conv/core, 200 samples)");
  auto ctx = core::StudyContext::paper_defaults();
  ctx.base.grid_nx = ctx.base.grid_ny = 16;  // 200 solves
  const auto cfg = core::make_stacked(ctx, 8, ctx.base.tsv, 8);

  TextTable t({"Scheduling", "Mean", "Median", "P75", "Max",
               "Limit violations"});
  for (const auto policy : {core::SchedulingPolicy::SameAppPerStack,
                            core::SchedulingPolicy::RandomMix}) {
    const auto r = core::sample_noise_distribution(ctx, cfg, policy,
                                                   /*samples=*/200,
                                                   /*seed=*/2015);
    t.add_row({policy == core::SchedulingPolicy::SameAppPerStack
                   ? "same app per stack"
                   : "random mix",
               TextTable::percent(r.mean_noise, 2),
               TextTable::percent(r.noise.median, 2),
               TextTable::percent(r.noise.p75, 2),
               TextTable::percent(r.noise.max, 2),
               std::to_string(r.limit_violations)});
  }
  t.print(std::cout);

  // Regular worst case for comparison.
  const auto reg = core::evaluate_scenario(
      ctx, core::make_regular(ctx, 8, pdn::TsvConfig::dense(), 0.25),
      std::vector<double>(8, 1.0));
  bench::print_note(
      "regular (Dense TSV) worst-case noise: " +
      TextTable::percent(reg.solution.max_node_deviation_fraction, 2));
  bench::print_note("the paper's abstract-level claim: under real workload "
                    "statistics the V-S penalty over a regular PDN is small "
                    "(0.75% Vdd in the paper); stack-aware scheduling "
                    "shrinks it further");
  return 0;
}
