// Extension: the full cross-layer design-space exploration the paper's
// introduction motivates -- every TSV topology x pad fraction x converter
// count, evaluated on noise, EM lifetime, area, and efficiency, with the
// Pareto-optimal set marked.
//
//   bench_design_space [--jobs=N]   ; N workers (default: auto via
//                                     VSTACK_JOBS env / hardware); the
//                                     table is identical for every N.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/design_space.h"

int main(int argc, char** argv) {
  const vstack::bench::BenchReport bench_report("design_space");
  using namespace vstack;

  const CliArgs args(argc, argv, {"jobs"});
  bench::print_header("Extension",
                      "Cross-layer design-space exploration, 8 layers, "
                      "65% reference imbalance");
  auto ctx = core::StudyContext::paper_defaults();
  ctx.base.grid_nx = ctx.base.grid_ny = 16;

  core::DesignSpaceOptions opts;
  opts.execution.jobs = args.get_size("jobs", 0);  // 0 = auto
  const auto points = core::enumerate_designs(ctx, opts);
  const auto front = core::pareto_front(points);

  TextTable t({"Design", "Noise", "TSV life", "C4 life", "Area", "Eff.",
               "Pareto"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    const bool on_front =
        std::find(front.begin(), front.end(), i) != front.end();
    t.add_row({p.label,
               p.feasible ? TextTable::percent(p.noise, 2) : "infeasible",
               TextTable::num(p.tsv_mttf, 2), TextTable::num(p.c4_mttf, 2),
               TextTable::percent(p.area_overhead, 1),
               TextTable::percent(p.efficiency, 1),
               on_front ? "*" : ""});
  }
  t.print(std::cout);

  bench::print_note(std::to_string(front.size()) + " of " +
                    std::to_string(points.size()) +
                    " designs are Pareto-optimal ('*'); lifetimes "
                    "normalized to the 2-layer V-S reference");
  bench::print_note("regular designs hold the low-area/low-noise corner; "
                    "every design that needs many-layer lifetime is "
                    "voltage-stacked -- the paper's conclusion as a Pareto "
                    "statement");
  return 0;
}
