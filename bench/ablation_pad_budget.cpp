// Extension: pad budget freed for I/O (the paper's Sec. 5.1 claim that V-S
// "reduces the requirement for power supply pads and allows more pads to be
// used for I/O", made quantitative).
//
// For each layer count, find the smallest power-pad allocation that meets a
// common lifetime + noise requirement for both topologies, and compare how
// many of the 1089 pad sites remain for I/O.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/pad_optimizer.h"

int main() {
  const vstack::bench::BenchReport bench_report("ablation_pad_budget");
  using namespace vstack;

  bench::print_header("Extension",
                      "Minimum power-pad budget meeting a shared lifetime + "
                      "noise target (full activity)");
  auto ctx = core::StudyContext::paper_defaults();
  ctx.base.grid_nx = ctx.base.grid_ny = 16;
  const std::size_t sites = core::total_pad_sites(ctx);

  // Target: at least the C4 lifetime of the paper's 2-layer V-S reference,
  // scaled down by 4x (a realistic derating), and noise under 4% Vdd.
  const auto reference = core::evaluate_scenario(
      ctx, core::make_stacked(ctx, 2, ctx.base.tsv, 8),
      std::vector<double>(2, 1.0));
  core::PadRequirement req;
  req.min_c4_mttf = reference.c4_mttf / 4.0;
  req.max_noise_fraction = 0.04;

  TextTable t({"Layers", "Topology", "Feasible", "Power pads", "I/O pads",
               "I/O share"});
  for (const std::size_t layers : {2u, 4u, 8u}) {
    const auto reg = core::minimize_regular_power_pads(ctx, layers, req);
    t.add_row({std::to_string(layers), "Regular",
               reg.feasible ? "yes" : "NO",
               reg.feasible ? std::to_string(reg.power_pads) : "-",
               reg.feasible ? std::to_string(reg.io_pads) : "-",
               reg.feasible
                   ? TextTable::percent(static_cast<double>(reg.io_pads) /
                                            static_cast<double>(sites),
                                        0)
                   : "-"});
    const auto vs = core::minimize_stacked_power_pads(ctx, layers, req);
    t.add_row({std::to_string(layers), "V-S", vs.feasible ? "yes" : "NO",
               vs.feasible ? std::to_string(vs.power_pads) : "-",
               vs.feasible ? std::to_string(vs.io_pads) : "-",
               vs.feasible
                   ? TextTable::percent(static_cast<double>(vs.io_pads) /
                                            static_cast<double>(sites),
                                        0)
                   : "-"});
  }
  t.print(std::cout);

  bench::print_note("of " + std::to_string(sites) + " C4 sites; the stack "
                    "meets the target with a small fixed pad budget at any "
                    "depth, while the regular PDN's requirement grows with "
                    "layer count until it becomes infeasible");
  return 0;
}
