// Ablation/extension: thermal-EM coupling.
//
// Black's equation is exponential in temperature; the paper evaluates EM at
// a fixed stress temperature.  This bench re-evaluates the Fig. 5 scenarios
// with per-conductor temperatures from the thermal model: many-layer stacks
// run hotter (the paper's 8-layer design approaches the 100 C limit), so
// EM degradation compounds the current-density scaling for BOTH topologies
// -- but V-S retains its relative advantage.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/study.h"

int main() {
  const vstack::bench::BenchReport bench_report("ablation_thermal_em");
  using namespace vstack;

  bench::print_header("Extension",
                      "Thermal-EM coupling: TSV lifetimes with per-interface "
                      "temperatures (normalized to 2-layer V-S isothermal)");
  auto ctx = core::StudyContext::paper_defaults();
  ctx.base.grid_nx = ctx.base.grid_ny = 16;  // thermal sweep is heavy

  const auto baseline = core::evaluate_scenario(
      ctx, core::make_stacked(ctx, 2, ctx.base.tsv, 8),
      std::vector<double>(2, 1.0));

  TextTable t({"Layers", "Topology", "Peak temp (C)", "TSV MTTF isothermal",
               "TSV MTTF thermal", "Thermal penalty"});
  for (const std::size_t layers : {2u, 4u, 8u}) {
    for (const bool stacked : {false, true}) {
      const auto cfg =
          stacked ? core::make_stacked(ctx, layers, ctx.base.tsv, 8)
                  : core::make_regular(ctx, layers, ctx.base.tsv, 0.25);
      const auto r = core::evaluate_scenario_with_thermal(
          ctx, cfg, std::vector<double>(layers, 1.0));
      t.add_row({std::to_string(layers), stacked ? "V-S" : "Regular",
                 TextTable::num(r.thermal.max_celsius, 1),
                 TextTable::num(r.isothermal.tsv_mttf / baseline.tsv_mttf, 3),
                 TextTable::num(r.tsv_mttf_thermal / baseline.tsv_mttf, 3),
                 TextTable::num(r.tsv_mttf_thermal / r.isothermal.tsv_mttf,
                                2) +
                     "x"});
    }
  }
  t.print(std::cout);

  bench::print_note("the isothermal reference stresses conductors at 105 C; "
                    "cooler shallow stacks gain lifetime, deeper stacks "
                    "lose it -- compounding the case for charge recycling "
                    "at high layer counts");
  return 0;
}
