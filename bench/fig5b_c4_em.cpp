// Regenerates the paper's Fig. 5b: normalized power-supply C4 pad EM-free
// MTTF versus stacked layer count, for regular PDNs with 25/50/75/100% of
// pad sites allocated to power and the voltage-stacked PDN.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/sweeps.h"

int main() {
  const vstack::bench::BenchReport bench_report("fig5b_c4_em");
  using namespace vstack;

  bench::print_header("Fig 5b",
                      "Normalized C4 EM-free MTTF vs stacked layers "
                      "(all values / 2-layer V-S PDN)");
  const auto ctx = core::StudyContext::paper_defaults();
  const auto rows = core::run_fig5b(ctx, {2, 4, 6, 8});

  TextTable t({"Layers", "Reg 25%", "Reg 50%", "Reg 75%", "Reg 100%",
               "V-S (32 Vdd pads/core)"});
  for (const auto& r : rows) {
    t.add_row({std::to_string(r.layers), TextTable::num(r.reg_25, 3),
               TextTable::num(r.reg_50, 3), TextTable::num(r.reg_75, 3),
               TextTable::num(r.reg_100, 3), TextTable::num(r.vs, 3)});
  }
  t.print(std::cout);

  const auto& r8 = rows.back();
  bench::print_note("V-S C4 lifetime is layer-count independent (stacking "
                    "adds no pads and no off-chip current)");
  bench::print_note("8-layer V-S / regular(100% power C4): " +
                    TextTable::num(r8.vs / r8.reg_100, 2) +
                    "x; / regular(25%): " +
                    TextTable::num(r8.vs / r8.reg_25, 2) +
                    "x (paper: gap up to 5x; even 100% allocation stays far "
                    "inferior to V-S)");
  return 0;
}
