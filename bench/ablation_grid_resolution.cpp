// Ablation: electrical grid resolution.
//
// The pre-RTL grid resolution trades fidelity for solve time.  This bench
// sweeps the per-layer grid and reports the noise metric plus solve cost
// proxies, showing the default 32x32 sits on the converged plateau.  The
// last two columns compare the preconditioner tiers on the same system:
// IC(0) holds CG's iteration growth below ILU(0)'s as the grid refines
// (docs/linear_algebra.md), which is why it sits above ILU(0) in the
// ladder for symmetric systems.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/study.h"
#include "power/workload.h"

int main() {
  const vstack::bench::BenchReport bench_report("ablation_grid_resolution");
  using namespace vstack;

  bench::print_header("Ablation",
                      "Grid resolution vs noise metric (8-layer V-S, "
                      "8 conv/core, 50% imbalance)");
  const auto ctx = core::StudyContext::paper_defaults();

  TextTable t({"Grid", "Unknowns", "Max noise (%Vdd)", "CG iterations",
               "Solve time (ms)", "ILU0 iters", "IC0 iters"});
  for (const std::size_t n : {8u, 16u, 24u, 32u, 48u}) {
    auto cfg = core::make_stacked(ctx, 8, ctx.base.tsv, 8);
    cfg.grid_nx = cfg.grid_ny = n;

    const auto t0 = std::chrono::steady_clock::now();
    pdn::PdnModel model(cfg, ctx.layer_floorplan);
    const auto loads = model.network().build_loads(
        ctx.core_model, power::interleaved_layer_activities(8, 0.5));
    const auto sol = model.solve(loads);
    const auto t1 = std::chrono::steady_clock::now();

    // Cold-start CG iteration counts per preconditioner tier on the same
    // assembled system (PrecondKind::Auto == the historic ILU(0)).
    pdn::PdnSolveOptions ilu0_opts, ic0_opts;
    ic0_opts.preconditioner = la::PrecondKind::Ic0;
    pdn::PdnModel cold_ilu0(cfg, ctx.layer_floorplan);
    pdn::PdnModel cold_ic0(cfg, ctx.layer_floorplan);
    const auto sol_ilu0 = cold_ilu0.solve(loads, ilu0_opts);
    const auto sol_ic0 = cold_ic0.solve(loads, ic0_opts);

    t.add_row({std::to_string(n) + "x" + std::to_string(n),
               std::to_string(model.network().node_count()),
               TextTable::percent(sol.max_node_deviation_fraction, 2),
               std::to_string(sol.report.iterations),
               std::to_string(std::chrono::duration_cast<
                                  std::chrono::milliseconds>(t1 - t0)
                                  .count()),
               std::to_string(sol_ilu0.report.iterations),
               std::to_string(sol_ic0.report.iterations)});
  }
  t.print(std::cout);
  return 0;
}
