// Extension: conversion-ratio exploration for the stacking regulator.
//
// The paper's cells are 2:1 (each spans two rails).  Higher series-parallel
// ratios could span more of the stack with one converter, trading output
// impedance and switch count for rail coverage.  This bench compares the
// 1/n family at the paper's capacitance/conductance/frequency budget.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "sc/compact_model.h"

int main() {
  const vstack::bench::BenchReport bench_report("ablation_converter_ratio");
  using namespace vstack;

  bench::print_header("Extension",
                      "Series-parallel 1/n converters at the paper's budget "
                      "(8 nF, 71 S, 50 MHz), regulating to 1 V");

  TextTable t({"Ratio", "Caps", "Switches", "R_SSL (Ohm)", "R_SERIES (Ohm)",
               "Eff @50mA", "Rails spanned"});
  for (std::size_t n = 2; n <= 5; ++n) {
    sc::ScConverterDesign d;
    d.topology = sc::series_parallel_step_down(n);
    const sc::ScCompactModel model(d);
    // Rails n*Vdd .. 0 regulated to Vdd at the tap.
    const auto op =
        model.evaluate(static_cast<double>(n) * 1.0, 0.0, 50e-3);
    t.add_row({d.topology.name, std::to_string(n - 1),
               std::to_string(3 * n - 2),
               TextTable::num(model.r_ssl(50e6), 3),
               TextTable::num(op.r_series, 3),
               TextTable::percent(op.efficiency, 1),
               std::to_string(n)});
  }
  t.print(std::cout);

  bench::print_note("wider spans cost quadratically in output impedance "
                    "((sum a_c)^2 grows toward 1) and linearly in switches; "
                    "the paper's ladder of 2:1 cells is the better use of a "
                    "fixed capacitor budget, at the cost of one cell per "
                    "intermediate rail");
  return 0;
}
