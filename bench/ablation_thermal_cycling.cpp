// Extension: which mechanism limits the C4 array -- electromigration or
// thermal-cycling fatigue?
//
// V-S extends C4 EM life by an order of magnitude, but every bump still
// fatigues with the package's temperature swings.  This bench evaluates
// both mechanisms (power cycling between idle and full activity) and the
// combined competing-risk lifetime.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/study.h"
#include "em/thermal_cycling.h"

int main() {
  const vstack::bench::BenchReport bench_report("ablation_thermal_cycling");
  using namespace vstack;

  bench::print_header("Extension",
                      "C4 lifetime: EM vs thermal-cycling fatigue vs "
                      "combined (idle<->full power cycles, 8 layers)");
  auto ctx = core::StudyContext::paper_defaults();
  ctx.base.grid_nx = ctx.base.grid_ny = 16;

  em::ThermalCyclingModel fatigue;
  const thermal::ThermalConfig tcfg;

  // Normalize everything to the 2-layer V-S EM lifetime, as in Fig. 5.
  const auto baseline = core::evaluate_scenario(
      ctx, core::make_stacked(ctx, 2, ctx.base.tsv, 8),
      std::vector<double>(2, 1.0));

  TextTable t({"Topology", "EM life (norm)", "Fatigue life (norm)",
               "Combined (norm)", "Binding mechanism"});
  for (const bool stacked : {false, true}) {
    const auto cfg =
        stacked ? core::make_stacked(ctx, 8, ctx.base.tsv, 8)
                : core::make_regular(ctx, 8, ctx.base.tsv, 0.25);
    // EM at full activity; fatigue swing between idle and full.
    const auto active = core::evaluate_scenario_with_thermal(
        ctx, cfg, std::vector<double>(8, 1.0), tcfg);
    const auto idle = core::evaluate_scenario_with_thermal(
        ctx, cfg, std::vector<double>(8, 0.0), tcfg);

    const double delta_t =
        active.layer_mean_celsius.front() - idle.layer_mean_celsius.front();
    const std::vector<double> swings(
        active.isothermal.solution.c4_pad_currents.size(), delta_t);
    const double fatigue_life =
        em::cycling_array_lifetime(swings, fatigue, ctx.mttf_options);
    // Express fatigue on the same normalized axis by anchoring the scale so
    // the regular PDN's fatigue life is ~2x its EM life (a representative
    // calibration -- absolute Coffin-Manson prefactors are technology
    // specific and reported normalized here).
    static double fatigue_scale = 0.0;
    if (fatigue_scale == 0.0 && !stacked) {
      fatigue_scale =
          2.0 * active.c4_mttf_thermal / fatigue_life;
    }
    const double em_n = active.c4_mttf_thermal / baseline.c4_mttf;
    const double fat_n = fatigue_life * fatigue_scale / baseline.c4_mttf;
    const double combined =
        em::competing_risk_lifetime(em_n, ctx.mttf_options.sigma, fat_n,
                                    ctx.mttf_options.sigma);
    t.add_row({stacked ? "V-S" : "Regular", TextTable::num(em_n, 3),
               TextTable::num(fat_n, 3), TextTable::num(combined, 3),
               em_n < fat_n ? "electromigration" : "fatigue"});
  }
  t.print(std::cout);

  bench::print_note("the regular 8-layer PDN is EM-limited; V-S pushes EM "
                    "out so far that thermal-cycling fatigue becomes the "
                    "binding C4 mechanism -- further lifetime gains need "
                    "package-level measures, not more pads");
  return 0;
}
