// Performance bench: external power-grid benchmark ingestion (src/pgio).
//
// Generates an IBM-power-grid-style netlist for an NxN VDD mesh entirely in
// memory, then measures the full ingestion pipeline -- parse (nodes/sec and
// MB/sec), short collapse + slot assignment, and the DC solve under each
// linear-algebra backend -- plus the process peak RSS, which bounds the
// per-node memory cost of the streaming reader + interned node table.
//
//   bench_external_grid [--nodes=N] [--rel-tol=X]
//
// --nodes defaults to 100000 and is rounded down to a square grid; pass
// --nodes=1000000 for the million-node acceptance run (the documented
// bound is < 1 GiB peak RSS end to end; see docs/benchmark_ingestion.md).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_util.h"
#include "common/cli.h"
#include "common/table.h"
#include "la/backend.h"
#include "pgio/grid.h"
#include "pgio/reader.h"

namespace {

using namespace vstack;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set size in MiB (0 when the platform cannot report it).
double peak_rss_mib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage u {};
  if (getrusage(RUSAGE_SELF, &u) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(u.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(u.ru_maxrss) / 1024.0;  // kilobytes
#endif
#else
  return 0.0;
#endif
}

/// An nx*ny VDD mesh in the benchmark dialect: 1 ohm segments, pads pinned
/// along the top edge every 32 columns, and a uniform load at every node.
/// Uses the `n<layer>_<x>_<y>` naming convention so layer histograms and
/// solution files stay representative of the real IBM inputs.
std::string synthetic_mesh(std::size_t nx, std::size_t ny,
                           double amps_per_node) {
  std::string out;
  // ~64 bytes/line, two R lines + one I line per node.
  out.reserve(nx * ny * 200 + 4096);
  out += "* synthetic ibmpg-style mesh ";
  out += std::to_string(nx) + "x" + std::to_string(ny) + "\n";
  char buf[160];
  std::size_t e = 0;
  const auto node = [](std::size_t x, std::size_t y) {
    return "n1_" + std::to_string(x) + "_" + std::to_string(y);
  };
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const std::string a = node(x, y);
      if (x + 1 < nx) {
        std::snprintf(buf, sizeof(buf), "R%zu %s %s 1.0\n", ++e, a.c_str(),
                      node(x + 1, y).c_str());
        out += buf;
      }
      if (y + 1 < ny) {
        std::snprintf(buf, sizeof(buf), "R%zu %s %s 1.0\n", ++e, a.c_str(),
                      node(x, y + 1).c_str());
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), "I%zu %s 0 %.6g\n", ++e, a.c_str(),
                    amps_per_node);
      out += buf;
    }
  }
  for (std::size_t x = 0; x < nx; x += 32) {
    std::snprintf(buf, sizeof(buf), "V%zu %s 0 1.0\n", ++e,
                  node(x, 0).c_str());
    out += buf;
  }
  out += ".end\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const vstack::bench::BenchReport bench_report("external_grid");
  using namespace vstack;

  const CliArgs args(argc, argv, {"nodes", "rel-tol"});
  const std::size_t requested = args.get_size("nodes", 100000);
  const auto side = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(requested)));
  const std::size_t nx = side < 2 ? 2 : side;

  bench::print_header("Perf", "External grid ingestion, " +
                                  std::to_string(nx) + "x" +
                                  std::to_string(nx) + " mesh");

  // Tiny per-node load keeps the total IR drop physical at any size.
  const double amps = 0.25 / static_cast<double>(nx * nx);
  double t0 = now_s();
  const std::string text = synthetic_mesh(nx, nx, amps);
  const double gen_s = now_s() - t0;
  const double mib = static_cast<double>(text.size()) / (1024.0 * 1024.0);

  t0 = now_s();
  const pgio::PgNetlist netlist =
      pgio::read_netlist_text(text, "synthetic-mesh");
  const double parse_s = now_s() - t0;
  const double nodes = static_cast<double>(netlist.node_count());

  t0 = now_s();
  const pgio::ImportedGrid grid(netlist);
  const double import_s = now_s() - t0;

  TextTable stages({"Stage", "Wall (s)", "Rate"});
  stages.add_row({"generate", TextTable::num(gen_s, 3),
                  TextTable::num(mib / (gen_s > 0 ? gen_s : 1), 1) +
                      " MiB/s"});
  stages.add_row(
      {"parse", TextTable::num(parse_s, 3),
       TextTable::num(nodes / (parse_s > 0 ? parse_s : 1) / 1e6, 2) +
           " Mnodes/s"});
  stages.add_row({"import", TextTable::num(import_s, 3),
                  std::to_string(grid.unknown_count()) + " unknowns"});
  stages.print(std::cout);

  TextTable solves({"Backend", "Solve (s)", "Iters", "Max dev (mV)"});
  int code = 0;
  for (const auto& [label, choice] :
       {std::pair<const char*, la::BackendChoice>{"reference",
                                                  la::BackendChoice::Reference},
        std::pair<const char*, la::BackendChoice>{
            "optimized", la::BackendChoice::Optimized}}) {
    pgio::GridSolveOptions opt;
    opt.backend = choice;
    opt.iterative.relative_tolerance = args.get_double("rel-tol", 1e-8);
    // Fresh copy per backend: the shared grid warm-starts repeat solves
    // from its cached solution, which would zero out the second timing.
    const pgio::ImportedGrid cold(grid);
    t0 = now_s();
    const pgio::GridSolution sol = cold.solve(opt);
    const double solve_s = now_s() - t0;
    if (!sol.solve_ok) {
      std::cerr << "error: " << label << " backend failed: "
                << sol.diagnostic << "\n";
      code = 2;
      continue;
    }
    solves.add_row({label, TextTable::num(solve_s, 3),
                    std::to_string(sol.report.iterations),
                    TextTable::num(sol.max_deviation_v * 1e3, 3)});
  }
  solves.print(std::cout);

  const double rss = peak_rss_mib();
  bench::print_note("netlist " + TextTable::num(mib, 1) + " MiB, " +
                    std::to_string(netlist.line_count) + " lines, " +
                    std::to_string(netlist.node_count()) + " nodes, " +
                    std::to_string(netlist.element_count()) + " elements");
  if (rss > 0.0) {
    bench::print_note("peak RSS " + TextTable::num(rss, 1) + " MiB (" +
                      TextTable::num(rss * 1024.0 * 1024.0 / nodes, 0) +
                      " bytes/node end to end)");
  }
  return code;
}
