// Ablation: V-S through-via (Vdd pad) allocation.
//
// The paper states 32 Vdd pads per core, each feeding one through-via;
// Fig. 5b labels the V-S curve "25% power C4".  The two are inconsistent
// (see EXPERIMENTS.md); this bench sweeps the allocation to show how the
// V-S TSV/C4 lifetimes move, so readers can place either interpretation.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/sweeps.h"

int main() {
  const vstack::bench::BenchReport bench_report("ablation_vs_pad_allocation");
  using namespace vstack;

  bench::print_header("Ablation",
                      "V-S Vdd-pad (through-via) allocation vs EM lifetime "
                      "(8 layers, normalized to 32 pads/core)");
  auto ctx = core::StudyContext::paper_defaults();

  // Baseline at the paper's 32 pads/core.
  const auto base = core::evaluate_scenario(
      ctx, core::make_stacked(ctx, 8, ctx.base.tsv, 8),
      std::vector<double>(8, 1.0));

  TextTable t({"Vdd pads/core", "Per-via current (mA)", "TSV MTTF (norm)",
               "C4 MTTF (norm)"});
  for (const std::size_t pads : {8u, 16u, 24u, 32u}) {
    ctx.base.vdd_pads_per_core = pads;
    const auto r = core::evaluate_scenario(
        ctx, core::make_stacked(ctx, 8, ctx.base.tsv, 8),
        std::vector<double>(8, 1.0));
    const double per_via = 7.6 / (16.0 * static_cast<double>(pads)) * 1e3;
    t.add_row({std::to_string(pads), TextTable::num(per_via, 1),
               TextTable::num(r.tsv_mttf / base.tsv_mttf, 3),
               TextTable::num(r.c4_mttf / base.c4_mttf, 3)});
  }
  t.print(std::cout);

  bench::print_note("fewer through-vias concentrate the (layer-count-"
                    "independent) supply current and shorten both arrays' "
                    "lifetimes; the qualitative Fig. 5 conclusions hold "
                    "for any allocation in this range");
  return 0;
}
