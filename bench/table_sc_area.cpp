// Regenerates the paper's Sec. 3.1 converter-area results: 0.472 mm^2 with
// MIM capacitors, 0.102 mm^2 ferroelectric, 0.082 mm^2 deep trench, and the
// resulting per-converter core-area overhead (~3% with high-density caps).
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/study.h"
#include "sc/area.h"

int main() {
  const vstack::bench::BenchReport bench_report("table_sc_area");
  using namespace vstack;

  bench::print_header("Sec 3.1", "SC converter area by capacitor technology");
  const auto ctx = core::StudyContext::paper_defaults();
  const sc::ScCompactModel model(ctx.base.converter);

  TextTable t({"Capacitor Technology", "Converter Area (mm^2)",
               "Core-Area Overhead per Converter"});
  for (const auto& tech : sc::standard_capacitor_technologies()) {
    const double area = sc::converter_area(ctx.base.converter, tech);
    t.add_row({tech.name, TextTable::num(area / units::mm2, 3),
               TextTable::percent(area / ctx.core_model.area(), 1)});
  }
  t.print(std::cout);

  bench::print_note("R_SSL = " +
                    TextTable::num(model.r_ssl(
                        ctx.base.converter.nominal_switching_frequency), 3) +
                    " Ohm, R_FSL = " + TextTable::num(model.r_fsl(), 3) +
                    " Ohm, R_SERIES = " +
                    TextTable::num(model.r_series(
                        ctx.base.converter.nominal_switching_frequency), 3) +
                    " Ohm (paper: 0.6 Ohm)");
  return 0;
}
