// Extension: where should the decap budget live in a stack?
//
// A fixed total decoupling capacitance is redistributed across the layers
// by coordinate descent to minimize the transient peak of a full-power
// step, for both topologies.
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/table.h"
#include "core/study.h"
#include "pdn/decap_optimizer.h"

int main() {
  const vstack::bench::BenchReport bench_report("ablation_decap_allocation");
  using namespace vstack;

  bench::print_header("Extension",
                      "Per-layer decap allocation minimizing transient "
                      "droop (4 layers, 20%->100% step)");
  auto ctx = core::StudyContext::paper_defaults();

  pdn::DecapOptimizerOptions opts;
  opts.transient.time_step = 1e-9;
  opts.transient.duration = 120e-9;
  opts.transient.step_time = 15e-9;
  opts.rounds = 2;

  TextTable t({"Topology", "Uniform peak", "Optimized peak", "Gain",
               "Layer shares (bottom..top)"});
  for (const bool stacked : {false, true}) {
    auto cfg = stacked ? core::make_stacked(ctx, 4, ctx.base.tsv, 8)
                       : core::make_regular(ctx, 4, ctx.base.tsv, 0.25);
    cfg.grid_nx = cfg.grid_ny = 8;  // many transient evaluations
    pdn::PdnModel model(cfg, ctx.layer_floorplan);
    const auto r = pdn::optimize_layer_decap(
        model, ctx.core_model, std::vector<double>(4, 0.2),
        std::vector<double>(4, 1.0), opts);
    std::string shares;
    for (std::size_t l = 0; l < r.layer_density.size(); ++l) {
      if (l) shares += " / ";
      shares += TextTable::percent(
          r.layer_density[l] /
              (4.0 * opts.transient.decap_density),
          0);
    }
    std::string gain = "-";
    gain += TextTable::num((1.0 - r.peak_noise / r.uniform_noise) * 100.0, 1);
    gain += "%";
    t.add_row({stacked ? "V-S" : "Regular",
               TextTable::percent(r.uniform_noise, 2),
               TextTable::percent(r.peak_noise, 2), std::move(gain), shares});
  }
  t.print(std::cout);

  bench::print_note("shares are fractions of the total budget; the "
                    "optimizer moves decap toward the layers whose rails "
                    "take the brunt of the step");
  return 0;
}
