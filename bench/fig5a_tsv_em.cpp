// Regenerates the paper's Fig. 5a: normalized power-supply TSV EM-free MTTF
// versus stacked layer count, for regular PDNs with Dense/Sparse/Few TSV
// allocations and the voltage-stacked PDN with Few TSVs.
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/sweeps.h"

int main() {
  const vstack::bench::BenchReport bench_report("fig5a_tsv_em");
  using namespace vstack;

  bench::print_header("Fig 5a",
                      "Normalized TSV EM-free MTTF vs stacked layers "
                      "(all values / 2-layer V-S PDN)");
  const auto ctx = core::StudyContext::paper_defaults();
  const auto rows = core::run_fig5a(ctx, {2, 4, 6, 8});

  TextTable t({"Layers", "Reg Dense", "Reg Sparse", "Reg Few", "V-S Few"});
  for (const auto& r : rows) {
    t.add_row({std::to_string(r.layers), TextTable::num(r.reg_dense, 3),
               TextTable::num(r.reg_sparse, 3), TextTable::num(r.reg_few, 3),
               TextTable::num(r.vs_few, 3)});
  }
  t.print(std::cout);

  const auto& r2 = rows.front();
  const auto& r8 = rows.back();
  bench::print_note("regular Few degradation 2->8 layers: " +
                    TextTable::percent(1.0 - r8.reg_few / r2.reg_few, 1) +
                    " (paper: up to 84%)");
  bench::print_note("8-layer V-S / regular at the same (Few) topology: " +
                    TextTable::num(r8.vs_few / r8.reg_few, 2) +
                    "x (paper: more than 3x); / best regular allocation: " +
                    TextTable::num(r8.vs_few /
                                       std::max({r8.reg_dense, r8.reg_sparse,
                                                 r8.reg_few}),
                                   2) +
                    "x");
  bench::print_note("denser TSV allocations improve the regular PDN only "
                    "marginally (current crowding; see EXPERIMENTS.md)");
  return 0;
}
