// Ablation: regulator technology for voltage stacking.
//
// The paper motivates switched-capacitor regulation over the earlier
// push-pull linear regulator [13] and defers inductive (buck) converters to
// future work [17].  This bench evaluates all three on the same 8-layer
// differential-regulation task and on area.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/study.h"
#include "sc/buck_converter.h"
#include "sc/linear_regulator.h"

int main() {
  const vstack::bench::BenchReport bench_report("ablation_regulator_type");
  using namespace vstack;

  bench::print_header("Ablation",
                      "Regulator technology: per-regulator efficiency on "
                      "the 2:1 differential task (rails 2 V .. 0 V)");
  const sc::ScCompactModel sc_model{sc::ScConverterDesign{}};
  const sc::LinearRegulatorModel lin_model{sc::LinearRegulatorDesign{}};
  const sc::BuckConverterModel buck_model{sc::BuckConverterDesign{}};

  TextTable t({"Load (mA)", "SC (open loop)", "Linear [13]", "Buck [17]"});
  for (const double ma : {10.0, 25.0, 50.0, 75.0, 100.0}) {
    const double i = ma * 1e-3;
    t.add_row({TextTable::num(ma, 0),
               TextTable::percent(sc_model.evaluate(2.0, 0.0, i).efficiency, 1),
               TextTable::percent(lin_model.evaluate(2.0, 0.0, i).efficiency, 1),
               TextTable::percent(buck_model.evaluate(2.0, 0.0, i).efficiency,
                                  1)});
  }
  t.print(std::cout);

  const auto ctx = core::StudyContext::paper_defaults();
  TextTable a({"Regulator", "Area (mm^2)", "Area / core"});
  const double sc_area = sc::converter_area(ctx.base.converter,
                                            ctx.capacitor_technology);
  a.add_row({"SC (ferro caps)", TextTable::num(sc_area / 1e-6, 3),
             TextTable::percent(sc_area / ctx.core_model.area(), 1)});
  const sc::LinearRegulatorDesign lin;
  a.add_row({"Linear", TextTable::num(lin.area / 1e-6, 3),
             TextTable::percent(lin.area / ctx.core_model.area(), 2)});
  const sc::BuckConverterDesign buck;
  a.add_row({"Buck (on-chip L)", TextTable::num(buck.area() / 1e-6, 3),
             TextTable::percent(buck.area() / ctx.core_model.area(), 1)});
  std::cout << "\n";
  a.print(std::cout);

  bench::print_note("linear regulation is area-free but burns the full "
                    "headroom (<=50% efficiency on a 2:1 task); on-chip "
                    "buck inductors cost ~90% of a core; the SC converter "
                    "is the only option that is simultaneously efficient "
                    "and integrable -- the paper's Sec. 2.1 argument");
  return 0;
}
