// Ablation: parameter sensitivity of the headline metrics.
//
// Each Table-1 parameter (and the converter's R_SERIES drivers) is
// perturbed by +/-25% and the resulting swing of the 8-layer V-S noise and
// the V-S/regular TSV lifetime ratio is reported -- a tornado-style
// robustness check on the reproduction's conclusions.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/study.h"
#include "power/workload.h"

namespace {

using namespace vstack;

struct Metrics {
  double vs_noise = 0.0;   // 8-layer V-S noise at 50% imbalance
  double mttf_ratio = 0.0; // V-S / regular Few TSV lifetime at 8 layers
};

Metrics evaluate(const core::StudyContext& ctx) {
  Metrics m;
  pdn::PdnModel vs(core::make_stacked(ctx, 8, ctx.base.tsv, 8),
                   ctx.layer_floorplan);
  m.vs_noise = vs.solve_activities(
                     ctx.core_model,
                     power::interleaved_layer_activities(8, 0.5))
                   .max_node_deviation_fraction;
  const std::vector<double> full(8, 1.0);
  const auto vs_em = core::evaluate_scenario(
      ctx, core::make_stacked(ctx, 8, ctx.base.tsv, 8), full);
  const auto reg_em = core::evaluate_scenario(
      ctx, core::make_regular(ctx, 8, ctx.base.tsv, 0.25), full);
  m.mttf_ratio = vs_em.tsv_mttf / reg_em.tsv_mttf;
  return m;
}

}  // namespace

int main() {
  const vstack::bench::BenchReport bench_report("ablation_sensitivity");
  bench::print_header("Ablation",
                      "Parameter sensitivity (+/-25%) of the 8-layer "
                      "headline metrics");
  auto base_ctx = core::StudyContext::paper_defaults();
  base_ctx.base.grid_nx = base_ctx.base.grid_ny = 16;
  const Metrics base = evaluate(base_ctx);

  struct Knob {
    const char* name;
    void (*apply)(core::StudyContext&, double);
  };
  const Knob knobs[] = {
      {"TSV resistance",
       [](core::StudyContext& c, double f) { c.base.params.tsv_resistance *= f; }},
      {"C4 resistance",
       [](core::StudyContext& c, double f) { c.base.params.c4_resistance *= f; }},
      {"grid sheet (thickness)",
       [](core::StudyContext& c, double f) { c.base.params.grid_thickness *= f; }},
      {"converter fly capacitance",
       [](core::StudyContext& c, double f) {
         c.base.converter.total_fly_capacitance *= f;
       }},
      {"converter switch conductance",
       [](core::StudyContext& c, double f) {
         c.base.converter.total_switch_conductance *= f;
       }},
  };

  TextTable t({"Parameter", "Noise -25%", "Noise +25%", "MTTF ratio -25%",
               "MTTF ratio +25%"});
  for (const auto& knob : knobs) {
    Metrics lo_m, hi_m;
    {
      auto ctx = core::StudyContext::paper_defaults();
      ctx.base.grid_nx = ctx.base.grid_ny = 16;
      knob.apply(ctx, 0.75);
      lo_m = evaluate(ctx);
    }
    {
      auto ctx = core::StudyContext::paper_defaults();
      ctx.base.grid_nx = ctx.base.grid_ny = 16;
      knob.apply(ctx, 1.25);
      hi_m = evaluate(ctx);
    }
    t.add_row({knob.name, TextTable::percent(lo_m.vs_noise, 2),
               TextTable::percent(hi_m.vs_noise, 2),
               TextTable::num(lo_m.mttf_ratio, 2) + "x",
               TextTable::num(hi_m.mttf_ratio, 2) + "x"});
  }
  t.print(std::cout);

  bench::print_note("baseline: noise " + TextTable::percent(base.vs_noise, 2) +
                    ", lifetime ratio " + TextTable::num(base.mttf_ratio, 2) +
                    "x; the V-S advantage survives every perturbation");
  return 0;
}
