// Ablation: converter regulation reference.
//
// A reproduction finding of this repository (see EXPERIMENTS.md): if each
// converter's midpoint reference uses the SOLVED adjacent-rail voltages
// (the literal reading of the paper's compact model), the interleaved
// high-low pattern drives same-sign mismatch current into every other rail
// and the per-level droop accumulates ~quadratically with layer count.
// The paper's Fig. 6 noise levels are only consistent with converters that
// regulate toward the NOMINAL rail potentials (a stiff reference).  This
// bench quantifies the difference.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/study.h"
#include "power/workload.h"

int main() {
  const vstack::bench::BenchReport bench_report("ablation_converter_reference");
  using namespace vstack;

  bench::print_header("Ablation",
                      "Converter reference: ideal rails vs adjacent rails "
                      "(max noise %Vdd, 50% imbalance, 8 conv/core)");
  const auto ctx = core::StudyContext::paper_defaults();

  TextTable t({"Layers", "IdealRails noise", "AdjacentRails noise",
               "Amplification"});
  for (const std::size_t layers : {2u, 4u, 6u, 8u}) {
    auto ideal = core::make_stacked(ctx, layers, ctx.base.tsv, 8);
    ideal.converter_reference = pdn::ConverterReference::IdealRails;
    auto coupled = ideal;
    coupled.converter_reference = pdn::ConverterReference::AdjacentRails;

    const auto acts = power::interleaved_layer_activities(layers, 0.5);
    const auto s_ideal =
        pdn::PdnModel(ideal, ctx.layer_floorplan)
            .solve_activities(ctx.core_model, acts);
    const auto s_coupled =
        pdn::PdnModel(coupled, ctx.layer_floorplan)
            .solve_activities(ctx.core_model, acts);

    t.add_row({std::to_string(layers),
               TextTable::percent(s_ideal.max_node_deviation_fraction, 2),
               TextTable::percent(s_coupled.max_node_deviation_fraction, 2),
               TextTable::num(s_coupled.max_node_deviation_fraction /
                                  s_ideal.max_node_deviation_fraction,
                              2) +
                   "x"});
  }
  t.print(std::cout);

  bench::print_note("midpoint-referenced ladder stacks accumulate droop "
                    "with layer count; stiff-referenced regulation keeps "
                    "noise layer-count independent");
  return 0;
}
