// Ablation/extension: transient (L di/dt) droop under a full-power step.
//
// The paper studies DC IR drop only.  This bench restores the dynamic part
// of the VoltSpot model (package inductance + on-chip decap) and fires a
// 20% -> 100% activity step on every layer: because the voltage stack draws
// ~N times less off-chip current, its first droop through the same package
// is far smaller than the regular PDN's.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/study.h"
#include "pdn/transient.h"

int main() {
  const vstack::bench::BenchReport bench_report("ablation_transient_droop");
  using namespace vstack;

  bench::print_header("Extension",
                      "Transient droop of a 20%->100% power step "
                      "(50 pH package, 5 nF/mm^2 decap)");
  const auto ctx = core::StudyContext::paper_defaults();

  pdn::PdnTransientOptions opts;
  opts.time_step = 1e-9;
  opts.duration = 250e-9;
  opts.step_time = 20e-9;

  TextTable t({"Layers", "Topology", "DC noise after step", "Peak transient",
               "Transient excursion", "Supply dI (A)"});
  for (const std::size_t layers : {2u, 4u, 8u}) {
    for (const bool stacked : {false, true}) {
      auto cfg = stacked
                     ? core::make_stacked(ctx, layers, ctx.base.tsv, 8)
                     : core::make_regular(ctx, layers, ctx.base.tsv, 0.25);
      cfg.grid_nx = cfg.grid_ny = 16;  // transient runs many solves
      pdn::PdnModel model(cfg, ctx.layer_floorplan);
      const std::vector<double> after(layers, 1.0);
      const auto r = pdn::simulate_load_step(
          model, ctx.core_model, std::vector<double>(layers, 0.2), after,
          opts);
      if (!r.ok()) {
        std::cerr << "transient engine trouble (" << layers << " layers, "
                  << (stacked ? "V-S" : "Regular")
                  << "): " << r.report.summary() << "\n";
      }
      // Settled level from a static solve (the short run may still ring).
      const auto dc_after = model.solve_activities(ctx.core_model, after);
      const double dc_noise = dc_after.max_node_deviation_fraction;
      t.add_row({std::to_string(layers),
                 stacked ? "V-S" : "Regular",
                 TextTable::percent(dc_noise, 2),
                 TextTable::percent(r.peak_noise, 2),
                 TextTable::percent(r.peak_noise - dc_noise, 2),
                 TextTable::num(dc_after.supply_current -
                                    r.supply_current.front(),
                                1)});
    }
  }
  t.print(std::cout);

  bench::print_note("the regular PDN's off-chip current step grows with "
                    "layer count, so its L di/dt excursion scales with N; "
                    "the stack's step is one layer's worth regardless of N");
  bench::print_note("at 2 layers the two are comparable: stacking divides "
                    "the effective decoupling capacitance (per-layer decaps "
                    "sit in series across the stack), which offsets the "
                    "smaller current step until N grows");
  return 0;
}
