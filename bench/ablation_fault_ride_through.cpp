// Ablation/extension: supervisor detection latency vs worst droop during a
// live fault ride-through.
//
// A converter cluster (stacked) or most of the power TSVs (regular) die
// mid-run under an imbalanced workload; the stack supervisor detects the
// droop, climbs its mitigation ladder, and the run is classified
// Recovered / Degraded / Lost.  Sweeping the detection latency shows the
// cost of slow sensing: the worst excursion grows with latency, and past
// some point the watchdog (not the ladder) decides the outcome.
//
// Every (latency, topology) combination is an independent transient, so
// the grid fans out on core::TaskPool; rows commit in sweep order, so the
// table is identical for every --jobs value.
//
//   bench_ablation_fault_ride_through [--jobs=N]   ; default: auto
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/study.h"
#include "core/task_pool.h"
#include "pdn/ride_through.h"
#include "power/workload.h"

namespace {

using namespace vstack;

/// Stacked stress: all but `keep` converter phases at `level` stick off.
pdn::FaultSet stacked_fault(const pdn::PdnModel& model, std::size_t level,
                            std::size_t keep) {
  pdn::FaultSet fs;
  std::size_t kept = 0;
  const auto& convs = model.network().converters();
  for (std::size_t i = 0; i < convs.size(); ++i) {
    if (convs[i].level != level) continue;
    if (kept < keep) {
      ++kept;
    } else {
      fs.converter_stuck_off(i);
    }
  }
  return fs;
}

/// Regular stress: open three quarters of every Vdd TSV group.
pdn::FaultSet regular_fault(const pdn::PdnModel& model) {
  pdn::FaultSet fs;
  const auto& groups = model.network().conductors();
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].kind != pdn::ConductorKind::TsvVdd) continue;
    const std::size_t open = groups[i].count * 3 / 4;
    if (open > 0) fs.open_conductor(i, open);
  }
  return fs;
}

struct Combo {
  double latency = 0.0;
  bool stacked = false;
};

struct ComboResult {
  pdn::RideThroughReport report;
  std::string trouble;  // non-empty when the waveform truncated
};

ComboResult run_combo(const core::StudyContext& ctx,
                      const std::vector<double>& acts, const Combo& combo) {
  const std::size_t layers = 8;
  auto cfg = combo.stacked
                 ? core::make_stacked(ctx, layers, ctx.base.tsv, 8)
                 : core::make_regular(ctx, layers, ctx.base.tsv, 0.25);
  cfg.grid_nx = cfg.grid_ny = 8;  // each run is a full adaptive transient
  pdn::PdnModel model(cfg, ctx.layer_floorplan);

  pdn::RideThroughOptions opt;
  opt.transient.time_step = 2e-9;
  opt.transient.duration = 1e-6;
  opt.supervisor.trip_fraction = 0.10;
  // Spreading resistance caps what rebalancing can recover (see
  // docs/fault_model.md section 6), hence the 8% recovery band.
  opt.supervisor.recovery_fraction = 0.08;
  opt.supervisor.sense_interval = 5e-9;
  opt.supervisor.detection_latency = combo.latency;
  opt.supervisor.action_dwell = 60e-9;
  opt.supervisor.watchdog_timeout = 500e-9;

  pdn::TimedFaultEvent ev;
  ev.time = 200e-9;
  ev.faults = combo.stacked ? stacked_fault(model, 3, 32)
                            : regular_fault(model);
  ev.label = combo.stacked ? "converter cluster stuck off" : "TSV die-off";
  opt.transient.fault_events.push_back(ev);

  ComboResult result;
  result.report =
      pdn::simulate_ride_through(model, ctx.core_model, acts, opt).report;
  if (!result.report.ok()) {
    result.trouble = "ride-through trouble (" +
                     std::string(combo.stacked ? "V-S" : "Regular") +
                     ", latency " + TextTable::num(combo.latency * 1e9, 0) +
                     " ns): " + result.report.transient.summary();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const vstack::bench::BenchReport bench_report("ablation_fault_ride_through");
  using namespace vstack;

  const CliArgs args(argc, argv, {"jobs"});
  bench::print_header("Extension",
                      "Detection latency vs worst droop during fault "
                      "ride-through (8 layers, imbalance 0.8, fault at "
                      "200 ns)");
  const auto ctx = core::StudyContext::paper_defaults();
  const auto acts = power::interleaved_layer_activities(8, 0.8);

  std::vector<Combo> combos;
  for (const double latency : {10e-9, 20e-9, 50e-9, 100e-9, 200e-9}) {
    for (const bool stacked : {true, false}) {
      combos.push_back({latency, stacked});
    }
  }

  TextTable t({"Latency (ns)", "Topology", "Outcome", "Detected (ns)",
               "Worst droop", "Final droop", "Actions"});
  std::vector<ComboResult> results(combos.size());
  core::ExecutionPolicy policy;
  policy.jobs = args.get_size("jobs", 0);  // 0 = auto
  const core::TaskPool pool(policy);
  pool.run_ordered(
      combos.size(),
      [&](std::size_t i) { results[i] = run_combo(ctx, acts, combos[i]); },
      [&](std::size_t i) {
        const auto& rep = results[i].report;
        if (!results[i].trouble.empty()) {
          std::cerr << results[i].trouble << "\n";
        }
        t.add_row({TextTable::num(combos[i].latency * 1e9, 0),
                   combos[i].stacked ? "V-S" : "Regular",
                   pdn::to_string(rep.outcome),
                   rep.detected_at >= 0.0
                       ? TextTable::num(rep.detected_at * 1e9, 0)
                       : std::string("-"),
                   TextTable::percent(rep.worst_droop, 2),
                   TextTable::percent(rep.final_droop, 2),
                   std::to_string(rep.actions.size())});
      });
  t.print(std::cout);

  bench::print_note("stacked worst droop grows with detection latency: "
                    "every extra sensing tick is time the imbalance current "
                    "discharges the faulted rail before mitigation starts");
  bench::print_note("the regular PDN has no converters to rebalance -- a "
                    "TSV die-off either rides through on the redundant "
                    "groups or escalates straight to shutdown, largely "
                    "independent of latency");
  return 0;
}
