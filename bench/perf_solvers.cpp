// google-benchmark timing of the linear-algebra kernels on PDN-shaped
// systems: CG vs BiCGSTAB, Jacobi vs ILU(0) vs IC(0), per-backend SpMV,
// and a full PDN solve.  A scoreboard after the timed runs records the
// backend SpMV throughputs and the ILU(0)-vs-IC(0) iteration-growth trend
// as telemetry gauges, so they land in BENCH_perf_solvers.json.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "core/study.h"
#include "la/skyline_cholesky.h"
#include "la/solver.h"
#include "power/workload.h"

namespace {

using namespace vstack;

la::CsrMatrix grid_matrix(std::size_t m) {
  la::CooBuilder b(m * m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t i = r * m + c;
      b.add(i, i, 4.0);
      if (r > 0) b.add(i, i - m, -1.0);
      if (r + 1 < m) b.add(i, i + m, -1.0);
      if (c > 0) b.add(i, i - 1, -1.0);
      if (c + 1 < m) b.add(i, i + 1, -1.0);
    }
  }
  return b.build();
}

const la::Backend& backend_of(std::int64_t index) {
  return index == 0 ? la::reference_backend() : la::optimized_backend();
}

/// CSR SpMV per kernel backend.  Arg0: 0 = reference, 1 = optimized;
/// Arg1: grid edge m (n = m^2).  m = 256 is the largest bench grid
/// (65 536 unknowns, ~327 k nnz) -- the working set no longer fits in L2,
/// so the optimized backend's narrowed indices show their bandwidth win.
void BM_SpMV(benchmark::State& state) {
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(1)));
  const la::Backend& backend = backend_of(state.range(0));
  const auto prepared = backend.prepare(a);
  const la::Vector x(a.size(), 1.0);
  la::Vector y(a.size());
  for (auto _ : state) {
    backend.spmv(*prepared, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(backend.name());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_SpMV)
    ->ArgNames({"backend", "m"})
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 256})
    ->Args({1, 256});

/// Fused dot / axpy+norm kernels per backend (the CG inner loop's other
/// half) on the large-grid vector length.
void BM_DotAxpyNorm(benchmark::State& state) {
  const la::Backend& backend = backend_of(state.range(0));
  const std::size_t n = 65536;
  const la::Vector x(n, 0.5);
  la::Vector y(n, 1.0);
  for (auto _ : state) {
    const double d = backend.dot(x, y);
    const double r = backend.axpy_norm2(1e-9, x, y);
    benchmark::DoNotOptimize(d);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(backend.name());
}
BENCHMARK(BM_DotAxpyNorm)->ArgNames({"backend"})->Arg(0)->Arg(1);

void BM_CgJacobi(benchmark::State& state) {
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(0)));
  const la::Vector b(a.size(), 1.0);
  const auto precond = la::make_jacobi(a);
  for (auto _ : state) {
    la::Vector x;
    auto report = la::conjugate_gradient(a, b, x, *precond);
    benchmark::DoNotOptimize(report.iterations);
  }
}
BENCHMARK(BM_CgJacobi)->Arg(32)->Arg(64);

void BM_CgIlu0(benchmark::State& state) {
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(0)));
  const la::Vector b(a.size(), 1.0);
  const auto precond = la::make_ilu0(a);
  for (auto _ : state) {
    la::Vector x;
    auto report = la::conjugate_gradient(a, b, x, *precond);
    benchmark::DoNotOptimize(report.iterations);
  }
}
BENCHMARK(BM_CgIlu0)->Arg(32)->Arg(64);

void BM_CgIc0(benchmark::State& state) {
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(0)));
  const la::Vector b(a.size(), 1.0);
  const auto precond = la::make_ic0(a);
  for (auto _ : state) {
    la::Vector x;
    auto report = la::conjugate_gradient(a, b, x, *precond);
    benchmark::DoNotOptimize(report.iterations);
  }
}
BENCHMARK(BM_CgIc0)->Arg(32)->Arg(64);

/// Repeated-solve cost through the la::Solver handle (prepared matrix,
/// cached preconditioner, zero-alloc workspace) -- the PDN cache's shape.
void BM_SolverHandleResolve(benchmark::State& state) {
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(0)));
  const la::Vector b(a.size(), 1.0);
  la::Solver solver(a);
  for (auto _ : state) {
    la::Vector x;
    auto report = solver.solve(b, x);
    benchmark::DoNotOptimize(report.iterations);
  }
}
BENCHMARK(BM_SolverHandleResolve)->Arg(32)->Arg(64);

void BM_BiCgStabIlu0(benchmark::State& state) {
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(0)));
  const la::Vector b(a.size(), 1.0);
  const auto precond = la::make_ilu0(a);
  for (auto _ : state) {
    la::Vector x;
    auto report = la::bicgstab(a, b, x, *precond);
    benchmark::DoNotOptimize(report.iterations);
  }
}
BENCHMARK(BM_BiCgStabIlu0)->Arg(32)->Arg(64);

void BM_SkylineCholeskyFactor(benchmark::State& state) {
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    la::ReorderedCholesky chol(a);
    benchmark::DoNotOptimize(chol.envelope_size());
  }
}
BENCHMARK(BM_SkylineCholeskyFactor)->Arg(32)->Arg(64);

void BM_SkylineCholeskyResolve(benchmark::State& state) {
  // Per-RHS cost once factored -- the transient engine's inner loop.
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(0)));
  const la::ReorderedCholesky chol(a);
  const la::Vector b(a.size(), 1.0);
  for (auto _ : state) {
    auto x = chol.solve(b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SkylineCholeskyResolve)->Arg(32)->Arg(64);

void BM_FullPdnSolve(benchmark::State& state) {
  const auto ctx = core::StudyContext::paper_defaults();
  auto cfg = core::make_stacked(ctx, static_cast<std::size_t>(state.range(0)),
                                ctx.base.tsv, 8);
  pdn::PdnModel model(cfg, ctx.layer_floorplan);
  const auto loads = model.network().build_loads(
      ctx.core_model,
      power::interleaved_layer_activities(
          static_cast<std::size_t>(state.range(0)), 0.5));
  for (auto _ : state) {
    auto sol = model.solve(loads);
    benchmark::DoNotOptimize(sol.max_node_deviation_fraction);
  }
}
BENCHMARK(BM_FullPdnSolve)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Post-run scoreboard: pins the headline numbers into telemetry gauges so
/// BENCH_perf_solvers.json carries them as a machine-readable trajectory
/// (the google-benchmark console table is not part of the artifact).
void scoreboard() {
  using vstack::bench::print_header;
  using vstack::bench::print_note;

  // Backend SpMV throughput on the largest bench grid (m = 256).
  print_header("perf_solvers", "backend scoreboard");
  const auto a = grid_matrix(256);
  const la::Vector x(a.size(), 1.0);
  double mnnz[2] = {0.0, 0.0};
  for (int bi = 0; bi < 2; ++bi) {
    const la::Backend& backend = backend_of(bi);
    const auto prepared = backend.prepare(a);
    la::Vector y(a.size());
    backend.spmv(*prepared, x, y);  // warm caches
    std::size_t reps = 0;
    const double t0 = telemetry::monotonic_seconds();
    double elapsed = 0.0;
    while (elapsed < 0.2) {
      for (int k = 0; k < 16; ++k) backend.spmv(*prepared, x, y);
      reps += 16;
      elapsed = telemetry::monotonic_seconds() - t0;
    }
    mnnz[bi] = static_cast<double>(reps) * static_cast<double>(a.nnz()) /
               elapsed / 1e6;
    print_note(std::string("spmv ") + backend.name() + ": " +
               std::to_string(mnnz[bi]) + " Mnnz/s");
  }
  const double speedup = mnnz[0] > 0.0 ? mnnz[1] / mnnz[0] : 0.0;
  print_note("spmv speedup optimized/reference: " + std::to_string(speedup) +
             "x (grid m=256, " + std::to_string(a.nnz()) + " nnz)");
  telemetry::Gauge("bench.spmv.reference.mnnz_per_s").set(mnnz[0]);
  telemetry::Gauge("bench.spmv.optimized.mnnz_per_s").set(mnnz[1]);
  telemetry::Gauge("bench.spmv.optimized_speedup").set(speedup);

  // Preconditioner iteration growth across grid resolutions: Jacobi (the
  // degradation floor) vs ILU(0) vs IC(0).  On SPD systems IC(0) and
  // ILU(0) build the same operator, so IC(0) must match ILU(0)'s count
  // while doing half the factor work -- and both hold the growth far
  // below Jacobi's (the docs/linear_algebra.md ladder argument in
  // numbers).
  static const telemetry::Gauge g_jac_32("bench.cg.iters.jacobi.m32");
  static const telemetry::Gauge g_jac_64("bench.cg.iters.jacobi.m64");
  static const telemetry::Gauge g_jac_96("bench.cg.iters.jacobi.m96");
  static const telemetry::Gauge g_ilu0_32("bench.cg.iters.ilu0.m32");
  static const telemetry::Gauge g_ilu0_64("bench.cg.iters.ilu0.m64");
  static const telemetry::Gauge g_ilu0_96("bench.cg.iters.ilu0.m96");
  static const telemetry::Gauge g_ic0_32("bench.cg.iters.ic0.m32");
  static const telemetry::Gauge g_ic0_64("bench.cg.iters.ic0.m64");
  static const telemetry::Gauge g_ic0_96("bench.cg.iters.ic0.m96");
  const telemetry::Gauge* jac_gauges[] = {&g_jac_32, &g_jac_64, &g_jac_96};
  const telemetry::Gauge* ilu0_gauges[] = {&g_ilu0_32, &g_ilu0_64, &g_ilu0_96};
  const telemetry::Gauge* ic0_gauges[] = {&g_ic0_32, &g_ic0_64, &g_ic0_96};
  const std::size_t grids[] = {32, 64, 96};
  for (int gi = 0; gi < 3; ++gi) {
    const auto m = grids[gi];
    const auto grid = grid_matrix(m);
    const la::Vector rhs(grid.size(), 1.0);
    const auto jacobi = la::make_jacobi(grid);
    const auto ilu0 = la::make_ilu0(grid);
    const auto ic0 = la::make_ic0(grid);
    la::Vector xj, xi, xc;
    const auto rj = la::conjugate_gradient(grid, rhs, xj, *jacobi);
    const auto ri = la::conjugate_gradient(grid, rhs, xi, *ilu0);
    const auto rc = la::conjugate_gradient(grid, rhs, xc, *ic0);
    jac_gauges[gi]->set(static_cast<double>(rj.iterations));
    ilu0_gauges[gi]->set(static_cast<double>(ri.iterations));
    ic0_gauges[gi]->set(static_cast<double>(rc.iterations));
    print_note("cg iterations m=" + std::to_string(m) +
               ": jacobi=" + std::to_string(rj.iterations) +
               " ilu0=" + std::to_string(ri.iterations) +
               " ic0=" + std::to_string(rc.iterations));
  }
}

}  // namespace

// Expanded BENCHMARK_MAIN so the BenchReport artifact wraps the run.
int main(int argc, char** argv) {
  const vstack::bench::BenchReport bench_report("perf_solvers");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  scoreboard();
  return 0;
}
