// google-benchmark timing of the linear-algebra kernels on PDN-shaped
// systems: CG vs BiCGSTAB, Jacobi vs ILU(0), and a full PDN solve.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "core/study.h"
#include "la/skyline_cholesky.h"
#include "la/solve.h"
#include "power/workload.h"

namespace {

using namespace vstack;

la::CsrMatrix grid_matrix(std::size_t m) {
  la::CooBuilder b(m * m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t i = r * m + c;
      b.add(i, i, 4.0);
      if (r > 0) b.add(i, i - m, -1.0);
      if (r + 1 < m) b.add(i, i + m, -1.0);
      if (c > 0) b.add(i, i - 1, -1.0);
      if (c + 1 < m) b.add(i, i + 1, -1.0);
    }
  }
  return b.build();
}

void BM_CgJacobi(benchmark::State& state) {
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(0)));
  const la::Vector b(a.size(), 1.0);
  const auto precond = la::make_jacobi(a);
  for (auto _ : state) {
    la::Vector x;
    auto report = la::conjugate_gradient(a, b, x, *precond);
    benchmark::DoNotOptimize(report.iterations);
  }
}
BENCHMARK(BM_CgJacobi)->Arg(32)->Arg(64);

void BM_CgIlu0(benchmark::State& state) {
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(0)));
  const la::Vector b(a.size(), 1.0);
  const auto precond = la::make_ilu0(a);
  for (auto _ : state) {
    la::Vector x;
    auto report = la::conjugate_gradient(a, b, x, *precond);
    benchmark::DoNotOptimize(report.iterations);
  }
}
BENCHMARK(BM_CgIlu0)->Arg(32)->Arg(64);

void BM_BiCgStabIlu0(benchmark::State& state) {
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(0)));
  const la::Vector b(a.size(), 1.0);
  const auto precond = la::make_ilu0(a);
  for (auto _ : state) {
    la::Vector x;
    auto report = la::bicgstab(a, b, x, *precond);
    benchmark::DoNotOptimize(report.iterations);
  }
}
BENCHMARK(BM_BiCgStabIlu0)->Arg(32)->Arg(64);

void BM_SkylineCholeskyFactor(benchmark::State& state) {
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    la::ReorderedCholesky chol(a);
    benchmark::DoNotOptimize(chol.envelope_size());
  }
}
BENCHMARK(BM_SkylineCholeskyFactor)->Arg(32)->Arg(64);

void BM_SkylineCholeskyResolve(benchmark::State& state) {
  // Per-RHS cost once factored -- the transient engine's inner loop.
  const auto a = grid_matrix(static_cast<std::size_t>(state.range(0)));
  const la::ReorderedCholesky chol(a);
  const la::Vector b(a.size(), 1.0);
  for (auto _ : state) {
    auto x = chol.solve(b);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SkylineCholeskyResolve)->Arg(32)->Arg(64);

void BM_FullPdnSolve(benchmark::State& state) {
  const auto ctx = core::StudyContext::paper_defaults();
  auto cfg = core::make_stacked(ctx, static_cast<std::size_t>(state.range(0)),
                                ctx.base.tsv, 8);
  pdn::PdnModel model(cfg, ctx.layer_floorplan);
  const auto loads = model.network().build_loads(
      ctx.core_model,
      power::interleaved_layer_activities(
          static_cast<std::size_t>(state.range(0)), 0.5));
  for (auto _ : state) {
    auto sol = model.solve(loads);
    benchmark::DoNotOptimize(sol.max_node_deviation_fraction);
  }
}
BENCHMARK(BM_FullPdnSolve)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Expanded BENCHMARK_MAIN so the BenchReport artifact wraps the run.
int main(int argc, char** argv) {
  const vstack::bench::BenchReport bench_report("perf_solvers");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
