// Shared output helpers for the reproduction benches.
#pragma once

#include <iostream>
#include <string>

namespace vstack::bench {

inline void print_header(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

inline void print_note(const std::string& note) {
  std::cout << "  " << note << "\n";
}

/// Render an optional value, using the paper's convention of skipping
/// infeasible points.
inline std::string opt_cell(bool present, const std::string& value) {
  return present ? value : "-";
}

}  // namespace vstack::bench
