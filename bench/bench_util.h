// Shared output helpers for the reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace vstack::bench {

inline void print_header(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

inline void print_note(const std::string& note) {
  std::cout << "  " << note << "\n";
}

/// Render an optional value, using the paper's convention of skipping
/// infeasible points.
inline std::string opt_cell(bool present, const std::string& value) {
  return present ? value : "-";
}

/// RAII bench artifact: declare one at the top of a bench's main() and a
/// machine-readable `BENCH_<name>.json` lands next to the binary's cwd (or
/// in $VSTACK_BENCH_DIR) when main returns -- wall time, build provenance,
/// and the full telemetry metrics snapshot (solver iterations, step-solver
/// cache hit rates, pool chunk timings).  CI uploads these as artifacts.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)),
        start_s_(telemetry::monotonic_seconds()) {}

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() {
    try {
      write();
    } catch (const std::exception& e) {
      std::cerr << "warning: bench artifact for '" << name_
                << "' not written: " << e.what() << "\n";
    }
  }

 private:
  void write() const {
    const double wall = telemetry::monotonic_seconds() - start_s_;
    std::string dir = ".";
    if (const char* env = std::getenv("VSTACK_BENCH_DIR")) {
      if (*env != '\0') dir = env;
    }
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot open '" << path << "'\n";
      return;
    }
    std::string metrics = telemetry::metrics_json();
    while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    char wall_buf[40];
    std::snprintf(wall_buf, sizeof(wall_buf), "%.6f", wall);
    out << "{\"kind\":\"vstack-bench\",\"version\":1,\"bench\":\"" << name_
        << "\",\"wall_seconds\":" << wall_buf << ",\"metrics\":" << metrics
        << "}\n";
  }

  std::string name_;
  double start_s_ = 0.0;
};

}  // namespace vstack::bench
