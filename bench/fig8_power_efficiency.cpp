// Regenerates the paper's Fig. 8: system power efficiency of the 8-layer
// processor versus workload imbalance, for V-S PDNs with 2/4/6/8 converters
// per core and the regular-PDN baseline where SC converters provide ALL the
// power.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/sweeps.h"

int main() {
  const vstack::bench::BenchReport bench_report("fig8_power_efficiency");
  using namespace vstack;

  bench::print_header("Fig 8",
                      "System power efficiency vs workload imbalance, "
                      "8-layer stack");
  const auto ctx = core::StudyContext::paper_defaults();

  std::vector<double> imbalances;
  for (int x = 10; x <= 100; x += 10) imbalances.push_back(x / 100.0);
  const auto result = core::run_fig8(ctx, 8, {2, 4, 6, 8}, imbalances);

  TextTable t({"Imbalance", "V-S 2/core", "V-S 4/core", "V-S 6/core",
               "V-S 8/core", "Reg + SC (all power)"});
  for (const auto& row : result.rows) {
    std::vector<std::string> cells{TextTable::percent(row.imbalance, 0)};
    for (const auto& v : row.vs_efficiency) {
      cells.push_back(bench::opt_cell(
          v.has_value(), v ? TextTable::percent(*v, 1) : ""));
    }
    cells.push_back(TextTable::percent(row.regular_sc, 1));
    t.add_row(std::move(cells));
  }
  t.print(std::cout);

  bench::print_note("efficiency decreases with imbalance (more differential "
                    "current through the converters) and with converter "
                    "count (open-loop converters burn fixed switching "
                    "parasitics); V-S stays above the regular+SC baseline");
  bench::print_note("'-' marks per-converter current limit violations");
  return 0;
}
