// Regenerates the paper's Table 1: major PDN modeling parameters.
#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "pdn/params.h"

int main() {
  const vstack::bench::BenchReport bench_report("table1_parameters");
  using namespace vstack;
  using namespace vstack::units;

  bench::print_header("Table 1", "Major PDN modeling parameters");
  const pdn::PdnParameters p;
  p.validate();

  TextTable t({"Parameter", "Value"});
  t.add_row({"C4 Pad Pitch (um)", TextTable::num(p.c4_pitch / um, 0)});
  t.add_row({"C4 Pad Resistance (mOhm)",
             TextTable::num(p.c4_resistance / mOhm, 0)});
  t.add_row({"Minimum TSV Pitch (um)",
             TextTable::num(p.tsv_min_pitch / um, 0)});
  t.add_row({"TSV Diameter (um)", TextTable::num(p.tsv_diameter / um, 0)});
  t.add_row({"Single TSV's Resistance (mOhm)",
             TextTable::num(p.tsv_resistance / mOhm, 3)});
  t.add_row({"TSV Keep-Out Zone's Side Length (um)",
             TextTable::num(p.tsv_koz_side / um, 2)});
  t.add_row({"On-chip PDN's Pitch,Width,Thickness (um)",
             TextTable::num(p.grid_pitch / um, 0) + "," +
                 TextTable::num(p.grid_width / um, 0) + "," +
                 TextTable::num(p.grid_thickness / um, 2)});
  t.print(std::cout);

  bench::print_note("derived per-net sheet resistance: " +
                    TextTable::num(p.sheet_resistance() * 1e3, 1) +
                    " mOhm/sq");
  bench::print_note(
      "paper quotes the strap thickness row as '720'; the physically "
      "consistent value is 0.72 um of top-level metal, used here");
  return 0;
}
