// Performance bench: campaign wall-clock scaling on the shared worker pool.
//
// Runs the SAME transient fault campaign twice -- serial (jobs=1) and
// parallel (jobs=N) -- and reports the wall-clock speedup plus a
// determinism cross-check: the parallel report's summary() must equal the
// serial one byte for byte (ordered reduction, core/task_pool.h).
//
//   bench_parallel_scaling [--jobs=N] [--trials=N]
//
// --jobs defaults to auto (VSTACK_JOBS env, else hardware concurrency);
// --trials defaults to 16.  The issue's acceptance target is >= 3x at
// jobs=8 on an 8-core runner; single-core hosts will report ~1x.
#include <chrono>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/table.h"
#include "core/campaign.h"
#include "core/study.h"
#include "power/workload.h"

namespace {

using namespace vstack;

core::CampaignOptions campaign_options(std::size_t trials,
                                       std::size_t jobs) {
  core::CampaignOptions o;
  o.contingency.trials = trials;
  o.contingency.faults_per_trial = 2;
  o.contingency.converter_faults_per_trial = 8;
  o.contingency.seed = 42;
  o.ride_through.transient.time_step = 2e-9;
  o.ride_through.transient.duration = 400e-9;
  o.ride_through.supervisor.trip_fraction = 0.10;
  o.ride_through.supervisor.recovery_fraction = 0.08;
  o.ride_through.supervisor.sense_interval = 5e-9;
  o.ride_through.supervisor.detection_latency = 20e-9;
  o.ride_through.supervisor.action_dwell = 40e-9;
  o.ride_through.supervisor.watchdog_timeout = 200e-9;
  o.fault_time = 50e-9;
  // No wall-clock budget: a timeout tripped only under oversubscription
  // would fail the summary() cross-check below on slow hosts.
  o.scenario_timeout_s = 0.0;
  o.execution.jobs = jobs;
  return o;
}

double timed_run(const core::CampaignRunner& runner,
                 const std::vector<double>& acts,
                 const core::CampaignOptions& options,
                 core::CampaignReport& report) {
  const auto t0 = std::chrono::steady_clock::now();
  report = runner.run(acts, options);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const vstack::bench::BenchReport bench_report("parallel_scaling");
  using namespace vstack;

  const CliArgs args(argc, argv, {"jobs", "trials"});
  const std::size_t trials = args.get_size("trials", 16);
  core::ExecutionPolicy parallel;
  parallel.jobs = args.get_size("jobs", 0);  // 0 = auto
  const std::size_t jobs = parallel.resolved_jobs();

  bench::print_header(
      "Perf", "Campaign wall-clock scaling, " + std::to_string(trials) +
                  " trials, jobs=1 vs jobs=" + std::to_string(jobs));

  const auto ctx = core::StudyContext::paper_defaults();
  auto cfg = core::make_stacked(ctx, 4, pdn::TsvConfig::few(), 8);
  cfg.grid_nx = cfg.grid_ny = 8;
  const core::CampaignRunner runner(ctx, cfg);
  const auto acts = power::interleaved_layer_activities(4, 0.8);

  core::CampaignReport serial_report;
  core::CampaignReport parallel_report;
  const double serial_s =
      timed_run(runner, acts, campaign_options(trials, 1), serial_report);
  const double parallel_s =
      timed_run(runner, acts, campaign_options(trials, jobs),
                parallel_report);

  VS_REQUIRE(serial_report.summary() == parallel_report.summary(),
             "parallel campaign summary diverged from serial -- ordered "
             "reduction is broken");

  TextTable t({"Jobs", "Wall (s)", "Speedup"});
  t.add_row({"1", TextTable::num(serial_s, 2), "1.00x"});
  t.add_row({std::to_string(jobs), TextTable::num(parallel_s, 2),
             TextTable::num(parallel_s > 0.0 ? serial_s / parallel_s : 0.0,
                            2) +
                 "x"});
  t.print(std::cout);

  bench::print_note("summary() cross-check passed: jobs=" +
                    std::to_string(jobs) +
                    " aggregates are identical to jobs=1");
  std::cout << "\n" << parallel_report.summary() << "\n";
  return 0;
}
